"""Exception hierarchy shared by every ``repro`` subpackage.

Keeping all exceptions in one module lets callers catch
:class:`ReproError` to handle any library failure, or a specific subclass
for targeted recovery, without importing implementation modules.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for property-graph errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced but is not present in the graph."""

    def __init__(self, node_id):
        super().__init__(f"node {node_id!r} is not in the graph")
        self.node_id = node_id


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced but is not present in the graph."""

    def __init__(self, source, target):
        super().__init__(f"edge ({source!r} -> {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError, ValueError):
    """A node id was added twice with conflicting definitions."""

    def __init__(self, node_id):
        super().__init__(f"node {node_id!r} already exists")
        self.node_id = node_id


class DuplicateEdgeError(GraphError, ValueError):
    """An edge was added twice with conflicting definitions."""

    def __init__(self, source, target):
        super().__init__(f"edge ({source!r} -> {target!r}) already exists")
        self.source = source
        self.target = target


class PrivilegeError(ReproError):
    """Base class for privilege-lattice errors."""


class UnknownPrivilegeError(PrivilegeError, KeyError):
    """A privilege name was referenced but never declared in the lattice."""

    def __init__(self, name):
        super().__init__(f"privilege {name!r} is not declared in the lattice")
        self.name = name


class CyclicDominanceError(PrivilegeError, ValueError):
    """The declared dominance relation contains a cycle, so it is not a partial order."""


class PolicyError(ReproError):
    """A release policy (surrogate registry or marking policy) is inconsistent."""


class SurrogateError(PolicyError):
    """A surrogate definition violates the paper's constraints (Section 3.1)."""


class ProtectionError(ReproError):
    """Protected-account generation failed or produced an invalid account."""


class ValidationError(ProtectionError):
    """A protected account violates Definition 5 or Definition 9."""


class StoreError(ReproError):
    """Base class for embedded graph-store errors."""


class TransactionError(StoreError):
    """A transaction was used after commit/rollback or violated store invariants."""


class ReadOnlyStoreError(StoreError):
    """A mutation was attempted through a store opened read-only.

    Raised by follower-side opens (``GraphStore(..., read_only=True)``): a
    replica process must never write the leader's root, so every mutator and
    write transaction refuses up front instead of racing the leader's locks.
    """


class ReplicationError(ReproError):
    """Base class for leader/follower replication errors."""


class StaleReplicaError(ReplicationError):
    """A follower could not reach the requested version vector in budget.

    Carries the requested and applied vectors so HTTP handlers can surface a
    redirect-to-leader response with concrete positions.
    """

    def __init__(self, message, *, wanted=None, applied=None):
        super().__init__(message)
        self.wanted = wanted
        self.applied = applied


class ReplicationGapError(ReplicationError):
    """The delta log cannot prove a contiguous suffix from the follower's
    position (compaction passed it, or the leader dropped an unsupported
    delta); the follower must reseed from the store snapshot + stamp."""


class TransientError(StoreError):
    """A store operation failed for a reason that may succeed on retry.

    Raised by the storage I/O layer when the operating system rejects a
    write/fsync/rename (``OSError``) — conditions that a
    :class:`~repro.reliability.retry.RetryPolicy` is allowed to retry.  The
    original error rides along as ``__cause__`` and the failing injection
    point (when known) as :attr:`point`.
    """

    def __init__(self, message, *, point=None):
        super().__init__(message)
        self.point = point


class CorruptionError(StoreError):
    """Persisted state failed an integrity check (CRC, framing, or schema).

    Distinct from :class:`TransientError`: retrying cannot help — the bytes
    on disk are wrong.  Recovery either truncates (a torn write-log tail) or
    quarantines the artifact and rebuilds from authoritative state.
    """

    def __init__(self, message, *, path=None):
        super().__init__(message)
        self.path = path


class RecoveryError(StoreError):
    """Crash recovery could not restore a consistent store state."""


class CatalogError(StoreError, KeyError):
    """A named graph was not found in (or conflicts with) the store catalog."""


class TenantError(ReproError):
    """Base class for multi-tenant service-registry errors."""


class UnknownTenantError(TenantError, KeyError):
    """A tenant name was referenced but never registered."""

    def __init__(self, tenant):
        super().__init__(f"tenant {tenant!r} is not registered")
        self.tenant = tenant


class QuotaExceededError(TenantError):
    """A tenant exhausted one of its registry quotas (requests, graphs, ...)."""

    def __init__(self, tenant, quota, limit):
        super().__init__(f"tenant {tenant!r} exceeded its {quota} quota (limit {limit})")
        self.tenant = tenant
        self.quota = quota
        self.limit = limit


class ProvenanceError(ReproError):
    """Errors raised by the PLUS-style provenance substrate."""


class WorkloadError(ReproError):
    """A workload generator was given inconsistent parameters."""


class ExperimentError(ReproError):
    """An experiment driver was configured incorrectly."""
