"""Packed-column codecs shared by the checkpoint and account serialisers.

This module is a dependency leaf (only :mod:`repro.exceptions`), so both
the store layer and the API layer can use it without import cycles.

Row-per-entity JSON dominates both checkpoint payloads and account
metadata sidecars: hundreds of thousands of parser tokens on the way in,
and a Python-level loop per row on the way out.  Packed as tab-joined
*columns* inside single JSON strings the same tables parse at memcpy
speed and decode with bulk C operations only — ``str.split``,
``map(float, ...)``, ``zip``, ``dict.fromkeys``.

``None`` fields ride as a NUL sentinel; tabs/newlines/backslashes inside
fields are escaped (a column takes the slow unescape path only when its
packed text actually contains an escape or sentinel).  Every packer
returns ``None`` when a column is not uniformly typed (exotic node ids);
the caller falls back to plain JSON rows, and every unpacker accepts
both shapes.
"""

from __future__ import annotations

import re
from typing import Any, Iterator, List, Optional

from repro.exceptions import CorruptionError

NONE_FIELD = "\x00"
_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"n": "\n", "t": "\t", "\\": "\\"}


def escape_field(field: Optional[str]) -> str:
    if field is None:
        return NONE_FIELD
    if "\\" in field or "\t" in field or "\n" in field:
        return field.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")
    return field


def unescape_field(field: str) -> Optional[str]:
    if field == NONE_FIELD:
        return None
    if "\\" not in field:
        return field
    return _UNESCAPE_RE.sub(lambda m: _UNESCAPE_MAP.get(m.group(1), m.group(1)), field)


def col_str(values: List[Any]) -> Optional[str]:
    """Strings (or Nones) as one tab-joined column; ``None`` if unpackable."""
    if not all(value is None or isinstance(value, str) for value in values):
        return None
    return "\t".join(escape_field(value) for value in values)


def split_str(text: str, count: int) -> List[Optional[str]]:
    """A string column back into its fields, validating the row count."""
    if count == 0:
        return []
    fields: List[Optional[str]] = text.split("\t")
    if len(fields) != count:
        raise CorruptionError(
            f"packed column holds {len(fields)} fields where {count} were recorded"
        )
    if "\\" in text or NONE_FIELD in text:
        fields = [unescape_field(field) for field in fields]
    return fields


def col_num(values: List[Any]) -> Optional[dict]:
    """Uniform ints or floats as a type-tagged ``repr`` column (exact).

    ``None`` when the values are mixed or exotic (bools, Decimals): the
    caller falls back to raw JSON rows.  The type tag lets the decoder use
    a single ``map(int, ...)`` / ``map(float, ...)`` pass — ``repr``/``float``
    round-trips are exact, and there is no per-value try/except.
    """
    if all(type(value) is int for value in values):
        tag = "i"
    elif all(type(value) is float for value in values):
        tag = "f"
    else:
        return None
    return {"ty": tag, "t": "\t".join(map(repr, values))}


def split_num(spec: dict, count: int) -> Iterator[Any]:
    """A numeric column back into its values (lazily — consumers zip once).

    The row count is validated eagerly; the int/float conversions run
    inside the caller's ``dict(zip(...))`` pass, skipping one intermediate
    list materialisation per column.
    """
    if count == 0:
        return iter(())
    fields = spec["t"].split("\t")
    if len(fields) != count:
        raise CorruptionError(
            f"packed column holds {len(fields)} fields where {count} were recorded"
        )
    return map(int if spec["ty"] == "i" else float, fields)


def pack_pair_table(pairs) -> Any:
    """``[[a, b], ...]`` rows as two packed columns (or raw rows fallback)."""
    rows = list(pairs)
    left = col_str([row[0] for row in rows])
    right = col_str([row[1] for row in rows])
    if left is None or right is None:
        return [[a, b] for a, b in rows]
    return {"n": len(rows), "a": left, "b": right}


def unpack_pair_table(value: Any) -> Iterator[tuple]:
    """Rows back out of either shape, as an iterator of 2-tuples."""
    if isinstance(value, dict):
        count = value["n"]
        return zip(split_str(value["a"], count), split_str(value["b"], count))
    return ((a, b) for a, b in value)


def pack_id_list(values) -> Any:
    """A list of node ids as one packed column (or the raw list fallback)."""
    rows = list(values)
    col = col_str(rows)
    return {"n": len(rows), "t": col} if col is not None else rows


def unpack_id_list(value: Any) -> List[Any]:
    if isinstance(value, dict):
        return split_str(value["t"], value["n"])
    return list(value)


def table_len(value: Any) -> int:
    """Row count of a packed-or-raw table without decoding it."""
    return value["n"] if isinstance(value, dict) else len(value)
