"""The synthetic graph family of the paper's Section 6.1.2.

The paper generates 50 synthetic graphs of 200 nodes each.  Across the
family, *connectedness* increases so that the average node is connected to
between 30 and 100 other nodes along directed paths, and *protection*
varies from 10% to 90% of all edges.  Every graph is weakly connected
("no disconnected subgraphs") and directed.

Because the authors' generator and seeds are unpublished, this module
recreates the family from its published parameters: a seeded random
connected DAG whose edge count is grown until the average directed
connectivity reaches the target, plus a seeded uniform sample of edges to
protect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.graph.model import EdgeKey, PropertyGraph
from repro.graph.traversal import descendants
from repro.workloads.random_graphs import random_connected_dag, sample_edges

#: Paper defaults (Section 6.1.2).
DEFAULT_NODE_COUNT = 200
DEFAULT_CONNECTIVITY_TARGETS: Tuple[int, ...] = (30, 37, 45, 53, 61, 69, 76, 84, 92, 100)
DEFAULT_PROTECT_FRACTIONS: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class SyntheticGraphSpec:
    """Parameters of one synthetic graph instance."""

    node_count: int
    target_connected_pairs: float
    protect_fraction: float
    seed: int

    def label(self) -> str:
        return (
            f"n{self.node_count}-cp{int(self.target_connected_pairs)}-"
            f"p{int(self.protect_fraction * 100)}-s{self.seed}"
        )


@dataclass
class SyntheticInstance:
    """A generated synthetic graph together with its protected-edge sample."""

    spec: SyntheticGraphSpec
    graph: PropertyGraph
    protected_edges: List[EdgeKey]
    achieved_connected_pairs: float

    @property
    def protect_fraction(self) -> float:
        return self.spec.protect_fraction

    def summary(self) -> Dict[str, object]:
        return {
            "label": self.spec.label(),
            "nodes": self.graph.node_count(),
            "edges": self.graph.edge_count(),
            "target_connected_pairs": self.spec.target_connected_pairs,
            "achieved_connected_pairs": round(self.achieved_connected_pairs, 2),
            "protected_edges": len(self.protected_edges),
            "protect_fraction": self.spec.protect_fraction,
        }


def average_directed_connected_pairs(graph: PropertyGraph) -> float:
    """Average, over nodes, of how many other nodes each node can reach.

    This is the "connected pairs" statistic the synthetic experiment sweeps
    (30–100 for 200-node graphs); directed reachability is used because the
    weakly connected graphs of the family would otherwise trivially connect
    every node to all 199 others.
    """
    if graph.node_count() == 0:
        return 0.0
    total = sum(len(descendants(graph, node_id)) for node_id in graph.node_ids())
    return total / graph.node_count()


def synthetic_graph(
    spec: SyntheticGraphSpec,
    *,
    growth_step: Optional[int] = None,
    max_edges: Optional[int] = None,
) -> SyntheticInstance:
    """Generate one synthetic instance matching ``spec``.

    The generator starts from a spanning skeleton and adds random forward
    edges in batches until the average directed connectivity reaches the
    spec's target (or ``max_edges`` is hit), then samples the requested
    fraction of edges for protection.
    """
    if not 0.0 < spec.protect_fraction < 1.0:
        raise WorkloadError(
            f"protect_fraction must be in (0, 1), got {spec.protect_fraction}"
        )
    if spec.node_count < 10:
        raise WorkloadError("synthetic graphs need at least 10 nodes")
    node_count = spec.node_count
    growth_step = growth_step if growth_step is not None else max(10, node_count // 10)
    max_edges = max_edges if max_edges is not None else node_count * 12
    edge_count = node_count - 1
    graph = random_connected_dag(node_count, edge_count, seed=spec.seed, name=spec.label())
    achieved = average_directed_connected_pairs(graph)
    while achieved < spec.target_connected_pairs and edge_count < max_edges:
        # Grow multiplicatively so reaching dense targets takes O(log) rebuilds.
        edge_count = min(max_edges, int(edge_count * 1.4) + growth_step)
        graph = random_connected_dag(
            node_count, edge_count, seed=spec.seed, name=spec.label()
        )
        achieved = average_directed_connected_pairs(graph)
    protect_count = max(1, int(round(spec.protect_fraction * graph.edge_count())))
    protected = sample_edges(graph, protect_count, seed=spec.seed + 1)
    return SyntheticInstance(
        spec=spec,
        graph=graph,
        protected_edges=protected,
        achieved_connected_pairs=achieved,
    )


def synthetic_family(
    *,
    node_count: int = DEFAULT_NODE_COUNT,
    connectivity_targets: Sequence[float] = DEFAULT_CONNECTIVITY_TARGETS,
    protect_fractions: Sequence[float] = DEFAULT_PROTECT_FRACTIONS,
    seed: int = 2011,
) -> List[SyntheticInstance]:
    """The full family: one instance per (connectivity, protection) combination.

    With the defaults this is the paper's 50-graph family (10 connectivity
    levels × 5 protection levels, 200 nodes each).  Smaller families for
    quick benchmarks are obtained by passing shorter parameter sequences or
    a smaller ``node_count``.
    """
    instances: List[SyntheticInstance] = []
    for connectivity_index, target in enumerate(connectivity_targets):
        for protection_index, fraction in enumerate(protect_fractions):
            spec = SyntheticGraphSpec(
                node_count=node_count,
                target_connected_pairs=float(target),
                protect_fraction=float(fraction),
                seed=seed + connectivity_index * 101 + protection_index * 7,
            )
            instances.append(synthetic_graph(spec))
    return instances


def small_family_for_tests(
    *,
    node_count: int = 40,
    connectivity_targets: Iterable[float] = (8, 14),
    protect_fractions: Iterable[float] = (0.2, 0.6),
    seed: int = 7,
) -> List[SyntheticInstance]:
    """A reduced family used by unit tests and quick benchmark smoke runs."""
    return synthetic_family(
        node_count=node_count,
        connectivity_targets=tuple(connectivity_targets),
        protect_fractions=tuple(protect_fractions),
        seed=seed,
    )
