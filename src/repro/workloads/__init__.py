"""Workload generators: every data set used in the paper's evaluation.

* :mod:`repro.workloads.social` — the Figure-1 running example (social
  network reading) together with its privilege lattice, release policy and
  the four marking variants of Figure 2.
* :mod:`repro.workloads.motifs` — the seven classic motifs of Figure 6 with
  their designated protected edge.
* :mod:`repro.workloads.synthetic` — the 200-node synthetic graph family of
  Section 6.1.2 (connectivity sweep × protection sweep).
* :mod:`repro.workloads.random_graphs` — seeded random DAG / random digraph
  generators shared by the synthetic family and the test suite.
"""

from repro.workloads.social import Figure1Example, figure1_example
from repro.workloads.motifs import MOTIF_NAMES, Motif, all_motifs, motif
from repro.workloads.synthetic import SyntheticGraphSpec, SyntheticInstance, synthetic_family, synthetic_graph
from repro.workloads.random_graphs import random_connected_dag, random_digraph

__all__ = [
    "Figure1Example",
    "figure1_example",
    "Motif",
    "MOTIF_NAMES",
    "motif",
    "all_motifs",
    "SyntheticGraphSpec",
    "SyntheticInstance",
    "synthetic_graph",
    "synthetic_family",
    "random_connected_dag",
    "random_digraph",
]
