"""Seeded random graph generators.

The synthetic evaluation graphs (Section 6.1.2) are weakly connected
directed graphs; the generators here produce them deterministically from a
seed so every experiment and test run is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.graph.model import NodeId, PropertyGraph


def _node_name(index: int) -> str:
    return f"n{index:03d}"


def random_connected_dag(
    node_count: int,
    edge_count: int,
    *,
    seed: int = 0,
    name: Optional[str] = None,
    node_kind: Optional[str] = None,
) -> PropertyGraph:
    """A weakly connected random DAG with exactly ``edge_count`` edges.

    Nodes are created in a fixed topological order and every edge points
    from an earlier node to a later one, so the result is acyclic by
    construction.  The first ``node_count - 1`` edges form a random
    spanning arborescence-like skeleton guaranteeing weak connectivity (the
    paper's synthetic graphs "contain no disconnected subgraphs").
    """
    if node_count < 2:
        raise WorkloadError("random_connected_dag needs at least two nodes")
    minimum_edges = node_count - 1
    maximum_edges = node_count * (node_count - 1) // 2
    if edge_count < minimum_edges or edge_count > maximum_edges:
        raise WorkloadError(
            f"edge_count must be between {minimum_edges} and {maximum_edges} for "
            f"{node_count} nodes, got {edge_count}"
        )
    rng = random.Random(seed)
    graph = PropertyGraph(name=name or f"dag-{node_count}-{edge_count}-{seed}")
    names = [_node_name(index) for index in range(node_count)]
    for node_name in names:
        graph.add_node(node_name, kind=node_kind)
    # Spanning skeleton: each node (except the first) gets one parent among
    # the earlier nodes.
    for index in range(1, node_count):
        parent = rng.randrange(index)
        graph.add_edge(names[parent], names[index])
    # Extra forward edges, sampled without replacement.
    remaining = edge_count - (node_count - 1)
    attempts = 0
    max_attempts = remaining * 50 + 100
    while remaining > 0 and attempts < max_attempts:
        attempts += 1
        source_index = rng.randrange(node_count - 1)
        target_index = rng.randrange(source_index + 1, node_count)
        source, target = names[source_index], names[target_index]
        if graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        remaining -= 1
    if remaining > 0:
        # Dense corner case: fall back to a deterministic sweep.
        for source_index in range(node_count - 1):
            for target_index in range(source_index + 1, node_count):
                if remaining == 0:
                    break
                source, target = names[source_index], names[target_index]
                if not graph.has_edge(source, target):
                    graph.add_edge(source, target)
                    remaining -= 1
            if remaining == 0:
                break
    return graph


def random_digraph(
    node_count: int,
    edge_count: int,
    *,
    seed: int = 0,
    allow_cycles: bool = True,
    name: Optional[str] = None,
) -> PropertyGraph:
    """A weakly connected random digraph (cycles allowed by default)."""
    if not allow_cycles:
        return random_connected_dag(node_count, edge_count, seed=seed, name=name)
    if node_count < 2:
        raise WorkloadError("random_digraph needs at least two nodes")
    minimum_edges = node_count - 1
    maximum_edges = node_count * (node_count - 1)
    if edge_count < minimum_edges or edge_count > maximum_edges:
        raise WorkloadError(
            f"edge_count must be between {minimum_edges} and {maximum_edges} for "
            f"{node_count} nodes, got {edge_count}"
        )
    rng = random.Random(seed)
    graph = PropertyGraph(name=name or f"digraph-{node_count}-{edge_count}-{seed}")
    names = [_node_name(index) for index in range(node_count)]
    for node_name in names:
        graph.add_node(node_name)
    for index in range(1, node_count):
        parent = rng.randrange(index)
        if rng.random() < 0.5:
            graph.add_edge(names[parent], names[index])
        else:
            graph.add_edge(names[index], names[parent])
    remaining = edge_count - (node_count - 1)
    attempts = 0
    max_attempts = remaining * 50 + 100
    while remaining > 0 and attempts < max_attempts:
        attempts += 1
        source, target = rng.sample(names, 2)
        if graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
        remaining -= 1
    return graph


def sample_edges(
    graph: PropertyGraph,
    count: int,
    *,
    seed: int = 0,
) -> List[Tuple[NodeId, NodeId]]:
    """A deterministic random sample of ``count`` distinct edges of ``graph``."""
    keys: Sequence[Tuple[NodeId, NodeId]] = graph.edge_keys()
    if count > len(keys):
        raise WorkloadError(f"cannot sample {count} edges from a graph with {len(keys)} edges")
    rng = random.Random(seed)
    return rng.sample(list(keys), count)
