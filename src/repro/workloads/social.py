"""The paper's Figure-1 running example, read as a social network.

The exact topology of Figure 1(a) is not published as an edge list, so this
module reconstructs a graph that is consistent with *every* number the paper
reports about it:

* 11 nodes (``a1``, ``a2``, ``b`` … ``j``), weakly connected;
* the High-2 consumer may see exactly ``{b, c, g, h, i, j}``;
* the naive High-2 account (Figure 1c) splits into the components
  ``{b, c}`` and ``{g, h, i, j}``, giving Path Utility 0.13 and Node
  Utility 6/11;
* the four protected accounts of Figure 2 have Path Utility .38, .27, .13
  and .27 respectively.

The node ``f`` ("involvement with a particular gang" / "court-sanctioned
surveillance") is the sensitive hub between ``c`` and ``g``; ``a1``, ``a2``,
``d`` and ``e`` are the remaining sensitive nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.markings import Marking
from repro.core.policy import ReleasePolicy
from repro.core.privileges import Privilege, PrivilegeLattice, figure1_lattice
from repro.graph.builders import GraphBuilder
from repro.graph.model import PropertyGraph

#: The sensitive relationship the paper tracks through Figure 2 and Table 1.
SENSITIVE_EDGE: Tuple[str, str] = ("f", "g")

#: Reconstructed edge list of Figure 1(a).
FIGURE1_EDGES = (
    ("a1", "b"),
    ("a2", "b"),
    ("b", "c"),
    ("c", "d"),
    ("c", "e"),
    ("c", "f"),
    ("f", "g"),
    ("d", "h"),
    ("e", "i"),
    ("g", "j"),
    ("h", "i"),
    ("i", "j"),
)

#: lowest() assignment: which privilege is required to see each node.
FIGURE1_LOWEST = {
    "a1": "High-1",
    "a2": "High-1",
    "b": "Public",
    "c": "Public",
    "d": "High-1",
    "e": "High-1",
    "f": "High-1",
    "g": "Public",
    "h": "Public",
    "i": "Public",
    "j": "Public",
}

#: Human-readable features for the running social-network interpretation.
FIGURE1_FEATURES = {
    "a1": {"name": "Confidential informant 1", "role": "source"},
    "a2": {"name": "Confidential informant 2", "role": "source"},
    "b": {"name": "Precinct report", "role": "document"},
    "c": {"name": "Suspect C", "role": "person"},
    "d": {"name": "Undercover operation D", "role": "operation"},
    "e": {"name": "Wiretap E", "role": "operation"},
    "f": {"name": "Gang X membership", "role": "affiliation", "sanction": "court-ordered surveillance"},
    "g": {"name": "Suspect G", "role": "person"},
    "h": {"name": "Known associate H", "role": "person"},
    "i": {"name": "Known associate I", "role": "person"},
    "j": {"name": "Meeting location J", "role": "place"},
}


@dataclass
class Figure1Example:
    """The running example: graph, lattice, privileges and release policy."""

    graph: PropertyGraph
    lattice: PrivilegeLattice
    privileges: Dict[str, Privilege]
    policy: ReleasePolicy

    @property
    def high2(self) -> Privilege:
        """The consumer class used throughout the worked example."""
        return self.privileges["High-2"]


def figure1_graph() -> PropertyGraph:
    """Just the graph of Figure 1(a)."""
    builder = GraphBuilder("figure1")
    for node_id, features in FIGURE1_FEATURES.items():
        builder.node(node_id, kind="entity", features=features)
    builder.edges(FIGURE1_EDGES)
    return builder.build()


def figure1_example(*, with_feature_surrogate: bool = False) -> Figure1Example:
    """Build the running example with its release policy.

    ``with_feature_surrogate`` registers the informative surrogate ``f'``
    ("a trusted law enforcement source") for node ``f`` at the Low-2 level,
    which the Figure-2 variants (a), (c) and (d) rely on.
    """
    lattice, privileges = figure1_lattice()
    graph = figure1_graph()
    policy = ReleasePolicy(lattice)
    policy.set_lowest_bulk({node: privileges[level] for node, level in FIGURE1_LOWEST.items()})
    if with_feature_surrogate:
        add_f_surrogate(policy)
    return Figure1Example(graph=graph, lattice=lattice, privileges=privileges, policy=policy)


def add_f_surrogate(policy: ReleasePolicy) -> None:
    """Register the paper's surrogate ``f'`` for the sensitive node ``f``."""
    if any(s.surrogate_id == "f'" for s in policy.surrogates.surrogates_for("f")):
        return
    policy.add_surrogate(
        "f",
        "Low-2",
        surrogate_id="f'",
        features={"name": "A trusted law enforcement source", "role": "affiliation"},
        kind="entity",
        info_score=0.5,
    )


# --------------------------------------------------------------------------- #
# The four marking variants of Figure 2 (all target the High-2 class)
# --------------------------------------------------------------------------- #
def figure2_variant(variant: str) -> Figure1Example:
    """Build the example configured as one of Figure 2's accounts (a)–(d).

    ========  =====================  =========================================
    variant   surrogate node ``f'``  markings on (c,f) and (f,g) for High-2
    ========  =====================  =========================================
    ``"a"``   yes                    all four incidences Visible
    ``"b"``   no                     c:Visible, f:Surrogate / f:Surrogate, g:Visible
    ``"c"``   yes                    c:Visible, f:Hide / f:Surrogate, g:Hide
    ``"d"``   yes                    same as (b), plus the surrogate node
    ========  =====================  =========================================
    """
    variant = variant.lower()
    if variant not in {"a", "b", "c", "d"}:
        raise ValueError(f"Figure 2 defines variants 'a'..'d', got {variant!r}")
    example = figure1_example(with_feature_surrogate=variant in {"a", "c", "d"})
    high2 = example.high2
    markings = example.policy.markings
    if variant == "a":
        markings.mark_edge(("c", "f"), high2, source=Marking.VISIBLE, target=Marking.VISIBLE)
        markings.mark_edge(("f", "g"), high2, source=Marking.VISIBLE, target=Marking.VISIBLE)
    elif variant in {"b", "d"}:
        markings.mark_edge(("c", "f"), high2, source=Marking.VISIBLE, target=Marking.SURROGATE)
        markings.mark_edge(("f", "g"), high2, source=Marking.SURROGATE, target=Marking.VISIBLE)
    else:  # variant "c"
        markings.mark_edge(("c", "f"), high2, source=Marking.VISIBLE, target=Marking.HIDE)
        markings.mark_edge(("f", "g"), high2, source=Marking.SURROGATE, target=Marking.HIDE)
    return example
