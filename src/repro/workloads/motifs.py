"""The classic graph motifs of the paper's Figure 6.

Each motif is a directed graph of four to five nodes together with the one
edge designated for protection (drawn dashed in the paper).  The exact node
placement in Figure 6 is not published; the definitions below are chosen so
that every qualitative statement the paper makes about the motif experiment
holds:

* **star, chain, tree, inverted tree** — hiding the protected edge severs
  weak connectivity while surrogating preserves it, so both utility and
  opacity improve under surrogating;
* **diamond** — connectivity survives hiding (the other branch keeps the
  graph weakly connected) but the surrogate edge still reduces the
  attacker's focus on the endpoints, so opacity improves;
* **lattice** — a surrogate edge can be drawn but duplicates an existing
  direct edge, so surrogating and hiding produce identical accounts;
* **bipartite** — the protected edge ends at the deepest level, so no
  surrogate destination exists and surrogating equals hiding (the case the
  paper singles out in Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import WorkloadError
from repro.graph.builders import graph_from_edges
from repro.graph.model import EdgeKey, PropertyGraph

#: Motif names in the order the paper's Figure 7 reports them.
MOTIF_NAMES: Tuple[str, ...] = (
    "star",
    "chain",
    "lattice",
    "diamond",
    "tree",
    "inverted_tree",
    "bipartite",
)


@dataclass(frozen=True)
class Motif:
    """One motif instance: its graph and the edge designated for protection."""

    name: str
    graph: PropertyGraph
    protected_edge: EdgeKey

    @property
    def node_count(self) -> int:
        return self.graph.node_count()

    @property
    def edge_count(self) -> int:
        return self.graph.edge_count()


def _build(name: str, edges: Sequence[Tuple[str, str]], protected_edge: Tuple[str, str]) -> Motif:
    graph = graph_from_edges(edges, name=name)
    if not graph.has_edge(*protected_edge):
        raise WorkloadError(f"motif {name!r}: protected edge {protected_edge!r} is not in the graph")
    return Motif(name=name, graph=graph, protected_edge=protected_edge)


def star() -> Motif:
    """A hub with one inbound feeder and three outbound spokes.

    The protected edge is the feeder ``n1 -> hub``; surrogate edges connect
    ``n1`` directly to each spoke, preserving ``n1``'s connectivity.
    """
    edges = [("n1", "hub"), ("hub", "n2"), ("hub", "n3"), ("hub", "n4")]
    return _build("star", edges, ("n1", "hub"))


def chain() -> Motif:
    """A five-node path; the protected edge is the first link."""
    edges = [("n1", "n2"), ("n2", "n3"), ("n3", "n4"), ("n4", "n5")]
    return _build("chain", edges, ("n1", "n2"))


def lattice() -> Motif:
    """A five-node lattice with redundant routes and a direct chord.

    Protecting ``n1 -> n2`` makes a surrogate edge ``n1 -> n4`` *possible*
    but redundant (the chord ``n1 -> n4`` already exists), so hiding and
    surrogating coincide — exactly the paper's explanation for why the
    lattice shows no difference.
    """
    edges = [
        ("n1", "n2"),
        ("n1", "n3"),
        ("n1", "n4"),
        ("n2", "n4"),
        ("n3", "n4"),
        ("n3", "n2"),
        ("n4", "n5"),
    ]
    return _build("lattice", edges, ("n1", "n2"))


def diamond() -> Motif:
    """The four-node diamond ``a -> {b, c} -> d``; the protected edge is ``a -> b``."""
    edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    return _build("diamond", edges, ("a", "b"))


def tree() -> Motif:
    """A rooted out-tree of five nodes; the protected edge is the root's first child link."""
    edges = [("root", "a"), ("root", "b"), ("a", "c"), ("a", "d")]
    return _build("tree", edges, ("root", "a"))


def inverted_tree() -> Motif:
    """The tree with all edges reversed (many sources merging into a sink)."""
    edges = [("c", "a"), ("d", "a"), ("a", "root"), ("b", "root")]
    return _build("inverted_tree", edges, ("c", "a"))


def bipartite() -> Motif:
    """Two levels with all edges pointing downwards; the protected edge ends at the bottom."""
    edges = [("u1", "v1"), ("u1", "v2"), ("u2", "v2"), ("u2", "v3"), ("u1", "v3")]
    return _build("bipartite", edges, ("u1", "v1"))


_FACTORIES = {
    "star": star,
    "chain": chain,
    "lattice": lattice,
    "diamond": diamond,
    "tree": tree,
    "inverted_tree": inverted_tree,
    "bipartite": bipartite,
}


def motif(name: str) -> Motif:
    """Build one motif by name (see :data:`MOTIF_NAMES`)."""
    normalized = name.strip().lower().replace(" ", "_").replace("-", "_")
    try:
        factory = _FACTORIES[normalized]
    except KeyError:
        raise WorkloadError(f"unknown motif {name!r}; expected one of {sorted(_FACTORIES)}") from None
    return factory()


def all_motifs() -> List[Motif]:
    """Every motif, in the order of :data:`MOTIF_NAMES`."""
    return [motif(name) for name in MOTIF_NAMES]


def motif_catalog() -> Dict[str, Motif]:
    """Name → motif mapping (used by the CLI and docs)."""
    return {name: motif(name) for name in MOTIF_NAMES}
