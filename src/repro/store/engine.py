"""The :class:`GraphStore` facade and its phase-timing instrumentation.

The store engine is what the PLUS substrate and the Figure-10 benchmark talk
to: named graphs with logged mutations, adjacency/feature indexes, simple
transactions and a :class:`PhaseTimer` that records how long each phase of
an operation takes (the paper's "DB Access" / "Build Graph" / "Protect via
Hide" / "Protect via Surrogate" bars).
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Set, Union

from repro.codec import table_len
from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
    ReadOnlyStoreError,
    StoreError,
)

#: Storage engines selectable via ``GraphStore(engine=...)``.
STORE_ENGINES = ("file", "sqlite")


def detect_engine(directory: Optional[Union[str, Path]]) -> str:
    """Which engine owns ``directory`` — ``"sqlite"`` iff its database exists.

    Reopening a durable root must not need the ``engine=`` flag again: the
    SQLite engine leaves exactly one ``store.sqlite`` file at the root, so
    its presence identifies the engine.  Fresh (or in-memory) roots default
    to ``"file"``.
    """
    if directory is None:
        return "file"
    from repro.store.sqlite import DATABASE_NAME

    return "sqlite" if (Path(directory) / DATABASE_NAME).exists() else "file"
from repro.graph.model import NodeId, PropertyGraph
from repro.graph.traversal import ancestors, descendants
from repro.store.index import AdjacencyIndex, FeatureIndex
from repro.store.io import StorageIO
from repro.store.storage import GraphStorage
from repro.store.transactions import Transaction, apply_to, validate_operations


def _tenant_dirname(tenant: str) -> str:
    """A filesystem-safe directory name that is injective over tenant names.

    Plain substitution alone would let ``".."`` escape the base directory
    and would map distinct tenants (``"a b"`` / ``"a_b"``) onto one
    directory — breaking the isolation the scoped store promises.  A digest
    of the exact original name is therefore *always* appended: every
    distinct tenant gets a distinct, traversal-free directory, and no crafted
    name can collide with another tenant's directory (a conditional digest
    would let a tenant literally named ``"x-<digest-of-y>"`` claim tenant
    ``y``'s directory).
    """
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in tenant)
    digest = hashlib.sha256(tenant.encode("utf-8")).hexdigest()[:12]
    return f"{safe.strip('.') or 'tenant'}-{digest}"


class PhaseTimer:
    """Accumulates wall-clock durations per named phase (milliseconds)."""

    def __init__(self) -> None:
        self._totals_ms: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase: ``with timer.phase("db_access"): ...``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self._totals_ms[name] = self._totals_ms.get(name, 0.0) + elapsed_ms
            self._counts[name] = self._counts.get(name, 0) + 1

    def record(self, name: str, elapsed_ms: float) -> None:
        """Record an externally measured duration."""
        self._totals_ms[name] = self._totals_ms.get(name, 0.0) + elapsed_ms
        self._counts[name] = self._counts.get(name, 0) + 1

    def total_ms(self, name: Optional[str] = None) -> float:
        """Total milliseconds for one phase (or across all phases)."""
        if name is None:
            return sum(self._totals_ms.values())
        return self._totals_ms.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Phase → total milliseconds (plus ``"total"``)."""
        result = {name: round(value, 3) for name, value in self._totals_ms.items()}
        result["total"] = round(self.total_ms(), 3)
        return result

    def reset(self) -> None:
        self._totals_ms.clear()
        self._counts.clear()


@dataclass
class StoreStats:
    """Operation counters exposed by the engine (used in reports and tests)."""

    nodes_written: int = 0
    edges_written: int = 0
    nodes_read: int = 0
    transactions_committed: int = 0
    queries_answered: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "nodes_written": self.nodes_written,
            "edges_written": self.edges_written,
            "nodes_read": self.nodes_read,
            "transactions_committed": self.transactions_committed,
            "queries_answered": self.queries_answered,
        }


class GraphStore:
    """Embedded multi-graph store with logging, indexes and timing.

    Example
    -------
    >>> store = GraphStore()                    # in-memory
    >>> _ = store.create_graph("demo")
    >>> store.add_node("demo", "a", features={"role": "person"})
    >>> store.add_node("demo", "b")
    >>> store.add_edge("demo", "a", "b")
    >>> store.successors("demo", "a")
    {'b'}
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        tenant: Optional[str] = None,
        io: Optional[StorageIO] = None,
        retry: Optional[object] = None,
        engine: Optional[str] = None,
        page_cache_pages: Optional[int] = None,
        page_rows: Optional[int] = None,
        read_only: bool = False,
    ) -> None:
        if engine is None:
            engine = detect_engine(directory)
        if engine not in STORE_ENGINES:
            raise StoreError(
                f"unknown store engine {engine!r}; choose one of {', '.join(STORE_ENGINES)}"
            )
        #: Which storage backend this store runs on (``"file"`` or ``"sqlite"``).
        self.engine = engine
        #: True when this process may only read the root (follower opens).
        self.read_only = read_only
        if engine == "sqlite":
            from repro.store.sqlite import SQLiteGraphStorage

            self.storage: GraphStorage = SQLiteGraphStorage(  # type: ignore[assignment]
                directory,
                io=io,
                page_cache_pages=page_cache_pages,
                page_rows=page_rows,
                read_only=read_only,
            )
        else:
            if read_only:
                raise StoreError(
                    "read-only opens require the sqlite engine (the file engine "
                    "rewrites its root on open)"
                )
            self.storage = GraphStorage(directory, io=io)
        self.timer = PhaseTimer()
        self.stats = StoreStats()
        #: Owning tenant; stamped on every catalog descriptor this engine
        #: creates so multi-tenant registries can audit who owns what.
        self.tenant = tenant
        #: Optional retry policy (anything with ``call(fn)``, e.g.
        #: :class:`~repro.reliability.retry.RetryPolicy`) applied around
        #: durable writes — write-log appends, snapshots, checkpoints — so a
        #: transient ``OSError`` surfaces as one retried operation instead of
        #: a failed request.  ``None`` runs every write exactly once.
        self.retry = retry
        self._adjacency: Dict[str, AdjacencyIndex] = {}
        self._features: Dict[str, FeatureIndex] = {}
        # Eagerly index only what recovery materialized.  The SQLite engine
        # loads graphs lazily (paged, on first use), so forcing every graph
        # resident here would defeat the out-of-core path; indexes for
        # lazily loaded graphs build on first query via ``_index_for``.
        resident = getattr(self.storage, "resident_names", self.storage.names)
        for name in resident():
            self._rebuild_indexes(name)

    def _durable(self, operation: Callable[[], object]) -> object:
        """Run one durable write, through the retry policy when configured."""
        if self.retry is None:
            return operation()
        return self.retry.call(operation)

    def _require_writable(self, action: str) -> None:
        if self.read_only:
            raise ReadOnlyStoreError(f"cannot {action}: store opened read-only")

    @classmethod
    def for_tenant(
        cls,
        base_directory: Optional[Union[str, Path]],
        tenant: str,
        *,
        engine: Optional[str] = None,
        **engine_options: Any,
    ) -> "GraphStore":
        """A tenant-scoped store rooted under ``base_directory/<tenant>``.

        Each tenant gets its own snapshot directory, write log and catalog,
        so tenants can never read (or clobber) each other's graphs.  A
        ``None`` base directory gives the tenant an isolated in-memory
        store.  A ``None`` engine auto-detects from the tenant's root (so
        reopening never needs the flag again).  This is what the
        :class:`~repro.api.registry.ServiceRegistry` hands to each tenant's
        services.
        """
        if not tenant:
            raise StoreError("a tenant-scoped store needs a non-empty tenant name")
        if base_directory is None:
            return cls(tenant=tenant, engine=engine, **engine_options)
        return cls(
            Path(base_directory) / _tenant_dirname(tenant),
            tenant=tenant,
            engine=engine,
            **engine_options,
        )

    # ------------------------------------------------------------------ #
    # graph lifecycle
    # ------------------------------------------------------------------ #
    def create_graph(self, name: str, *, kind: str = "graph", description: str = "") -> str:
        """Create an empty named graph and its indexes."""
        self._require_writable("create a graph")
        with self.timer.phase("db_access"):
            self._durable(
                lambda: self.storage.create_graph(name, kind=kind, description=description)
            )
        self._stamp_tenant(name)
        self._durable(self.storage.save_catalog)
        self._adjacency[name] = AdjacencyIndex()
        self._features[name] = FeatureIndex()
        return name

    def put_graph(self, graph: PropertyGraph, *, name: Optional[str] = None) -> str:
        """Store a prebuilt graph wholesale (snapshot write when durable)."""
        self._require_writable("store a graph")
        with self.timer.phase("db_access"):
            # Defer the catalog write until after the tenant stamp so one
            # put costs one catalog save, not two.
            stored_name = self._durable(
                lambda: self.storage.put_graph(graph, name=name, save_catalog=False)
            )
        self._stamp_tenant(stored_name)
        self.storage.save_catalog()
        self._rebuild_indexes(stored_name)
        self.stats.nodes_written += graph.node_count()
        self.stats.edges_written += graph.edge_count()
        return stored_name

    def drop_graph(self, name: str) -> None:
        """Remove a named graph, its indexes and its snapshot."""
        self._require_writable("drop a graph")
        with self.timer.phase("db_access"):
            self.storage.drop_graph(name)
        self._adjacency.pop(name, None)
        self._features.pop(name, None)

    def graph(self, name: str) -> PropertyGraph:
        """A *copy* of the stored graph (callers cannot corrupt store state)."""
        with self.timer.phase("db_access"):
            stored = self.storage.graph(name)
            copy = stored.copy()
        self.stats.nodes_read += copy.node_count()
        return copy

    def graph_names(self) -> List[str]:
        return self.storage.names()

    def has_graph(self, name: str) -> bool:
        return self.storage.has_graph(name)

    def checkpoint(self) -> None:
        """Snapshot every graph and truncate the write log (durable stores only)."""
        self._require_writable("checkpoint the store")
        with self.timer.phase("db_access"):
            self._durable(self.storage.checkpoint)

    def health(self) -> Dict[str, Any]:
        """The store's condition: durability, write-log depth, last recovery.

        The payload is what :meth:`repro.api.service.ProtectionService.health`
        embeds under ``"store"`` for the future HTTP frontend.
        """
        report = self.storage.recovery_report
        return {
            "engine": self.engine,
            "durable": self.storage.durable,
            "directory": str(self.storage.directory) if self.storage.durable else None,
            "graphs": len(self.storage.names()),
            "tenant": self.tenant,
            "wal": {
                "records": len(self.storage.wal),
                "next_seq": self.storage.wal.next_seq,
                **self.storage.wal.recovery_info.as_dict(),
            },
            "recovery": report.as_dict(),
            "retry": getattr(self.retry, "stats", lambda: None)(),
        }

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        graph_name: str,
        node_id: NodeId,
        *,
        kind: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Insert one node (write-ahead logged).

        Mutators validate first, make the operation durable in the write log,
        then apply it in memory — the write-ahead discipline: a crash after
        the append replays the operation on reopen, and a crash before it
        never half-applied anything.
        """
        self._require_writable("add a node")
        graph = self.storage.graph(graph_name)
        if graph.has_node(node_id):
            raise DuplicateNodeError(node_id)
        with self.timer.phase("db_access"):
            self._durable(
                lambda: self.storage.log(
                    "add_node",
                    graph_name,
                    {"id": node_id, "kind": kind, "features": dict(features or {})},
                )
            )
            graph.add_node(node_id, kind=kind, features=features)
        self._index_for(graph_name).add_node(node_id)
        self._feature_index_for(graph_name).index_node(node_id, dict(features or {}))
        self.stats.nodes_written += 1
        self._refresh(graph_name)

    def add_edge(
        self,
        graph_name: str,
        source: NodeId,
        target: NodeId,
        *,
        label: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Insert one edge (write-ahead logged)."""
        self._require_writable("add an edge")
        graph = self.storage.graph(graph_name)
        if source == target:
            raise ValueError(f"self-loops are not supported (node {source!r})")
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        if not graph.has_node(target):
            raise NodeNotFoundError(target)
        if graph.has_edge(source, target):
            raise DuplicateEdgeError(source, target)
        with self.timer.phase("db_access"):
            self._durable(
                lambda: self.storage.log(
                    "add_edge",
                    graph_name,
                    {"source": source, "target": target, "label": label, "features": dict(features or {})},
                )
            )
            graph.add_edge(source, target, label=label, features=features)
        self._index_for(graph_name).add_edge(source, target)
        self.stats.edges_written += 1
        self._refresh(graph_name)

    def remove_node(self, graph_name: str, node_id: NodeId) -> None:
        """Remove one node and its incident edges (write-ahead logged)."""
        self._require_writable("remove a node")
        graph = self.storage.graph(graph_name)
        if not graph.has_node(node_id):
            raise NodeNotFoundError(node_id)
        with self.timer.phase("db_access"):
            self._durable(
                lambda: self.storage.log("remove_node", graph_name, {"id": node_id})
            )
            graph.remove_node(node_id)
        self._index_for(graph_name).remove_node(node_id)
        self._feature_index_for(graph_name).remove_node(node_id)
        self._refresh(graph_name)

    def remove_edge(self, graph_name: str, source: NodeId, target: NodeId) -> None:
        """Remove one edge (write-ahead logged)."""
        self._require_writable("remove an edge")
        graph = self.storage.graph(graph_name)
        if not graph.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        with self.timer.phase("db_access"):
            self._durable(
                lambda: self.storage.log(
                    "remove_edge", graph_name, {"source": source, "target": target}
                )
            )
            graph.remove_edge(source, target)
        self._index_for(graph_name).remove_edge(source, target)
        self._refresh(graph_name)

    def set_node_features(self, graph_name: str, node_id: NodeId, features: Mapping[str, Any]) -> None:
        """Replace one node's features (write-ahead logged)."""
        self._require_writable("set node features")
        graph = self.storage.graph(graph_name)
        if not graph.has_node(node_id):
            raise NodeNotFoundError(node_id)
        with self.timer.phase("db_access"):
            self._durable(
                lambda: self.storage.log(
                    "set_node_features", graph_name, {"id": node_id, "features": dict(features)}
                )
            )
            graph.set_node_features(node_id, features)
        self._feature_index_for(graph_name).index_node(node_id, dict(features))

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #
    def transaction(self, graph_name: str) -> Transaction:
        """Open a buffered transaction against one graph."""
        self._require_writable("open a transaction")
        if not self.storage.has_graph(graph_name):
            raise StoreError(f"graph {graph_name!r} is not in the store")

        def _apply(transaction: Transaction) -> None:
            graph = self.storage.graph(graph_name)
            with self.timer.phase("db_access"):
                # Crash-safe commit protocol: validate the whole batch on a
                # scratch copy, make it durable as ONE framed ``txn`` record
                # (a single fsynced append — the atomic commit point), then
                # apply to the live graph.  A crash before the append loses
                # the batch wholesale; after it, replay applies the batch
                # wholesale.  No schedule exposes a partial transaction.
                validate_operations(graph, transaction.operations)
                applied = [
                    {"op": operation.op, "payload": dict(operation.payload)}
                    for operation in transaction.operations
                ]
                self._durable(
                    lambda: self.storage.log("txn", graph_name, {"operations": applied})
                )
                # The batch mirrors the log record's atomicity for every
                # delta subscriber: one composite delta, one version bump,
                # one interval re-encode — not one per operation.
                with graph.batch():
                    apply_to(graph, transaction.operations)
            self._rebuild_indexes(graph_name)
            self.stats.transactions_committed += 1
            self.stats.nodes_written += sum(
                1 for entry in applied if entry["op"] == "add_node"
            )
            self.stats.edges_written += sum(
                1 for entry in applied if entry["op"] == "add_edge"
            )
            self._refresh(graph_name)

        return Transaction(graph_name=graph_name, _apply=_apply)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def successors(self, graph_name: str, node_id: NodeId) -> Set[NodeId]:
        """Indexed successor lookup."""
        self.stats.queries_answered += 1
        return self._index_for(graph_name).successors(node_id)

    def predecessors(self, graph_name: str, node_id: NodeId) -> Set[NodeId]:
        """Indexed predecessor lookup."""
        self.stats.queries_answered += 1
        return self._index_for(graph_name).predecessors(node_id)

    def find_nodes(self, graph_name: str, attribute: str, value: Any) -> Set[NodeId]:
        """Feature-index lookup: nodes whose ``attribute`` equals ``value``."""
        self.stats.queries_answered += 1
        return self._feature_index_for(graph_name).lookup(attribute, value)

    def lineage(
        self, graph_name: str, node_id: NodeId, *, direction: str = "ancestors"
    ) -> Set[NodeId]:
        """Full ancestor or descendant closure of one node in a stored graph.

        On the SQLite engine this runs as an interval range scan against the
        persisted encoding (no Python traversal, and — for a graph that was
        never materialized — no graph object in memory at all).  The file
        engine walks the in-memory graph with BFS.  The differential suite
        in ``tests/property/test_store_reachability.py`` pins the two paths
        exactly equal.
        """
        if direction not in {"ancestors", "descendants"}:
            raise ValueError(f"direction must be 'ancestors' or 'descendants', got {direction!r}")
        self.stats.queries_answered += 1
        sql_lineage = getattr(self.storage, "sql_lineage", None)
        if sql_lineage is not None:
            with self.timer.phase("query"):
                return sql_lineage(graph_name, node_id, direction=direction)
        graph = self.storage.graph(graph_name)
        with self.timer.phase("query"):
            if direction == "ancestors":
                return ancestors(graph, node_id)
            return descendants(graph, node_id)

    def search_nodes(self, graph_name: str, query: str) -> Set[NodeId]:
        """Text search over node kinds and features.

        The SQLite engine serves this from its FTS index (full ``MATCH``
        syntax when FTS5 is compiled in, substring fallback otherwise); the
        file engine scans the in-memory graph with the same substring
        semantics.  Single-term queries behave identically on both.
        """
        self.stats.queries_answered += 1
        search = getattr(self.storage, "search_nodes", None)
        if search is not None:
            with self.timer.phase("query"):
                return search(graph_name, query)
        graph = self.storage.graph(graph_name)
        needle = query.lower()
        with self.timer.phase("query"):
            found: Set[NodeId] = set()
            for node in graph.nodes():
                parts = [str(node.kind or "")]
                for key, value in node.features.items():
                    parts.extend((str(key), str(value)))
                if needle in " ".join(parts).lower():
                    found.add(node.node_id)
            return found

    def list_accounts(self, *, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """Summaries of every protected account held by this store.

        The SQLite engine reads its materialized ``account_listing`` table;
        the file engine assembles the same rows from catalog descriptors.
        """
        lister = getattr(self.storage, "list_accounts", None)
        if lister is not None:
            return lister(tenant=tenant)
        listing: List[Dict[str, Any]] = []
        for descriptor in self.storage.catalog.find(kind="protected_account", tenant=tenant):
            raw = descriptor.metadata.get("protected_account")
            try:
                payload = json.loads(raw) if isinstance(raw, str) else dict(raw or {})
            except (json.JSONDecodeError, TypeError):
                payload = {}
            listing.append(
                {
                    "name": descriptor.name,
                    "graph": str(payload.get("graph_name", "")),
                    "tenant": descriptor.metadata.get("tenant"),
                    "privilege": payload.get("privilege"),
                    "strategy": payload.get("strategy"),
                    "nodes": descriptor.node_count,
                    "edges": descriptor.edge_count,
                    "surrogate_nodes": table_len(payload.get("surrogate_nodes", [])),
                    "surrogate_edges": table_len(payload.get("surrogate_edges", [])),
                }
            )
        listing.sort(key=lambda entry: entry["name"])
        return listing

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _stamp_tenant(self, graph_name: str) -> None:
        """Mutate only; callers persist via ``storage.save_catalog()``."""
        if self.tenant is not None:
            self.storage.catalog.get(graph_name).metadata["tenant"] = self.tenant

    def _index_for(self, graph_name: str) -> AdjacencyIndex:
        if graph_name not in self._adjacency:
            self._rebuild_indexes(graph_name)
        return self._adjacency[graph_name]

    def _feature_index_for(self, graph_name: str) -> FeatureIndex:
        if graph_name not in self._features:
            self._rebuild_indexes(graph_name)
        return self._features[graph_name]

    def _rebuild_indexes(self, graph_name: str) -> None:
        graph = self.storage.graph(graph_name)
        self._adjacency[graph_name] = AdjacencyIndex.build(graph)
        self._features[graph_name] = FeatureIndex.build(graph)

    def _refresh(self, graph_name: str) -> None:
        graph = self.storage.graph(graph_name)
        self.storage.catalog.update_counts(
            graph_name, node_count=graph.node_count(), edge_count=graph.edge_count()
        )
