"""A crash-safe append-only write log with framed, checksummed records.

Every mutation of the store is recorded as one framed line; replaying the
log reconstructs the store's state, which is how the storage layer recovers
a directory that has a log but no (or an outdated) snapshot.

Record framing
--------------
Each durable record is one line::

    W1 <length> <crc32> <json>\\n

where ``length`` is the byte length of the UTF-8 JSON body and ``crc32`` its
checksum (zlib, hex).  The frame makes torn writes *detectable*: a record
cut at any byte offset fails the length or CRC check, so recovery can
distinguish "the process died mid-append" (a torn tail — truncated and
replay continues) from "the bytes rotted under us" (framed garbage *before*
intact records — a :class:`~repro.exceptions.CorruptionError`, since
truncating there would silently drop committed records).  Legacy un-framed
plain-JSON lines from pre-framing logs still replay.

Appends are durable at return: the framed line is written, flushed and
fsynced through the :class:`~repro.store.io.StorageIO` seam (one fsync per
record; see ``docs/reliability.md`` for the full failure model), and a
failed append rolls the file back to its pre-append size so a retry cannot
stack a half-record under a whole one.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import CorruptionError, StoreError
from repro.store.io import StorageIO, resolve_io

#: Operations understood by the replay logic.  ``txn`` is a composite record
#: whose payload carries a whole transaction's operations — one fsynced
#: append, so the batch commits (and replays) atomically.
KNOWN_OPS = (
    "create_graph",
    "drop_graph",
    "add_node",
    "remove_node",
    "add_edge",
    "remove_edge",
    "set_node_features",
    "txn",
)

#: Frame marker of the current record format.
_FRAME_MAGIC = "W1"

#: Pseudo-op of the truncation marker record :meth:`WriteAheadLog.truncate`
#: writes.  Markers carry the sequence counter across truncations; they are
#: never replayed and never appear in :meth:`WriteAheadLog.records`.
CHECKPOINT_MARKER_OP = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One entry of the write log."""

    seq: int
    op: str
    graph: str
    payload: Dict[str, Any]

    def to_json(self) -> str:
        return json.dumps(
            {"seq": self.seq, "op": self.op, "graph": self.graph, "payload": self.payload},
            sort_keys=True,
            default=str,
        )

    def to_frame(self) -> bytes:
        """The durable on-disk form: ``W1 <length> <crc32> <json>\\n``."""
        body = self.to_json().encode("utf-8")
        crc = zlib.crc32(body) & 0xFFFFFFFF
        return b"%s %d %08x " % (_FRAME_MAGIC.encode("ascii"), len(body), crc) + body + b"\n"

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CorruptionError(f"corrupt write-log line: {line[:80]!r}") from exc
        for key in ("seq", "op", "graph", "payload"):
            if key not in data:
                raise CorruptionError(f"write-log record missing {key!r}: {line[:80]!r}")
        return cls(seq=int(data["seq"]), op=data["op"], graph=data["graph"], payload=data["payload"])

    @classmethod
    def from_frame(cls, line: bytes) -> "LogRecord":
        """Parse one framed line; raises :class:`CorruptionError` on any damage."""
        if not line.startswith(_FRAME_MAGIC.encode("ascii") + b" "):
            # Legacy pre-framing logs hold bare JSON lines.
            return cls.from_json(line.decode("utf-8", errors="replace"))
        try:
            _, length_text, crc_text, body = line.split(b" ", 3)
            length = int(length_text)
            expected_crc = int(crc_text, 16)
        except ValueError as exc:
            raise CorruptionError(f"corrupt write-log frame: {line[:80]!r}") from exc
        if len(body) != length:
            raise CorruptionError(
                f"write-log frame length mismatch (expected {length}, got {len(body)})"
            )
        if (zlib.crc32(body) & 0xFFFFFFFF) != expected_crc:
            raise CorruptionError("write-log frame failed its CRC check")
        return cls.from_json(body.decode("utf-8"))


@dataclass
class WalRecoveryInfo:
    """What opening a write-log file found (surfaced via ``service.health()``)."""

    records: int = 0
    #: Bytes of torn tail truncated on open (0 on a clean log).
    torn_bytes_truncated: int = 0
    #: Legacy un-framed lines accepted during replay.
    legacy_lines: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "torn_bytes_truncated": self.torn_bytes_truncated,
            "legacy_lines": self.legacy_lines,
        }


class WriteAheadLog:
    """Append-only log, either in memory or backed by a file."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        io: Optional[StorageIO] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.io = resolve_io(io)
        self._records: List[LogRecord] = []
        self._next_seq = 1
        self._base_seq = 0
        self.recovery_info = WalRecoveryInfo()
        if self.path is not None and self.path.exists():
            self._records = self._read_file()
            self.recovery_info.records = len(self._records)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, op: str, graph: str, payload: Optional[Dict[str, Any]] = None) -> LogRecord:
        """Append one record (durably, when file-backed) and return it.

        The in-memory record list is only extended after the frame reached
        disk, so a failed (and possibly retried) append never leaves the
        memory image ahead of durable state.
        """
        if op not in KNOWN_OPS:
            raise StoreError(f"unknown write-log operation {op!r}")
        record = LogRecord(seq=self._next_seq, op=op, graph=graph, payload=dict(payload or {}))
        if self.path is not None:
            self.io.append_bytes(self.path, record.to_frame())
        self._next_seq += 1
        self._records.append(record)
        return record

    def truncate(self) -> None:
        """Discard every record (after a snapshot has captured the state).

        The file is replaced atomically so a crash mid-truncate leaves
        either the full old log or the truncated one — never a prefix that
        would replay a partial history over the new snapshot.

        The file is not left *empty*: a framed ``checkpoint`` marker record
        preserves the sequence counter across truncation and reopen, so a
        service checkpoint stamped with a WAL sequence number can tell
        "nothing happened since" from "the range I would need was truncated"
        (see :attr:`base_seq`).  Markers never appear in :meth:`records`.
        """
        marker = LogRecord(seq=self._next_seq, op=CHECKPOINT_MARKER_OP, graph="", payload={})
        if self.path is not None:
            # Written even when the log file does not exist yet: the marker
            # is what carries the sequence counter across a reopen, and a
            # snapshot-only store still hands out checkpoint stamps.
            self.io.atomic_write_text(self.path, marker.to_frame().decode("utf-8"))
        self._records.clear()
        self._base_seq = marker.seq
        self._next_seq = marker.seq + 1

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def records(self) -> List[LogRecord]:
        """All records currently in the log, in order."""
        return list(self._records)

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended record will carry."""
        return self._next_seq

    @property
    def base_seq(self) -> int:
        """The highest sequence number truncated away (0 on a full log).

        Every record with ``seq > base_seq`` is retained, so a caller
        holding a stamp ``S`` can rely on :meth:`records_since` being the
        *complete* history after ``S`` exactly when ``S > base_seq``.
        """
        return self._base_seq

    def records_since(self, seq: int) -> List[LogRecord]:
        """Records with sequence numbers strictly greater than ``seq``."""
        return [record for record in self._records if record.seq > seq]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def _read_file(self) -> List[LogRecord]:
        """Parse the log file, truncating a torn tail in place.

        Damage scanning works line by line: the first undecodable line marks
        a *candidate* tear.  If nothing after it parses either, it is a torn
        tail — the file is truncated back to the last good record and replay
        continues.  If an intact record follows the damage, committed data
        sits beyond the hole and recovery refuses to guess
        (:class:`~repro.exceptions.CorruptionError`).
        """
        assert self.path is not None
        raw = self.io.read_bytes(self.path)
        records: List[LogRecord] = []
        good_end = 0
        offset = 0
        damage: Optional[Tuple[int, CorruptionError]] = None
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            line_end = len(raw) if newline < 0 else newline + 1
            line = raw[offset:line_end].rstrip(b"\n")
            if line:
                try:
                    record = self._parse_line(line)
                except CorruptionError as exc:
                    if damage is None:
                        damage = (offset, exc)
                else:
                    if damage is not None:
                        start, first_error = damage
                        raise CorruptionError(
                            f"write log {self.path} is corrupt at byte {start} with intact "
                            f"records after the damage ({first_error}); refusing to truncate "
                            "committed history",
                            path=str(self.path),
                        ) from first_error
                    if record.op == CHECKPOINT_MARKER_OP:
                        self._base_seq = max(self._base_seq, record.seq)
                    else:
                        records.append(record)
                    self._next_seq = max(self._next_seq, record.seq + 1)
                    good_end = line_end
            elif damage is None:
                good_end = line_end
            offset = line_end
        if damage is not None:
            torn = len(raw) - good_end
            self.io.truncate_file(self.path, good_end)
            self.recovery_info.torn_bytes_truncated += torn
        return records

    def _parse_line(self, line: bytes) -> LogRecord:
        record = LogRecord.from_frame(line)
        if not line.startswith(_FRAME_MAGIC.encode("ascii") + b" "):
            self.recovery_info.legacy_lines += 1
        return record
