"""A minimal append-only write log.

Every mutation of the store is recorded as one JSON line; replaying the log
reconstructs the store's state, which is how the storage layer recovers a
directory that has a log but no (or an outdated) snapshot.  The log is
intentionally simple: records are ``{"seq": int, "op": str, "graph": str,
"payload": {...}}`` and the file is only ever appended to or truncated as a
whole (after a snapshot).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.exceptions import StoreError

#: Operations understood by the replay logic.
KNOWN_OPS = (
    "create_graph",
    "drop_graph",
    "add_node",
    "remove_node",
    "add_edge",
    "remove_edge",
    "set_node_features",
)


@dataclass(frozen=True)
class LogRecord:
    """One entry of the write log."""

    seq: int
    op: str
    graph: str
    payload: Dict[str, Any]

    def to_json(self) -> str:
        return json.dumps(
            {"seq": self.seq, "op": self.op, "graph": self.graph, "payload": self.payload},
            sort_keys=True,
            default=str,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt write-log line: {line[:80]!r}") from exc
        for key in ("seq", "op", "graph", "payload"):
            if key not in data:
                raise StoreError(f"write-log record missing {key!r}: {line[:80]!r}")
        return cls(seq=int(data["seq"]), op=data["op"], graph=data["graph"], payload=data["payload"])


class WriteAheadLog:
    """Append-only log, either in memory or backed by a file."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: List[LogRecord] = []
        self._next_seq = 1
        if self.path is not None and self.path.exists():
            self._records = list(self._read_file())
            if self._records:
                self._next_seq = self._records[-1].seq + 1

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, op: str, graph: str, payload: Optional[Dict[str, Any]] = None) -> LogRecord:
        """Append one record (durably, when file-backed) and return it."""
        if op not in KNOWN_OPS:
            raise StoreError(f"unknown write-log operation {op!r}")
        record = LogRecord(seq=self._next_seq, op=op, graph=graph, payload=dict(payload or {}))
        self._next_seq += 1
        self._records.append(record)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        return record

    def truncate(self) -> None:
        """Discard every record (after a snapshot has captured the state)."""
        self._records.clear()
        if self.path is not None and self.path.exists():
            self.path.write_text("", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def records(self) -> List[LogRecord]:
        """All records currently in the log, in order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def _read_file(self) -> Iterator[LogRecord]:
        assert self.path is not None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield LogRecord.from_json(line)
