"""Durable storage of named graphs: snapshots plus the write log.

A :class:`GraphStorage` manages a directory with one JSON snapshot per graph
(``<name>.graph.json``) and one shared write log (``wal.jsonl``).  Opening a
directory loads every snapshot and replays any log records appended after
the latest snapshot, so the store recovers to its last durable state.  When
constructed without a directory the storage is purely in-memory (the mode
used by most tests and benchmarks).

Crash consistency
-----------------
All file writes flow through the :class:`~repro.store.io.StorageIO` seam
with explicit commit points:

* snapshots and the catalog are written atomically (temp file + fsync +
  ``os.replace`` + directory fsync) — a reader never observes partial JSON;
* write-log appends are framed, checksummed and fsynced per record
  (:mod:`repro.store.wal`), and a torn tail left by a crash is truncated on
  reopen;
* :meth:`GraphStorage.checkpoint` orders snapshot-then-truncate, and a crash
  *between* the two is safe: replaying the full log over the fresh snapshots
  converges, because replay applies operations in original order and the
  existence guards only skip exact duplicates.

Recovery keeps a :class:`RecoveryReport` of everything it had to do —
snapshots quarantined (unreadable JSON is renamed aside, never silently
deleted), torn write-log bytes truncated, orphaned temp files removed — so
``service.health()`` can surface the store's last-known condition.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import CatalogError, GraphError, StoreError
from repro.graph.model import PropertyGraph
from repro.graph.serialization import graph_from_dict, graph_to_dict, graph_to_json
from repro.store.catalog import Catalog
from repro.store.io import TMP_SUFFIX, StorageIO, resolve_io
from repro.store.wal import LogRecord, WriteAheadLog

_SNAPSHOT_SUFFIX = ".graph.json"
_WAL_NAME = "wal.jsonl"
_CATALOG_NAME = "catalog.json"
_QUARANTINE_SUFFIX = ".corrupt"


def replay_operation(graph: PropertyGraph, op: str, payload: Dict[str, Any]) -> None:
    """Apply one primitive write-log operation to ``graph`` idempotently.

    Shared by every storage engine (the JSON file engine below and the
    SQLite engine in :mod:`repro.store.sqlite`): replay semantics are part
    of the log format, not of any one backend.  The existence guards make
    replay idempotent, which is what lets a checkpoint crash between
    snapshot and log truncation converge on reopen.
    """
    if op == "add_node":
        if not graph.has_node(payload["id"]):
            graph.add_node(payload["id"], kind=payload.get("kind"), features=payload.get("features") or {})
    elif op == "remove_node":
        if graph.has_node(payload["id"]):
            graph.remove_node(payload["id"])
    elif op == "add_edge":
        if not graph.has_edge(payload["source"], payload["target"]):
            graph.add_edge(
                payload["source"],
                payload["target"],
                label=payload.get("label"),
                features=payload.get("features") or {},
                create_nodes=True,
            )
    elif op == "remove_edge":
        if graph.has_edge(payload["source"], payload["target"]):
            graph.remove_edge(payload["source"], payload["target"])
    elif op == "set_node_features":
        if graph.has_node(payload["id"]):
            graph.set_node_features(payload["id"], payload.get("features") or {})
    else:  # pragma: no cover - KNOWN_OPS guards this
        raise StoreError(f"cannot replay unknown operation {op!r}")


@dataclass
class RecoveryReport:
    """What one :class:`GraphStorage` open had to repair (health surface)."""

    snapshots_loaded: int = 0
    records_replayed: int = 0
    #: Snapshot files renamed aside because their JSON would not parse.
    quarantined: List[str] = field(default_factory=list)
    #: Orphaned atomic-write temp files removed (crash between stage and rename).
    tmp_files_removed: int = 0
    #: Torn write-log bytes truncated on open.
    wal_torn_bytes: int = 0
    #: Graphs imported from another engine's on-disk format (the SQLite
    #: engine's compatibility reader for legacy JSON file stores).
    migrated_graphs: int = 0

    @property
    def clean(self) -> bool:
        """True when recovery found nothing to repair."""
        return not self.quarantined and self.tmp_files_removed == 0 and self.wal_torn_bytes == 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "clean": self.clean,
            "snapshots_loaded": self.snapshots_loaded,
            "records_replayed": self.records_replayed,
            "quarantined": list(self.quarantined),
            "tmp_files_removed": self.tmp_files_removed,
            "wal_torn_bytes": self.wal_torn_bytes,
            "migrated_graphs": self.migrated_graphs,
        }


class GraphStorage:
    """Named-graph persistence with write-log recovery."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        io: Optional[StorageIO] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.io = resolve_io(io)
        self.catalog = Catalog()
        self._graphs: Dict[str, PropertyGraph] = {}
        self.recovery_report = RecoveryReport()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._remove_orphan_tmp_files()
            self.wal = WriteAheadLog(self.directory / _WAL_NAME, io=self.io)
            self.recovery_report.wal_torn_bytes = self.wal.recovery_info.torn_bytes_truncated
            self._recover()
        else:
            self.wal = WriteAheadLog(io=self.io)

    @property
    def durable(self) -> bool:
        """True when backed by a directory on disk."""
        return self.directory is not None

    # ------------------------------------------------------------------ #
    # graph lifecycle
    # ------------------------------------------------------------------ #
    def create_graph(self, name: str, *, kind: str = "graph", description: str = "") -> PropertyGraph:
        """Create (and log) an empty named graph.

        Write-ahead ordering: the duplicate check runs first, the log record
        becomes durable second, and only then does the catalog register the
        graph — so a failed (or retried) append leaves no half-registered
        state behind.
        """
        if name in self.catalog:
            self.catalog.register(name)  # raises the canonical CatalogError
        self.wal.append("create_graph", name, {"kind": kind, "description": description})
        self.catalog.register(name, kind=kind, description=description)
        graph = PropertyGraph(name=name)
        self._graphs[name] = graph
        return graph

    def put_graph(
        self,
        graph: PropertyGraph,
        *,
        name: Optional[str] = None,
        save_catalog: bool = True,
    ) -> str:
        """Store an already-built graph under ``name`` (default: its own name).

        ``save_catalog=False`` defers the catalog write for callers that
        mutate the descriptor right after storing (tenant stamps, account
        metadata) and save once themselves.
        """
        name = name if name is not None else graph.name
        if not name:
            raise StoreError("a stored graph needs a name")
        if name in self.catalog:
            self.catalog.drop(name)
        self.catalog.register(name)
        self._graphs[name] = graph.copy(name=name)
        self._refresh_counts(name)
        if self.durable:
            self._write_snapshot(name)
            if save_catalog:
                self.save_catalog()
        return name

    def drop_graph(self, name: str) -> None:
        """Remove a graph from the store (and its snapshot, when durable)."""
        if name not in self.catalog:
            self.catalog.drop(name)  # raises the canonical CatalogError
        self.wal.append("drop_graph", name)
        self.catalog.drop(name)
        self._graphs.pop(name, None)
        if self.durable:
            self.io.unlink(self._snapshot_path(name))
            self.save_catalog()

    def graph(self, name: str) -> PropertyGraph:
        """The live graph object for ``name`` (mutations must go through the engine)."""
        if name not in self._graphs:
            raise CatalogError(f"graph {name!r} is not in the store")
        return self._graphs[name]

    def has_graph(self, name: str) -> bool:
        return name in self._graphs

    def names(self) -> List[str]:
        return self.catalog.names()

    def resident_names(self) -> List[str]:
        """Graphs held in memory — all of them, on this eager engine."""
        return list(self._graphs)

    # ------------------------------------------------------------------ #
    # logged mutations (called by the engine)
    # ------------------------------------------------------------------ #
    def log(self, op: str, graph_name: str, payload: Optional[dict] = None) -> LogRecord:
        """Append one mutation record to the write log."""
        record = self.wal.append(op, graph_name, payload)
        return record

    def _refresh_counts(self, name: str) -> None:
        graph = self._graphs[name]
        self.catalog.update_counts(name, node_count=graph.node_count(), edge_count=graph.edge_count())

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> None:
        """Write a snapshot of every graph and truncate the write log.

        Ordering matters: snapshots and the catalog become durable *before*
        the log is emptied.  A crash between the two replays the full log
        over the new snapshots on reopen, which converges (see the module
        docstring); a crash before the snapshots leaves the old
        snapshot+log pair intact.  Either way no committed state is lost.
        """
        if not self.durable:
            return
        for name in self._graphs:
            self._write_snapshot(name)
        self.save_catalog()
        self.wal.truncate()

    def save_catalog(self) -> None:
        """Persist catalog descriptors (kind, description, metadata) to disk.

        Snapshots only carry graph structure; without this file a reopened
        store would rebuild its catalog with default kinds and empty
        metadata, losing the ``protected_account`` kind and the tenant
        stamps the registry's audit report relies on.  Counts are excluded —
        they are recomputed from the graphs on recovery.  Callers that
        mutate a descriptor directly (e.g. account persistence) must call
        this afterwards; it is a no-op for in-memory stores.  The write is
        atomic (temp + rename), so the catalog on disk is always whole.
        """
        if not self.durable:
            return
        payload = {
            descriptor.name: {
                "kind": descriptor.kind,
                "description": descriptor.description,
                "metadata": dict(descriptor.metadata),
            }
            for descriptor in self.catalog.descriptors()
        }
        self.io.atomic_write_text(
            self.directory / _CATALOG_NAME, json.dumps(payload, indent=2, default=str)
        )

    def _restore_catalog(self) -> None:
        """Merge the persisted descriptor attributes into the rebuilt catalog."""
        assert self.directory is not None
        path = self.directory / _CATALOG_NAME
        if not path.exists():
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            # Catalog writes are atomic, so damage here is external; the
            # descriptors are advisory (graphs and accounts still load), so
            # quarantine and continue rather than refuse to open.
            self._quarantine(path)
            self.recovery_report.quarantined.append(path.name)
            return
        for name, attributes in payload.items():
            if name not in self.catalog:
                continue  # snapshot gone: the graphs on disk win
            descriptor = self.catalog.get(name)
            descriptor.kind = attributes.get("kind", descriptor.kind)
            descriptor.description = attributes.get("description", descriptor.description)
            descriptor.metadata.update(attributes.get("metadata", {}))

    def _write_snapshot(self, name: str) -> None:
        assert self.directory is not None
        self.io.atomic_write_text(self._snapshot_path(name), graph_to_json(self._graphs[name]))

    def _snapshot_path(self, name: str) -> Path:
        assert self.directory is not None
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)
        return self.directory / f"{safe}{_SNAPSHOT_SUFFIX}"

    def snapshot_graph(self, name: str) -> Optional[PropertyGraph]:
        """The graph exactly as its on-disk snapshot records it (or ``None``).

        Warm-restart checkpoints validate against snapshot state before
        trusting their cached views; this reads the snapshot file fresh so
        post-snapshot write-log records are *not* included.
        """
        if not self.durable:
            return None
        path = self._snapshot_path(name)
        if not path.exists():
            return None
        return graph_from_dict(json.loads(self.io.read_text(path)))

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def _remove_orphan_tmp_files(self) -> None:
        """Delete staging files a crash left behind (never committed state)."""
        assert self.directory is not None
        for orphan in self.directory.glob(f"*{TMP_SUFFIX}"):
            self.io.unlink(orphan)
            self.recovery_report.tmp_files_removed += 1

    def _quarantine(self, path: Path) -> None:
        """Rename a damaged file aside (``<name>.corrupt``), never delete it."""
        target = path.with_name(path.name + _QUARANTINE_SUFFIX)
        suffix = 0
        while target.exists():
            suffix += 1
            target = path.with_name(f"{path.name}{_QUARANTINE_SUFFIX}.{suffix}")
        self.io.replace(path, target)

    def _recover(self) -> None:
        """Load snapshots, then replay write-log records on top of them.

        A snapshot whose JSON will not parse is quarantined (renamed aside)
        and recovery continues: the write log may still rebuild the graph
        from its ``create_graph`` record, and every other graph in the store
        stays available instead of one bad file taking the directory down.
        """
        assert self.directory is not None
        for snapshot in sorted(self.directory.glob(f"*{_SNAPSHOT_SUFFIX}")):
            try:
                graph = graph_from_dict(json.loads(self.io.read_text(snapshot)))
            except (json.JSONDecodeError, GraphError, KeyError, TypeError):
                self._quarantine(snapshot)
                self.recovery_report.quarantined.append(snapshot.name)
                continue
            name = graph.name or snapshot.name[: -len(_SNAPSHOT_SUFFIX)]
            if name not in self.catalog:
                self.catalog.register(name)
            self._graphs[name] = graph
            self._refresh_counts(name)
            self.recovery_report.snapshots_loaded += 1
        for record in self.wal.records():
            self._replay(record)
            self.recovery_report.records_replayed += 1
        self._restore_catalog()

    def _replay(self, record: LogRecord) -> None:
        name = record.graph
        payload = record.payload
        if record.op == "create_graph":
            if name not in self.catalog:
                self.catalog.register(
                    name,
                    kind=payload.get("kind", "graph"),
                    description=payload.get("description", ""),
                )
            self._graphs.setdefault(name, PropertyGraph(name=name))
            return
        if record.op == "drop_graph":
            if name in self.catalog:
                self.catalog.drop(name)
            self._graphs.pop(name, None)
            return
        if name not in self._graphs:
            # Mutation for a graph that has no snapshot and no create record:
            # tolerate it (the snapshot may have been deleted manually).
            self._graphs[name] = PropertyGraph(name=name)
            if name not in self.catalog:
                self.catalog.register(name)
        graph = self._graphs[name]
        if record.op == "txn":
            # One framed record per transaction: the whole batch replays (or
            # was never durable) as a unit.
            for operation in payload.get("operations", []):
                self._replay_op(graph, operation.get("op"), operation.get("payload", {}))
        else:
            self._replay_op(graph, record.op, payload)
        self._refresh_counts(name)

    def _replay_op(self, graph: PropertyGraph, op: str, payload: Dict[str, Any]) -> None:
        """Apply one primitive operation idempotently during replay."""
        replay_operation(graph, op, payload)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def export_graph(self, name: str) -> dict:
        """The serialised form of one stored graph."""
        return graph_to_dict(self.graph(name))

    def import_graph(self, payload: dict, *, name: Optional[str] = None) -> str:
        """Store a graph from its serialised form."""
        graph = graph_from_dict(payload)
        return self.put_graph(graph, name=name)
