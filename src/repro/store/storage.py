"""Durable storage of named graphs: snapshots plus the write log.

A :class:`GraphStorage` manages a directory with one JSON snapshot per graph
(``<name>.graph.json``) and one shared write log (``wal.jsonl``).  Opening a
directory loads every snapshot and replays any log records appended after
the latest snapshot, so the store recovers to its last durable state.  When
constructed without a directory the storage is purely in-memory (the mode
used by most tests and benchmarks).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import CatalogError, StoreError
from repro.graph.model import PropertyGraph
from repro.graph.serialization import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.store.catalog import Catalog
from repro.store.wal import LogRecord, WriteAheadLog

_SNAPSHOT_SUFFIX = ".graph.json"
_WAL_NAME = "wal.jsonl"
_CATALOG_NAME = "catalog.json"


class GraphStorage:
    """Named-graph persistence with write-log recovery."""

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.catalog = Catalog()
        self._graphs: Dict[str, PropertyGraph] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.wal = WriteAheadLog(self.directory / _WAL_NAME)
            self._recover()
        else:
            self.wal = WriteAheadLog()

    @property
    def durable(self) -> bool:
        """True when backed by a directory on disk."""
        return self.directory is not None

    # ------------------------------------------------------------------ #
    # graph lifecycle
    # ------------------------------------------------------------------ #
    def create_graph(self, name: str, *, kind: str = "graph", description: str = "") -> PropertyGraph:
        """Create (and log) an empty named graph."""
        self.catalog.register(name, kind=kind, description=description)
        graph = PropertyGraph(name=name)
        self._graphs[name] = graph
        self.wal.append("create_graph", name, {"kind": kind, "description": description})
        return graph

    def put_graph(
        self,
        graph: PropertyGraph,
        *,
        name: Optional[str] = None,
        save_catalog: bool = True,
    ) -> str:
        """Store an already-built graph under ``name`` (default: its own name).

        ``save_catalog=False`` defers the catalog write for callers that
        mutate the descriptor right after storing (tenant stamps, account
        metadata) and save once themselves.
        """
        name = name if name is not None else graph.name
        if not name:
            raise StoreError("a stored graph needs a name")
        if name in self.catalog:
            self.catalog.drop(name)
        self.catalog.register(name)
        self._graphs[name] = graph.copy(name=name)
        self._refresh_counts(name)
        if self.durable:
            self._write_snapshot(name)
            if save_catalog:
                self.save_catalog()
        return name

    def drop_graph(self, name: str) -> None:
        """Remove a graph from the store (and its snapshot, when durable)."""
        self.catalog.drop(name)
        self._graphs.pop(name, None)
        self.wal.append("drop_graph", name)
        if self.durable:
            snapshot = self._snapshot_path(name)
            if snapshot.exists():
                snapshot.unlink()
            self.save_catalog()

    def graph(self, name: str) -> PropertyGraph:
        """The live graph object for ``name`` (mutations must go through the engine)."""
        if name not in self._graphs:
            raise CatalogError(f"graph {name!r} is not in the store")
        return self._graphs[name]

    def has_graph(self, name: str) -> bool:
        return name in self._graphs

    def names(self) -> List[str]:
        return self.catalog.names()

    # ------------------------------------------------------------------ #
    # logged mutations (called by the engine)
    # ------------------------------------------------------------------ #
    def log(self, op: str, graph_name: str, payload: Optional[dict] = None) -> LogRecord:
        """Append one mutation record to the write log."""
        record = self.wal.append(op, graph_name, payload)
        return record

    def _refresh_counts(self, name: str) -> None:
        graph = self._graphs[name]
        self.catalog.update_counts(name, node_count=graph.node_count(), edge_count=graph.edge_count())

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> None:
        """Write a snapshot of every graph and truncate the write log."""
        if not self.durable:
            return
        for name in self._graphs:
            self._write_snapshot(name)
        self.save_catalog()
        self.wal.truncate()

    def save_catalog(self) -> None:
        """Persist catalog descriptors (kind, description, metadata) to disk.

        Snapshots only carry graph structure; without this file a reopened
        store would rebuild its catalog with default kinds and empty
        metadata, losing the ``protected_account`` kind and the tenant
        stamps the registry's audit report relies on.  Counts are excluded —
        they are recomputed from the graphs on recovery.  Callers that
        mutate a descriptor directly (e.g. account persistence) must call
        this afterwards; it is a no-op for in-memory stores.
        """
        if not self.durable:
            return
        payload = {
            descriptor.name: {
                "kind": descriptor.kind,
                "description": descriptor.description,
                "metadata": dict(descriptor.metadata),
            }
            for descriptor in self.catalog.descriptors()
        }
        (self.directory / _CATALOG_NAME).write_text(
            json.dumps(payload, indent=2, default=str), encoding="utf-8"
        )

    def _restore_catalog(self) -> None:
        """Merge the persisted descriptor attributes into the rebuilt catalog."""
        assert self.directory is not None
        path = self.directory / _CATALOG_NAME
        if not path.exists():
            return
        payload = json.loads(path.read_text(encoding="utf-8"))
        for name, attributes in payload.items():
            if name not in self.catalog:
                continue  # snapshot gone: the graphs on disk win
            descriptor = self.catalog.get(name)
            descriptor.kind = attributes.get("kind", descriptor.kind)
            descriptor.description = attributes.get("description", descriptor.description)
            descriptor.metadata.update(attributes.get("metadata", {}))

    def _write_snapshot(self, name: str) -> None:
        assert self.directory is not None
        save_graph(self._graphs[name], self._snapshot_path(name))

    def _snapshot_path(self, name: str) -> Path:
        assert self.directory is not None
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)
        return self.directory / f"{safe}{_SNAPSHOT_SUFFIX}"

    def _recover(self) -> None:
        """Load snapshots, then replay write-log records on top of them."""
        assert self.directory is not None
        for snapshot in sorted(self.directory.glob(f"*{_SNAPSHOT_SUFFIX}")):
            graph = load_graph(snapshot)
            name = graph.name or snapshot.name[: -len(_SNAPSHOT_SUFFIX)]
            if name not in self.catalog:
                self.catalog.register(name)
            self._graphs[name] = graph
            self._refresh_counts(name)
        for record in self.wal.records():
            self._replay(record)
        self._restore_catalog()

    def _replay(self, record: LogRecord) -> None:
        name = record.graph
        payload = record.payload
        if record.op == "create_graph":
            if name not in self.catalog:
                self.catalog.register(
                    name,
                    kind=payload.get("kind", "graph"),
                    description=payload.get("description", ""),
                )
            self._graphs.setdefault(name, PropertyGraph(name=name))
            return
        if record.op == "drop_graph":
            if name in self.catalog:
                self.catalog.drop(name)
            self._graphs.pop(name, None)
            return
        if name not in self._graphs:
            # Mutation for a graph that has no snapshot and no create record:
            # tolerate it (the snapshot may have been deleted manually).
            self._graphs[name] = PropertyGraph(name=name)
            if name not in self.catalog:
                self.catalog.register(name)
        graph = self._graphs[name]
        if record.op == "add_node":
            if not graph.has_node(payload["id"]):
                graph.add_node(payload["id"], kind=payload.get("kind"), features=payload.get("features") or {})
        elif record.op == "remove_node":
            if graph.has_node(payload["id"]):
                graph.remove_node(payload["id"])
        elif record.op == "add_edge":
            if not graph.has_edge(payload["source"], payload["target"]):
                graph.add_edge(
                    payload["source"],
                    payload["target"],
                    label=payload.get("label"),
                    features=payload.get("features") or {},
                    create_nodes=True,
                )
        elif record.op == "remove_edge":
            if graph.has_edge(payload["source"], payload["target"]):
                graph.remove_edge(payload["source"], payload["target"])
        elif record.op == "set_node_features":
            if graph.has_node(payload["id"]):
                graph.set_node_features(payload["id"], payload.get("features") or {})
        else:  # pragma: no cover - KNOWN_OPS guards this
            raise StoreError(f"cannot replay unknown operation {record.op!r}")
        self._refresh_counts(name)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def export_graph(self, name: str) -> dict:
        """The serialised form of one stored graph."""
        return graph_to_dict(self.graph(name))

    def import_graph(self, payload: dict, *, name: Optional[str] = None) -> str:
        """Store a graph from its serialised form."""
        graph = graph_from_dict(payload)
        return self.put_graph(graph, name=name)
