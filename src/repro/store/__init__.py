"""Embedded graph store: the database substrate behind the PLUS prototype.

The paper's evaluation (Figure 10) times four phases of serving a protected
graph: DB access, building the graph, protecting it by hiding and protecting
it by surrogates.  The original PLUS prototype sits on a relational store;
this package provides the equivalent substrate in pure Python:

* :mod:`repro.store.wal` — an append-only write log with replay;
* :mod:`repro.store.storage` — durable named-graph storage (JSON snapshots
  + log), or fully in-memory operation;
* :mod:`repro.store.index` — adjacency and feature indexes;
* :mod:`repro.store.transactions` — atomic multi-operation batches;
* :mod:`repro.store.catalog` — the named-graph catalog;
* :mod:`repro.store.engine` — the :class:`~repro.store.engine.GraphStore`
  facade with phase timing instrumentation used by the Figure-10 benchmark;
* :mod:`repro.store.sqlite` — the SQLite storage engine: the same surface
  over one database per store root, with interval-encoded reachability
  served as SQL range scans, paged out-of-core loads and FTS node search
  (``GraphStore(..., engine="sqlite")``).
"""

from repro.store.engine import STORE_ENGINES, GraphStore, PhaseTimer, StoreStats
from repro.store.storage import GraphStorage, RecoveryReport
from repro.store.transactions import Transaction
from repro.store.catalog import Catalog, GraphDescriptor
from repro.store.index import AdjacencyIndex, FeatureIndex
from repro.store.wal import WriteAheadLog, LogRecord

__all__ = [
    "STORE_ENGINES",
    "GraphStore",
    "PhaseTimer",
    "StoreStats",
    "GraphStorage",
    "RecoveryReport",
    "Transaction",
    "Catalog",
    "GraphDescriptor",
    "AdjacencyIndex",
    "FeatureIndex",
    "WriteAheadLog",
    "LogRecord",
]
