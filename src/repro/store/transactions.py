"""Atomic multi-operation batches against one stored graph.

The engine hands out :class:`Transaction` objects; operations are buffered
and validated, then applied to the live graph (and the write log) only at
commit time.  Rolling back simply discards the buffer.  The goal is not a
full ACID implementation but the property the benchmarks and examples rely
on: a failed batch leaves the stored graph untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import TransactionError
from repro.graph.model import NodeId, PropertyGraph


@dataclass
class _Operation:
    op: str
    payload: Dict[str, Any]


@dataclass
class Transaction:
    """A buffered batch of mutations for one named graph."""

    graph_name: str
    _apply: Callable[["Transaction"], None]
    operations: List[_Operation] = field(default_factory=list)
    state: str = "open"

    # ------------------------------------------------------------------ #
    # buffered operations
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_id: NodeId,
        *,
        kind: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
    ) -> "Transaction":
        """Buffer a node insertion."""
        self._ensure_open()
        self.operations.append(
            _Operation("add_node", {"id": node_id, "kind": kind, "features": dict(features or {})})
        )
        return self

    def add_edge(
        self,
        source: NodeId,
        target: NodeId,
        *,
        label: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
    ) -> "Transaction":
        """Buffer an edge insertion."""
        self._ensure_open()
        self.operations.append(
            _Operation(
                "add_edge",
                {"source": source, "target": target, "label": label, "features": dict(features or {})},
            )
        )
        return self

    def remove_node(self, node_id: NodeId) -> "Transaction":
        """Buffer a node removal (and, implicitly, its incident edges)."""
        self._ensure_open()
        self.operations.append(_Operation("remove_node", {"id": node_id}))
        return self

    def remove_edge(self, source: NodeId, target: NodeId) -> "Transaction":
        """Buffer an edge removal."""
        self._ensure_open()
        self.operations.append(_Operation("remove_edge", {"source": source, "target": target}))
        return self

    def set_node_features(self, node_id: NodeId, features: Mapping[str, Any]) -> "Transaction":
        """Buffer a feature replacement."""
        self._ensure_open()
        self.operations.append(
            _Operation("set_node_features", {"id": node_id, "features": dict(features)})
        )
        return self

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def commit(self) -> int:
        """Apply every buffered operation atomically; returns the operation count."""
        self._ensure_open()
        try:
            self._apply(self)
        except Exception:
            self.state = "failed"
            raise
        self.state = "committed"
        return len(self.operations)

    def rollback(self) -> None:
        """Discard the buffer; the stored graph is untouched."""
        self._ensure_open()
        self.operations.clear()
        self.state = "rolled_back"

    def _ensure_open(self) -> None:
        if self.state != "open":
            raise TransactionError(f"transaction on {self.graph_name!r} is already {self.state}")

    # ------------------------------------------------------------------ #
    # context-manager sugar
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            if self.state == "open":
                self.rollback()
            return False
        if self.state == "open":
            self.commit()
        return False


def validate_operations(graph: PropertyGraph, operations: List[_Operation]) -> None:
    """Dry-run a batch against a scratch copy of ``graph``.

    Raises whatever the first invalid operation would raise, without touching
    the live graph.  The engine validates before writing the batch's ``txn``
    record to the write log, so an invalid batch is never made durable.
    """
    scratch = graph.copy()
    _apply_to(scratch, operations)


def apply_to(graph: PropertyGraph, operations: List[_Operation]) -> None:
    """Apply an already-validated batch to the live graph."""
    _apply_to(graph, operations)


def apply_operations(graph: PropertyGraph, operations: List[_Operation]) -> List[Tuple[str, Dict[str, Any]]]:
    """Validate and apply a batch to ``graph``; returns (op, payload) pairs applied.

    Validation happens against a scratch copy first so a mid-batch error
    cannot leave the live graph half-updated.  (The engine now logs batches
    as one ``txn`` record via :func:`validate_operations` + :func:`apply_to`;
    this combined helper remains for direct library use.)
    """
    validate_operations(graph, operations)
    _apply_to(graph, operations)
    return [(operation.op, dict(operation.payload)) for operation in operations]


def _apply_to(graph: PropertyGraph, operations: List[_Operation]) -> None:
    for operation in operations:
        payload = operation.payload
        if operation.op == "add_node":
            graph.add_node(payload["id"], kind=payload.get("kind"), features=payload.get("features") or {})
        elif operation.op == "add_edge":
            graph.add_edge(
                payload["source"],
                payload["target"],
                label=payload.get("label"),
                features=payload.get("features") or {},
            )
        elif operation.op == "remove_node":
            graph.remove_node(payload["id"])
        elif operation.op == "remove_edge":
            graph.remove_edge(payload["source"], payload["target"])
        elif operation.op == "set_node_features":
            graph.set_node_features(payload["id"], payload["features"])
        else:  # pragma: no cover - the buffering methods guard this
            raise TransactionError(f"unknown buffered operation {operation.op!r}")
