"""SQLite-backed storage engine for the tenant store.

One database per store root (WAL mode), presenting the exact
:class:`~repro.store.storage.GraphStorage` surface plus relational
extras: interval-encoded reachability served as recursive range scans
(:mod:`repro.store.sqlite.reachability`), paged out-of-core graph loads
(:mod:`repro.store.sqlite.paging`), FTS node search and a materialized
account listing.  Select it with ``GraphStore(..., engine="sqlite")``.
"""

from repro.store.sqlite.connection import BUSY_TIMEOUT_MS, Database
from repro.store.sqlite.paging import DEFAULT_PAGE_ROWS, PagingStats, load_graph_paged
from repro.store.sqlite.reachability import interval_reach, visible_frontier
from repro.store.sqlite.schema import SCHEMA_VERSION, ensure_schema
from repro.store.sqlite.storage import DATABASE_NAME, SQLiteGraphStorage
from repro.store.sqlite.wal import SQLiteWriteLog

__all__ = [
    "BUSY_TIMEOUT_MS",
    "DATABASE_NAME",
    "DEFAULT_PAGE_ROWS",
    "Database",
    "PagingStats",
    "SCHEMA_VERSION",
    "SQLiteGraphStorage",
    "SQLiteWriteLog",
    "ensure_schema",
    "interval_reach",
    "load_graph_paged",
    "visible_frontier",
]
