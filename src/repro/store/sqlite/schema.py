"""Schema DDL for the SQLite store engine.

One database per tenant root.  The relational layout mirrors the file
engine's snapshot+log model: ``nodes``/``edges`` rows are the *snapshot*
(rewritten wholesale per graph at put/checkpoint time), ``wal_log`` rows
are the logical write log (one row per framed record, committed through
SQLite's own WAL — this is what retires the hand-rolled ``W1`` framing),
and ``meta`` carries the sequence counters a truncation marker used to.

Derived tables ride along with each snapshot write:

* ``intervals`` / ``extra_edges`` — the pre/post-order DFS-forest encoding
  (:mod:`repro.graph.intervals`) that serves ancestor/descendant closures
  as recursive range scans;
* ``node_search`` — an FTS5 index over node kinds and features (created
  only when the build ships FTS5; the engine degrades to a LIKE scan);
* ``accounts`` / ``markings`` / ``account_listing`` — protected-account
  payloads exploded into rows, with a materialized listing table so
  "what accounts does this tenant hold" is one indexed scan instead of a
  catalog walk + JSON parse per descriptor.
"""

from __future__ import annotations

from repro.store.sqlite.connection import Database

#: Bumped when the layout changes incompatibly; stored under ``meta``.
SCHEMA_VERSION = 1

_DDL = [
    """CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS graphs (
        name        TEXT PRIMARY KEY,
        kind        TEXT NOT NULL DEFAULT 'graph',
        description TEXT NOT NULL DEFAULT '',
        metadata    TEXT NOT NULL DEFAULT '{}',
        node_count  INTEGER NOT NULL DEFAULT 0,
        edge_count  INTEGER NOT NULL DEFAULT 0,
        position    INTEGER NOT NULL,
        snapshotted INTEGER NOT NULL DEFAULT 0
    )""",
    """CREATE TABLE IF NOT EXISTS nodes (
        graph    TEXT NOT NULL,
        id       TEXT NOT NULL,
        kind     TEXT,
        features TEXT NOT NULL DEFAULT '{}',
        position INTEGER NOT NULL,
        PRIMARY KEY (graph, id)
    ) WITHOUT ROWID""",
    """CREATE TABLE IF NOT EXISTS edges (
        graph    TEXT NOT NULL,
        source   TEXT NOT NULL,
        target   TEXT NOT NULL,
        label    TEXT,
        features TEXT NOT NULL DEFAULT '{}',
        position INTEGER NOT NULL,
        PRIMARY KEY (graph, source, target)
    ) WITHOUT ROWID""",
    "CREATE INDEX IF NOT EXISTS edges_by_target ON edges (graph, target)",
    """CREATE TABLE IF NOT EXISTS wal_log (
        seq     INTEGER PRIMARY KEY,
        op      TEXT NOT NULL,
        graph   TEXT NOT NULL,
        payload TEXT NOT NULL DEFAULT '{}'
    )""",
    """CREATE TABLE IF NOT EXISTS intervals (
        graph  TEXT NOT NULL,
        node   TEXT NOT NULL,
        pre    INTEGER NOT NULL,
        post   INTEGER NOT NULL,
        level  INTEGER NOT NULL,
        rpre   INTEGER NOT NULL,
        rpost  INTEGER NOT NULL,
        rlevel INTEGER NOT NULL,
        PRIMARY KEY (graph, node)
    ) WITHOUT ROWID""",
    "CREATE INDEX IF NOT EXISTS intervals_fwd ON intervals (graph, pre, post)",
    "CREATE INDEX IF NOT EXISTS intervals_rev ON intervals (graph, rpre, rpost)",
    """CREATE TABLE IF NOT EXISTS extra_edges (
        graph       TEXT NOT NULL,
        direction   TEXT NOT NULL,
        source      TEXT NOT NULL,
        target      TEXT NOT NULL,
        source_pre  INTEGER NOT NULL,
        source_post INTEGER NOT NULL
    )""",
    # The source node's own ranks ride along denormalized so the reach
    # fixpoint finds "extra edges leaving a reached interval" with one
    # bounded index range scan instead of probing intervals per edge.
    "CREATE INDEX IF NOT EXISTS extra_edges_window "
    "ON extra_edges (graph, direction, source_pre, source_post)",
    """CREATE TABLE IF NOT EXISTS accounts (
        name    TEXT PRIMARY KEY,
        graph   TEXT NOT NULL,
        payload TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS markings (
        account     TEXT NOT NULL,
        node        TEXT,
        edge_source TEXT,
        edge_target TEXT,
        marking     TEXT NOT NULL
    )""",
    "CREATE INDEX IF NOT EXISTS markings_by_account ON markings (account)",
    """CREATE TABLE IF NOT EXISTS account_listing (
        name            TEXT PRIMARY KEY,
        graph           TEXT NOT NULL,
        tenant          TEXT,
        privilege       TEXT,
        strategy        TEXT,
        node_count      INTEGER NOT NULL DEFAULT 0,
        edge_count      INTEGER NOT NULL DEFAULT 0,
        surrogate_nodes INTEGER NOT NULL DEFAULT 0,
        surrogate_edges INTEGER NOT NULL DEFAULT 0
    )""",
]

_FTS_DDL = (
    "CREATE VIRTUAL TABLE IF NOT EXISTS node_search "
    "USING fts5(graph UNINDEXED, id UNINDEXED, body)"
)


def ensure_schema(db: Database) -> None:
    """Create any missing tables/indexes (idempotent) and stamp the version."""
    with db.transaction("sqlite.schema"):
        for statement in _DDL:
            db.execute(statement)
        if db.fts_enabled:
            db.execute(_FTS_DDL)
        db.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
