"""The logical write log of the SQLite engine.

Presents the exact :class:`~repro.store.wal.WriteAheadLog` surface —
``append`` / ``truncate`` / ``records`` / ``records_since`` / ``next_seq``
/ ``base_seq`` / ``recovery_info`` — over a ``wal_log`` table instead of a
framed file.  Durability moves down a layer: each append is one committed
SQLite transaction, so torn-tail truncation and CRC framing (the ``W1``
format) are unnecessary — SQLite's own WAL guarantees the row is either
wholly durable or absent.  ``recovery_info.torn_bytes_truncated`` is
therefore always 0 on this engine.

Sequence numbers survive truncation exactly as the file log's checkpoint
marker records do: :meth:`truncate` persists ``base_seq`` (the highest
sequence truncated away) into the ``meta`` table in the same transaction
that clears the rows, so the service-checkpoint stamp protocol
(:mod:`repro.api.checkpoints`) works unchanged — a stamp ``S`` is provably
complete history exactly when ``S > base_seq``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

from repro.exceptions import StoreError
from repro.store.io import StorageIO
from repro.store.sqlite.connection import Database
from repro.store.wal import KNOWN_OPS, LogRecord, WalRecoveryInfo


class SQLiteWriteLog:
    """Append-only logical write log stored in the ``wal_log`` table."""

    def __init__(self, db: Database, *, io: StorageIO) -> None:
        self.db = db
        self.io = io
        self.recovery_info = WalRecoveryInfo()
        self._records: List[LogRecord] = []
        self._base_seq = int(self._meta("wal_base_seq") or 0)
        for seq, op, graph, payload in self.db.execute(
            "SELECT seq, op, graph, payload FROM wal_log ORDER BY seq"
        ).fetchall():
            self._records.append(
                LogRecord(seq=seq, op=op, graph=graph, payload=json.loads(payload))
            )
        self.recovery_info.records = len(self._records)
        top = self._records[-1].seq if self._records else self._base_seq
        self._next_seq = max(top, self._base_seq) + 1

    def _meta(self, key: str) -> Optional[str]:
        row = self.db.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return row[0] if row is not None else None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, op: str, graph: str, payload: Optional[Dict[str, Any]] = None) -> LogRecord:
        """Durably append one record: one INSERT, one committed transaction.

        The in-memory record list and the sequence counter advance only
        after the commit succeeded, so a failed (and retried) append never
        leaves the memory image ahead of durable state — the same contract
        the file log keeps by extending its list after the fsync.
        """
        if op not in KNOWN_OPS:
            raise StoreError(f"unknown write-log operation {op!r}")
        record = LogRecord(seq=self._next_seq, op=op, graph=graph, payload=dict(payload or {}))
        with self.db.transaction("sqlite.append"):
            self.db.execute(
                "INSERT INTO wal_log (seq, op, graph, payload) VALUES (?, ?, ?, ?)",
                (record.seq, record.op, record.graph, json.dumps(record.payload, default=str)),
            )
        self._next_seq += 1
        self._records.append(record)
        return record

    def truncate(self) -> None:
        """Discard every record, preserving the sequence counter in ``meta``.

        Clearing the rows and advancing ``base_seq`` commit atomically —
        a crash mid-truncate leaves either the full old log or the
        truncated one, never a partial history.
        """
        marker_seq = self._next_seq
        with self.db.transaction("sqlite.wal.truncate"):
            self.db.execute("DELETE FROM wal_log")
            self.db.execute(
                "INSERT INTO meta (key, value) VALUES ('wal_base_seq', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (str(marker_seq),),
            )
        self._records.clear()
        self._base_seq = marker_seq
        self._next_seq = marker_seq + 1

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def records(self) -> List[LogRecord]:
        """All records currently in the log, in order."""
        return list(self._records)

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended record will carry."""
        return self._next_seq

    @property
    def base_seq(self) -> int:
        """The highest sequence number truncated away (0 on a full log)."""
        return self._base_seq

    def records_since(self, seq: int) -> List[LogRecord]:
        """Records with sequence numbers strictly greater than ``seq``."""
        return [record for record in self._records if record.seq > seq]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)
