"""SQLite connection management for the store engine.

One :class:`Database` wraps one ``sqlite3`` connection with:

* the WAL-mode pragma recipe (``journal_mode=WAL``, ``synchronous=NORMAL``,
  ``busy_timeout``, ``foreign_keys=ON``) — group commit with durable-enough
  sync for a single-writer store, concurrent readers never block the writer;
* explicit transactions with **named injection points** threaded through the
  :class:`~repro.store.io.StorageIO` seam, so the fault-injection harness
  can crash the process on either side of every commit exactly as it does
  for the file engine;
* typed error mapping — ``sqlite3.OperationalError`` (locks, I/O) surfaces
  as :class:`~repro.exceptions.TransientError` so retry policies apply, and
  other ``sqlite3.DatabaseError``\\ s (a corrupt or non-database file)
  surface as :class:`~repro.exceptions.CorruptionError` so the storage
  layer can quarantine the file.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.exceptions import CorruptionError, ReadOnlyStoreError, TransientError
from repro.store.io import StorageIO

#: Matches the recipe in SNIPPETS.md Snippet 1: wait up to 30 s on a locked
#: database before surfacing a transient error.
BUSY_TIMEOUT_MS = 30_000


class Database:
    """One SQLite connection with pragmas, locking and injection points."""

    def __init__(
        self,
        target: Union[str, Path],
        *,
        io: StorageIO,
        page_cache_pages: Optional[int] = None,
        read_only: bool = False,
    ) -> None:
        self.io = io
        self.path = None if str(target) == ":memory:" else Path(target)
        self.read_only = read_only
        self._lock = threading.RLock()
        if read_only and self.path is None:
            raise ValueError("an in-memory database cannot be opened read-only")
        try:
            if read_only:
                # A ``mode=ro`` URI open never takes write locks and never
                # creates the file — exactly what follower processes need to
                # coexist with a live writer on the same WAL-mode root.
                self.conn = sqlite3.connect(
                    f"file:{self.path}?mode=ro",
                    uri=True,
                    timeout=BUSY_TIMEOUT_MS / 1000.0,
                    isolation_level=None,
                    check_same_thread=False,
                )
            else:
                self.conn = sqlite3.connect(
                    str(target),
                    timeout=BUSY_TIMEOUT_MS / 1000.0,
                    isolation_level=None,  # explicit BEGIN/COMMIT below
                    check_same_thread=False,
                )
            self._apply_pragmas(page_cache_pages)
        except sqlite3.DatabaseError as exc:
            raise CorruptionError(f"cannot open SQLite database {target}: {exc}") from exc
        self.fts_enabled = self._probe_fts()

    def _apply_pragmas(self, page_cache_pages: Optional[int]) -> None:
        cursor = self.conn.cursor()
        if self.path is not None and not self.read_only:
            cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute("PRAGMA synchronous=NORMAL")
        cursor.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        cursor.execute("PRAGMA foreign_keys=ON")
        if page_cache_pages is not None:
            # Positive values are page counts; this is the out-of-core
            # budget knob the paging regression test turns down hard.
            cursor.execute(f"PRAGMA cache_size={int(page_cache_pages)}")
        cursor.close()

    def _probe_fts(self) -> bool:
        try:
            self.conn.execute("CREATE VIRTUAL TABLE temp.fts_probe USING fts5(body)")
            self.conn.execute("DROP TABLE temp.fts_probe")
            return True
        except sqlite3.DatabaseError:
            return False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, sql: str, params: Union[Sequence, dict] = ()) -> sqlite3.Cursor:
        """Run one statement, mapping SQLite errors onto the store's types."""
        with self._lock:
            try:
                return self.conn.execute(sql, params)
            except sqlite3.OperationalError as exc:
                raise TransientError(f"sqlite statement failed: {exc}", point="sqlite") from exc
            except sqlite3.DatabaseError as exc:
                raise CorruptionError(f"sqlite database damaged: {exc}") from exc

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        with self._lock:
            try:
                self.conn.executemany(sql, rows)
            except sqlite3.OperationalError as exc:
                raise TransientError(f"sqlite batch failed: {exc}", point="sqlite") from exc
            except sqlite3.DatabaseError as exc:
                raise CorruptionError(f"sqlite database damaged: {exc}") from exc

    @contextmanager
    def transaction(self, point: str) -> Iterator[None]:
        """One explicit transaction with ``<point>.begin/.commit/.after`` hooks.

        The commit is the durability point (SQLite's own WAL makes it
        atomic); any exception — including a simulated crash injected at
        ``<point>.commit`` — rolls the transaction back so the connection is
        reusable and the database reflects only committed state, exactly
        what a real process death would leave behind.
        """
        if self.read_only:
            raise ReadOnlyStoreError(
                f"refusing write transaction {point!r} on a read-only connection"
            )
        with self._lock:
            self.io.checkpoint(f"{point}.begin")
            self.execute("BEGIN IMMEDIATE")
            try:
                yield
                self.io.checkpoint(f"{point}.commit")
                try:
                    self.conn.execute("COMMIT")
                except sqlite3.OperationalError as exc:
                    raise TransientError(f"sqlite commit failed: {exc}", point=point) from exc
            except BaseException:
                try:
                    self.conn.rollback()
                except sqlite3.Error:  # pragma: no cover - double-fault path
                    pass
                raise
            self.io.checkpoint(f"{point}.after")

    @contextmanager
    def read_snapshot(self) -> Iterator[None]:
        """One consistent read view across several SELECTs.

        A ``BEGIN DEFERRED`` transaction takes only read locks, pinning a
        single WAL snapshot for its duration — a multi-statement scan (node
        rows, then edge rows) can never observe a concurrent writer's
        commit landing between its statements.  Legal on read-only
        connections (it writes nothing), and a no-op when already inside a
        transaction, whose snapshot it would inherit anyway.
        """
        with self._lock:
            if self.conn.in_transaction:
                yield
                return
            self.execute("BEGIN DEFERRED")
            try:
                yield
            finally:
                try:
                    self.conn.execute("COMMIT")
                except sqlite3.Error:  # pragma: no cover - read txns don't fail
                    try:
                        self.conn.rollback()
                    except sqlite3.Error:
                        pass

    def integrity_probe(self) -> None:
        """Touch the schema so a corrupt file fails *now*, not mid-request."""
        self.execute("SELECT count(*) FROM sqlite_master").fetchone()

    def close(self) -> None:
        with self._lock:
            try:
                self.conn.close()
            except sqlite3.Error:  # pragma: no cover - best-effort close
                pass
