"""Reachability as SQL range scans over the interval encoding.

Ancestor/descendant closures run as one recursive CTE over the
``intervals`` and ``extra_edges`` tables written by the storage layer
(see :mod:`repro.graph.intervals` for the encoding): the fixpoint reaches
whole DFS-subtree *intervals* (expanding through non-tree edges whose
source lies inside an already-reached interval), and the final answer is a
single indexed range scan collecting every node inside a reached interval.
No Python traversal, no graph object in memory — this is the query path
that stays available when a graph is not resident.

The visible-walk frontier (Algorithm 2's stop-at-VISIBLE walk) also runs
as a recursive CTE, over a per-walk temp table of marking-resolved edges:
marking predicates live in Python (they are compiled-view lookups), but
the transitive expansion — the part that is O(edges) per walk — happens in
SQL.  The differential suite pins both query shapes exactly equal to the
BFS reference implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Set, Tuple

from repro.store.sqlite.connection import Database
from repro.store.sqlite.paging import decode_id, encode_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.model import NodeId

# Both scans below use Grust's pruning window: with separate pre/post
# counters, ``pre(v) - post(v) = level(v) - size(v)``, so every node inside
# the interval ``[pre(u), post(u)]`` also satisfies
# ``pre(v) <= post(u) + level(u)``.  Carrying ``level`` through the
# fixpoint turns "member of a reached interval" into a *bounded* range
# scan on a ``pre``-leading index (``intervals_fwd`` / ``intervals_rev`` /
# ``extra_edges_window``) with the ``post`` bound as an in-index residual —
# instead of a full per-interval scan of the graph's rows.  CROSS JOIN pins
# the join order so ``reach`` drives the index.
_REACH_SQL = """
WITH RECURSIVE reach(lo, hi, lvl) AS (
    SELECT {pre}, {post}, {level} FROM intervals WHERE graph = :g AND node = :n
    UNION
    SELECT ti.{pre}, ti.{post}, ti.{level}
    FROM reach
    CROSS JOIN extra_edges e ON e.graph = :g AND e.direction = :d
        AND e.source_pre >= reach.lo AND e.source_pre <= reach.hi + reach.lvl
        AND e.source_post <= reach.hi
    JOIN intervals ti ON ti.graph = :g AND ti.node = e.target
)
SELECT DISTINCT t.node
FROM reach
CROSS JOIN intervals t ON t.graph = :g
    AND t.{pre} >= reach.lo AND t.{pre} <= reach.hi + reach.lvl
    AND t.{post} <= reach.hi
"""


def interval_reach(
    db: Database, graph_name: str, node_id: "NodeId", *, direction: str
) -> Optional[Set["NodeId"]]:
    """Full ancestor/descendant closure of one node, excluding itself.

    Returns ``None`` when the node has no interval row (caller decides how
    to report an unknown node).  ``direction`` is ``"descendants"``
    (forward encoding) or ``"ancestors"`` (reverse encoding).
    """
    if direction == "descendants":
        sql = _REACH_SQL.format(pre="pre", post="post", level="level")
        axis = "f"
    else:
        sql = _REACH_SQL.format(pre="rpre", post="rpost", level="rlevel")
        axis = "r"
    key = encode_id(node_id)
    present = db.execute(
        "SELECT 1 FROM intervals WHERE graph = ? AND node = ?", (graph_name, key)
    ).fetchone()
    if present is None:
        return None
    rows = db.execute(sql, {"g": graph_name, "n": key, "d": axis}).fetchall()
    out = {decode_id(text) for (text,) in rows}
    out.discard(node_id)
    return out


def node_depth(db: Database, graph_name: str, node_id: "NodeId") -> Optional[int]:
    """The node's DFS-forest depth (the ``level`` axis), or ``None``."""
    row = db.execute(
        "SELECT level FROM intervals WHERE graph = ? AND node = ?",
        (graph_name, encode_id(node_id)),
    ).fetchone()
    return row[0] if row is not None else None


_WALK_SETUP = [
    # One temp table per connection, cleared per walk: (near, far) in walk
    # orientation plus the marking verdicts resolved in Python.
    """CREATE TEMP TABLE IF NOT EXISTS visible_walk_edges (
        src     TEXT NOT NULL,
        dst     TEXT NOT NULL,
        collect INTEGER NOT NULL
    )""",
    "CREATE INDEX IF NOT EXISTS temp.visible_walk_by_src ON visible_walk_edges (src)",
]

_WALK_SQL = """
WITH RECURSIVE walk(node) AS (
    SELECT :start
    UNION
    SELECT e.dst FROM walk JOIN visible_walk_edges e
        ON e.src = walk.node AND e.collect = 0
)
SELECT DISTINCT e.dst FROM walk JOIN visible_walk_edges e
    ON e.src = walk.node AND e.collect = 1
"""


def visible_frontier(
    db: Database,
    steps: Iterable[Tuple["NodeId", "NodeId", bool]],
    start: "NodeId",
) -> Set["NodeId"]:
    """The stop-at-VISIBLE frontier of one walk, expanded in SQL.

    ``steps`` holds every *usable* edge of the walk in walk orientation:
    ``(near, far, collect)`` where ``collect`` is True when the far
    endpoint's incidence marking on that edge is VISIBLE (the walk stops
    and collects there) and False when the walk passes through.  Exactly
    mirrors ``repro.core.permitted._visible_walk``: collected nodes are
    not traversed, the start node is never collected.
    """
    for statement in _WALK_SETUP:
        db.execute(statement)
    db.execute("DELETE FROM visible_walk_edges")
    db.executemany(
        "INSERT INTO visible_walk_edges (src, dst, collect) VALUES (?, ?, ?)",
        [
            (encode_id(near), encode_id(far), 1 if collect else 0)
            for near, far, collect in steps
        ],
    )
    rows = db.execute(_WALK_SQL, {"start": encode_id(start)}).fetchall()
    out = {decode_id(text) for (text,) in rows}
    out.discard(start)
    return out


def walk_steps_from_view(
    edges: Iterable[Tuple["NodeId", "NodeId"]],
    markings,
    privilege,
    *,
    forward: bool,
) -> Sequence[Tuple["NodeId", "NodeId", bool]]:
    """Resolve marking predicates for :func:`visible_frontier`.

    ``edges`` iterates the graph's directed edges as ``(source, target)``;
    ``markings`` is any marking source accepted by
    :mod:`repro.core.permitted` (typically a compiled view).  Rows come
    back in walk orientation for the requested direction.
    """
    from repro.core.markings import Marking
    from repro.core.permitted import edge_usable

    steps = []
    for source, target in edges:
        edge = (source, target)
        if not edge_usable(markings, edge, privilege):
            continue
        near, far = (source, target) if forward else (target, source)
        collect = markings.marking(far, edge, privilege) is Marking.VISIBLE
        steps.append((near, far, collect))
    return steps
