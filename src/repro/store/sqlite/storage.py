"""`SQLiteGraphStorage`: the drop-in SQLite storage engine.

Presents the exact surface of :class:`~repro.store.storage.GraphStorage`
(the JSON file engine) over one SQLite database per store root, so the
:class:`~repro.store.engine.GraphStore` facade, the service-checkpoint
protocol (:mod:`repro.api.checkpoints`) and account persistence all work
unchanged when a store is opened with ``engine="sqlite"``.

The storage model is the same snapshot+log pair the file engine keeps,
relocated into tables:

* ``nodes``/``edges`` rows are the snapshot, rewritten wholesale per graph
  at put/checkpoint time inside one transaction;
* ``wal_log`` rows are the logical write log
  (:class:`~repro.store.sqlite.wal.SQLiteWriteLog`), each append one
  committed transaction — SQLite's WAL journal supplies the atomicity the
  hand-rolled ``W1`` framing used to;
* :meth:`SQLiteGraphStorage.checkpoint` keeps the snapshot-then-truncate
  ordering, with a named injection point in the gap, so the crash-anywhere
  convergence argument carries over verbatim.

What the relational engine adds on top of parity:

* **lazy, paged loads** — opening a store reads the catalog and replays
  the write log only for the graphs it touches; everything else loads on
  first use through :func:`~repro.store.sqlite.paging.load_graph_paged`
  in bounded row pages (the out-of-core path);
* **interval-encoded reachability** — every snapshot write persists the
  pre/post-order DFS-forest encoding (:mod:`repro.graph.intervals`), so
  ancestor/descendant closures run as recursive range scans via
  :meth:`sql_lineage` without materializing the graph;
* **FTS node search** and **materialized account listing** tables
  refreshed with the catalog.

Corruption handling mirrors the file engine's quarantine discipline: a
database file that fails to open is renamed aside (``.corrupt``), recorded
in the :class:`~repro.store.storage.RecoveryReport`, and a fresh store
continues — one damaged file never takes the tenant down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.codec import unpack_id_list, unpack_pair_table
from repro.exceptions import (
    CatalogError,
    CorruptionError,
    NodeNotFoundError,
    ReadOnlyStoreError,
    StoreError,
)
from repro.graph.deltas import record_maintenance
from repro.graph.intervals import IntervalIndex, attach_interval_maintenance
from repro.graph.model import PropertyGraph
from repro.graph.traversal import ancestors, descendants
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.store.catalog import Catalog
from repro.store.io import TMP_SUFFIX, StorageIO, resolve_io
from repro.store.sqlite import reachability
from repro.store.sqlite.connection import Database
from repro.store.sqlite.paging import (
    DEFAULT_PAGE_ROWS,
    PagingStats,
    encode_id,
    load_graph_paged,
)
from repro.store.sqlite.schema import ensure_schema
from repro.store.sqlite.wal import SQLiteWriteLog
from repro.store.storage import RecoveryReport, replay_operation
from repro.store.wal import LogRecord

#: Database file name inside a store root.
DATABASE_NAME = "store.sqlite"

#: Catalog kind under which account persistence registers protected
#: accounts (mirrors ``repro.api.persistence.ACCOUNT_METADATA_KEY``; the
#: literal is duplicated to keep the store layer below the api layer).
ACCOUNT_KIND = "protected_account"

_QUARANTINE_SUFFIX = ".corrupt"
_LEGACY_SNAPSHOT_SUFFIX = ".graph.json"
_LEGACY_WAL_NAME = "wal.jsonl"


class SQLiteGraphStorage:
    """Named-graph persistence over SQLite with write-log recovery."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        io: Optional[StorageIO] = None,
        page_cache_pages: Optional[int] = None,
        page_rows: Optional[int] = None,
        read_only: bool = False,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.io = resolve_io(io)
        self.read_only = read_only
        self.catalog = Catalog()
        self.recovery_report = RecoveryReport()
        self._page_rows = page_rows if page_rows is not None else DEFAULT_PAGE_ROWS
        self.paging = PagingStats(page_rows=self._page_rows)
        self._graphs: Dict[str, PropertyGraph] = {}
        self._row_versions: Dict[str, int] = {}
        self._interval_index: Dict[str, IntervalIndex] = {}
        self._interval_written: Dict[str, int] = {}
        self._interval_tokens: Dict[str, int] = {}
        self._lineage_seen: Dict[str, int] = {}
        self._snapshotted: Set[str] = set()
        if read_only:
            # Follower-style open: never create, migrate, clean up or write —
            # another process owns this root.  WAL records are replayed into
            # memory only, so reads reflect the leader's full durable state.
            if self.directory is None:
                raise StoreError("a read-only store needs a durable root directory")
            path = self.directory / DATABASE_NAME
            if not path.exists():
                raise StoreError(f"no SQLite store at {path} to open read-only")
            self.db = Database(
                path, io=self.io, page_cache_pages=page_cache_pages, read_only=True
            )
            self.db.integrity_probe()
            self.wal = SQLiteWriteLog(self.db, io=self.io)
            self._recover()
        elif self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._remove_orphan_tmp_files()
            self.db = self._open_database(page_cache_pages)
            migrate = self._needs_legacy_migration()
            self.wal = SQLiteWriteLog(self.db, io=self.io)
            if migrate:
                self._migrate_legacy_files()
            self._recover()
        else:
            self.db = Database(":memory:", io=self.io, page_cache_pages=page_cache_pages)
            ensure_schema(self.db)
            self.wal = SQLiteWriteLog(self.db, io=self.io)

    # ------------------------------------------------------------------ #
    # opening / recovery
    # ------------------------------------------------------------------ #
    def _open_database(self, page_cache_pages: Optional[int]) -> Database:
        assert self.directory is not None
        path = self.directory / DATABASE_NAME
        try:
            db = Database(path, io=self.io, page_cache_pages=page_cache_pages)
            db.integrity_probe()
            ensure_schema(db)
            return db
        except CorruptionError:
            if not path.exists():
                raise
            self._quarantine_database(path)
            self.recovery_report.quarantined.append(path.name)
            db = Database(path, io=self.io, page_cache_pages=page_cache_pages)
            ensure_schema(db)
            return db

    def _quarantine_database(self, path: Path) -> None:
        """Rename a damaged database (and its journal files) aside."""
        target = path.with_name(path.name + _QUARANTINE_SUFFIX)
        suffix = 0
        while target.exists():
            suffix += 1
            target = path.with_name(f"{path.name}{_QUARANTINE_SUFFIX}.{suffix}")
        self.io.replace(path, target)
        for journal in (f"{path.name}-wal", f"{path.name}-shm"):
            sidecar = path.with_name(journal)
            if sidecar.exists():
                self.io.replace(sidecar, target.with_name(target.name + Path(journal).suffix))

    def _remove_orphan_tmp_files(self) -> None:
        """Delete staging files a crash left behind (never committed state)."""
        assert self.directory is not None
        for orphan in self.directory.glob(f"*{TMP_SUFFIX}"):
            self.io.unlink(orphan)
            self.recovery_report.tmp_files_removed += 1

    def _needs_legacy_migration(self) -> bool:
        """True when the root holds file-engine artifacts and a fresh DB."""
        if self.directory is None:
            return False
        legacy = (self.directory / _LEGACY_WAL_NAME).exists() or any(
            self.directory.glob(f"*{_LEGACY_SNAPSHOT_SUFFIX}")
        )
        if not legacy:
            return False
        (graph_rows,) = self.db.execute("SELECT count(*) FROM graphs").fetchone()
        (log_rows,) = self.db.execute("SELECT count(*) FROM wal_log").fetchone()
        return graph_rows == 0 and log_rows == 0

    def _migrate_legacy_files(self) -> None:
        """Import a JSON file store found in this root (compatibility reader).

        The legacy reader (the file engine itself) replays ``W1``-framed
        write-log records over the JSON snapshots; the recovered graphs are
        then written as snapshot rows and the sequence counter carries over
        so existing service-checkpoint stamps stay comparable.  Legacy
        files are left in place — migration never destroys its source.
        """
        from repro.store.storage import GraphStorage

        assert self.directory is not None
        legacy = GraphStorage(self.directory, io=self.io)
        for descriptor in legacy.catalog.descriptors():
            graph = legacy.graph(descriptor.name)
            self.catalog.register(
                descriptor.name,
                kind=descriptor.kind,
                description=descriptor.description,
                metadata=dict(descriptor.metadata),
            )
            self._graphs[descriptor.name] = graph.copy(name=descriptor.name)
            self._refresh_counts(descriptor.name)
            self._write_graph_rows(descriptor.name)
            self.recovery_report.migrated_graphs += 1
        self.save_catalog()
        if legacy.wal.next_seq > 1:
            base = legacy.wal.next_seq - 1
            with self.db.transaction("sqlite.migrate.seq"):
                self.db.execute(
                    "INSERT INTO meta (key, value) VALUES ('wal_base_seq', ?) "
                    "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                    (str(base),),
                )
            self.wal._base_seq = base  # noqa: SLF001 - same-package counter carry-over
            self.wal._next_seq = base + 1
        self.recovery_report.records_replayed += legacy.recovery_report.records_replayed
        self.recovery_report.quarantined.extend(legacy.recovery_report.quarantined)

    def _recover(self) -> None:
        """Load the catalog, then replay write-log records over row state.

        Only graphs the log actually touches are materialized here; every
        other graph stays on disk until first use (the lazy half of the
        out-of-core story).
        """
        for name, kind, description, metadata, nodes, edges, snapshotted in self.db.execute(
            "SELECT name, kind, description, metadata, node_count, edge_count, snapshotted "
            "FROM graphs ORDER BY position"
        ).fetchall():
            if name in self.catalog:  # registered by legacy migration
                continue
            self.catalog.register(
                name, kind=kind, description=description, metadata=json.loads(metadata)
            )
            self.catalog.update_counts(name, node_count=nodes, edge_count=edges)
            if snapshotted:
                self._snapshotted.add(name)
        for record in self.wal.records():
            self._replay(record)
            self.recovery_report.records_replayed += 1

    def _replay(self, record: LogRecord) -> None:
        name = record.graph
        payload = record.payload
        if record.op == "create_graph":
            if name not in self.catalog:
                self.catalog.register(
                    name,
                    kind=payload.get("kind", "graph"),
                    description=payload.get("description", ""),
                )
            if name not in self._graphs:
                self._graphs[name] = PropertyGraph(name=name)
            return
        if record.op == "drop_graph":
            if name in self.catalog:
                self.catalog.drop(name)
            self._graphs.pop(name, None)
            self._detach_intervals(name)
            return
        graph = self._materialize(name)
        if record.op == "txn":
            for operation in payload.get("operations", []):
                replay_operation(graph, operation.get("op"), operation.get("payload", {}))
        else:
            replay_operation(graph, record.op, payload)
        self._refresh_counts(name)

    def _materialize(self, name: str) -> PropertyGraph:
        """The live graph for ``name``, loading snapshot rows if needed."""
        if name in self._graphs:
            return self._graphs[name]
        if name not in self.catalog:
            # Mutation for a graph with no row and no create record:
            # tolerate it, as the file engine does.
            self.catalog.register(name)
            self._graphs[name] = PropertyGraph(name=name)
            return self._graphs[name]
        with self.db.read_snapshot():
            graph = load_graph_paged(self.db, name, page_rows=self._page_rows, stats=self.paging)
        self._graphs[name] = graph
        self._row_versions[name] = graph.version
        self.recovery_report.snapshots_loaded += 1
        return graph

    # ------------------------------------------------------------------ #
    # graph lifecycle (GraphStorage surface)
    # ------------------------------------------------------------------ #
    @property
    def durable(self) -> bool:
        """True when backed by a directory on disk."""
        return self.directory is not None

    def _require_writable(self, action: str) -> None:
        if self.read_only:
            raise ReadOnlyStoreError(f"cannot {action}: store opened read-only")

    def create_graph(self, name: str, *, kind: str = "graph", description: str = "") -> PropertyGraph:
        """Create (and log) an empty named graph (write-ahead ordering)."""
        self._require_writable("create a graph")
        if name in self.catalog:
            self.catalog.register(name)  # raises the canonical CatalogError
        self.wal.append("create_graph", name, {"kind": kind, "description": description})
        self.catalog.register(name, kind=kind, description=description)
        graph = PropertyGraph(name=name)
        self._graphs[name] = graph
        return graph

    def put_graph(
        self,
        graph: PropertyGraph,
        *,
        name: Optional[str] = None,
        save_catalog: bool = True,
    ) -> str:
        """Store an already-built graph under ``name`` (default: its own name)."""
        self._require_writable("store a graph")
        name = name if name is not None else graph.name
        if not name:
            raise StoreError("a stored graph needs a name")
        if name in self.catalog:
            self.catalog.drop(name)
        self.catalog.register(name)
        self._detach_intervals(name)
        self._graphs[name] = graph.copy(name=name)
        self._refresh_counts(name)
        # Rows are written in memory mode too: the interval and search
        # indexes live in SQLite regardless of durability.
        self._write_graph_rows(name)
        if save_catalog:
            self.save_catalog()
        return name

    def drop_graph(self, name: str) -> None:
        """Remove a graph from the store (rows, indexes, accounts and all)."""
        self._require_writable("drop a graph")
        if name not in self.catalog:
            self.catalog.drop(name)  # raises the canonical CatalogError
        self.wal.append("drop_graph", name)
        self.catalog.drop(name)
        self._graphs.pop(name, None)
        self._detach_intervals(name)
        self._row_versions.pop(name, None)
        self._snapshotted.discard(name)
        with self.db.transaction("sqlite.drop"):
            self._delete_graph_rows(name)
            self.db.execute("DELETE FROM graphs WHERE name = ?", (name,))
            self.db.execute("DELETE FROM markings WHERE account = ?", (name,))
            self.db.execute("DELETE FROM accounts WHERE name = ?", (name,))
            self.db.execute("DELETE FROM account_listing WHERE name = ?", (name,))
        if self.durable:
            self.save_catalog()

    def graph(self, name: str) -> PropertyGraph:
        """The live graph object for ``name`` (loaded lazily, page by page)."""
        if name in self._graphs:
            return self._graphs[name]
        if name not in self.catalog:
            raise CatalogError(f"graph {name!r} is not in the store")
        return self._materialize(name)

    def has_graph(self, name: str) -> bool:
        return name in self._graphs or name in self.catalog

    def names(self) -> List[str]:
        return self.catalog.names()

    def resident_names(self) -> List[str]:
        """Graphs currently materialized in memory (loaded or replayed)."""
        return list(self._graphs)

    # ------------------------------------------------------------------ #
    # logged mutations
    # ------------------------------------------------------------------ #
    def log(self, op: str, graph_name: str, payload: Optional[dict] = None) -> LogRecord:
        """Append one mutation record to the logical write log."""
        self._require_writable("log a mutation")
        return self.wal.append(op, graph_name, payload)

    def _refresh_counts(self, name: str) -> None:
        graph = self._graphs[name]
        self.catalog.update_counts(name, node_count=graph.node_count(), edge_count=graph.edge_count())

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> None:
        """Write snapshot rows for every dirty graph, then truncate the log.

        The file engine's ordering argument carries over: snapshot rows and
        the catalog commit *before* the log empties, and the injection
        point in the gap lets the crash suite prove that replaying the full
        log over fresh rows converges (replay is idempotent).
        """
        if not self.durable:
            return
        self._require_writable("checkpoint the store")
        for name in self.catalog.names():
            graph = self._graphs.get(name)
            if graph is None:
                continue  # never materialized ⇒ rows already current
            if self._row_versions.get(name) != graph.version or name not in self._snapshotted:
                self._write_graph_rows(name)
        self.save_catalog()
        self.io.checkpoint("sqlite.checkpoint.staged")
        self.wal.truncate()

    def save_catalog(self) -> None:
        """Persist catalog descriptors and refresh the account tables.

        One transaction rewrites the ``graphs`` descriptor rows (counts
        included — they are cheap here, unlike the file engine's JSON
        dump) and re-materializes ``accounts``/``markings``/
        ``account_listing`` from the ``protected_account`` descriptors.
        No-op for in-memory stores, matching the file engine.
        """
        if not self.durable or self.read_only:
            return
        with self.db.transaction("sqlite.catalog"):
            self.db.execute("DELETE FROM graphs")
            for position, descriptor in enumerate(self.catalog.descriptors()):
                self.db.execute(
                    "INSERT INTO graphs (name, kind, description, metadata, node_count, "
                    "edge_count, position, snapshotted) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        descriptor.name,
                        descriptor.kind,
                        descriptor.description,
                        json.dumps(dict(descriptor.metadata), default=str),
                        descriptor.node_count,
                        descriptor.edge_count,
                        position,
                        1 if descriptor.name in self._snapshotted else 0,
                    ),
                )
            self._refresh_account_tables()

    def _refresh_account_tables(self) -> None:
        """Rebuild accounts/markings/account_listing (inside the caller's txn)."""
        self.db.execute("DELETE FROM accounts")
        self.db.execute("DELETE FROM markings")
        self.db.execute("DELETE FROM account_listing")
        for descriptor in self.catalog.find(kind=ACCOUNT_KIND):
            raw = descriptor.metadata.get(ACCOUNT_KIND)
            if raw is None:
                continue
            try:
                payload = json.loads(raw) if isinstance(raw, str) else dict(raw)
            except (json.JSONDecodeError, TypeError):
                continue
            surrogate_nodes = unpack_id_list(payload.get("surrogate_nodes", []))
            surrogate_edges = list(
                unpack_pair_table(payload.get("surrogate_edges", []))
            )
            self.db.execute(
                "INSERT INTO accounts (name, graph, payload) VALUES (?, ?, ?)",
                (
                    descriptor.name,
                    str(payload.get("graph_name", "")),
                    json.dumps(payload, default=str),
                ),
            )
            self.db.executemany(
                "INSERT INTO markings (account, node, edge_source, edge_target, marking) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (descriptor.name, encode_id(node), None, None, "surrogate_node")
                    for node in surrogate_nodes
                ],
            )
            self.db.executemany(
                "INSERT INTO markings (account, node, edge_source, edge_target, marking) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (descriptor.name, None, encode_id(source), encode_id(target), "surrogate_edge")
                    for source, target in surrogate_edges
                ],
            )
            self.db.execute(
                "INSERT INTO account_listing (name, graph, tenant, privilege, strategy, "
                "node_count, edge_count, surrogate_nodes, surrogate_edges) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    descriptor.name,
                    str(payload.get("graph_name", "")),
                    descriptor.metadata.get("tenant"),
                    payload.get("privilege"),
                    payload.get("strategy"),
                    descriptor.node_count,
                    descriptor.edge_count,
                    len(surrogate_nodes),
                    len(surrogate_edges),
                ),
            )

    def _delete_graph_rows(self, name: str) -> None:
        """Delete one graph's snapshot + derived rows (inside caller's txn)."""
        for table in ("nodes", "edges", "intervals", "extra_edges"):
            self.db.execute(f"DELETE FROM {table} WHERE graph = ?", (name,))
        if self.db.fts_enabled:
            self.db.execute("DELETE FROM node_search WHERE graph = ?", (name,))

    def _write_graph_rows(self, name: str) -> None:
        """Atomically rewrite one graph's snapshot + derived rows."""
        graph = self._graphs[name]
        index = self._interval_index.get(name)
        if index is None:
            index = IntervalIndex(graph)
            self._interval_index[name] = index
            self._interval_tokens[name] = attach_interval_maintenance(graph, index) or 0
        else:
            index.refresh(graph)
        descriptor = self.catalog.get(name)
        with self.db.transaction("sqlite.snapshot"):
            self._delete_graph_rows(name)
            self.db.executemany(
                "INSERT INTO nodes (graph, id, kind, features, position) VALUES (?, ?, ?, ?, ?)",
                [
                    (
                        name,
                        encode_id(node.node_id),
                        node.kind,
                        json.dumps(dict(node.features), default=str),
                        position,
                    )
                    for position, node in enumerate(graph.nodes())
                ],
            )
            self.db.executemany(
                "INSERT INTO edges (graph, source, target, label, features, position) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        name,
                        encode_id(edge.source),
                        encode_id(edge.target),
                        edge.label,
                        json.dumps(dict(edge.features), default=str),
                        position,
                    )
                    for position, edge in enumerate(graph.edges())
                ],
            )
            self._insert_interval_rows(name, index)
            if self.db.fts_enabled:
                self.db.executemany(
                    "INSERT INTO node_search (graph, id, body) VALUES (?, ?, ?)",
                    [
                        (name, encode_id(node.node_id), _search_body(node))
                        for node in graph.nodes()
                    ],
                )
            self.db.execute(
                "INSERT INTO graphs (name, kind, description, metadata, node_count, "
                "edge_count, position, snapshotted) VALUES (?, ?, ?, ?, ?, ?, "
                "COALESCE((SELECT position FROM graphs WHERE name = ?), "
                "(SELECT COALESCE(MAX(position), -1) + 1 FROM graphs)), 1) "
                "ON CONFLICT(name) DO UPDATE SET kind = excluded.kind, "
                "description = excluded.description, metadata = excluded.metadata, "
                "node_count = excluded.node_count, edge_count = excluded.edge_count, "
                "snapshotted = 1",
                (
                    name,
                    descriptor.kind,
                    descriptor.description,
                    json.dumps(dict(descriptor.metadata), default=str),
                    graph.node_count(),
                    graph.edge_count(),
                    name,
                ),
            )
        self._snapshotted.add(name)
        self._row_versions[name] = graph.version
        self._interval_written[name] = index.revision

    def _insert_interval_rows(self, name: str, index: IntervalIndex) -> None:
        forward, reverse = index.forward, index.reverse
        self.db.executemany(
            "INSERT INTO intervals (graph, node, pre, post, level, rpre, rpost, rlevel) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    name,
                    encode_id(node),
                    forward.pre[node],
                    forward.post[node],
                    forward.level[node],
                    reverse.pre[node],
                    reverse.post[node],
                    reverse.level[node],
                )
                for node in forward.pre
            ],
        )
        self.db.executemany(
            "INSERT INTO extra_edges "
            "(graph, direction, source, target, source_pre, source_post) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            [
                (
                    name,
                    "f",
                    encode_id(source),
                    encode_id(target),
                    forward.pre[source],
                    forward.post[source],
                )
                for source, target in forward.extra_edges
            ]
            + [
                (
                    name,
                    "r",
                    encode_id(source),
                    encode_id(target),
                    reverse.pre[source],
                    reverse.post[source],
                )
                for source, target in reverse.extra_edges
            ],
        )

    def _detach_intervals(self, name: str) -> None:
        index = self._interval_index.pop(name, None)
        token = self._interval_tokens.pop(name, None)
        self._interval_written.pop(name, None)
        graph = self._graphs.get(name)
        if index is not None and token is not None and graph is not None:
            graph.unsubscribe(token)

    def snapshot_graph(self, name: str) -> Optional[PropertyGraph]:
        """The graph exactly as its snapshot rows record it (or ``None``).

        Reads the rows fresh, so write-log records appended after the last
        snapshot write are *not* included — the contract warm-restart
        checkpoints validate against.
        """
        if not self.durable:
            return None
        if name not in self._snapshotted:
            return None
        # The snapshot pin matters to concurrent readers: node rows and
        # edge rows load in separate statements, and a checkpoint landing
        # between them must not produce a torn graph.
        with self.db.read_snapshot():
            return load_graph_paged(self.db, name, page_rows=self._page_rows, stats=self.paging)

    # ------------------------------------------------------------------ #
    # SQL query surface (what the relational engine adds)
    # ------------------------------------------------------------------ #
    def sql_lineage(self, name: str, node_id: Any, *, direction: str = "ancestors") -> Set[Any]:
        """Ancestor/descendant closure as an interval range scan.

        Runs entirely against the ``intervals``/``extra_edges`` tables —
        a graph that was never materialized stays on disk.  During an edit
        burst — structural changes still arriving between queries — the
        closure is answered by an in-memory traversal instead (pinned equal
        to the interval scan by the cross-engine differential suite), so
        the O(V) forest re-encode runs once when the burst settles rather
        than once per interleaved query.  Read-only opens whose write-log
        replay advanced a graph past its snapshot rows take the same
        traversal path: a follower never rewrites the leader's rows.
        """
        if name not in self.catalog:
            raise CatalogError(f"graph {name!r} is not in the store")
        if self._defer_interval_encode(name):
            record_maintenance("interval_index", "deferred_traversal")
            graph = self._graphs[name]
            if not graph.has_node(node_id):
                raise NodeNotFoundError(node_id)
            if direction == "ancestors":
                return ancestors(graph, node_id)
            return descendants(graph, node_id)
        self._ensure_intervals(name)
        result = reachability.interval_reach(self.db, name, node_id, direction=direction)
        if result is None:
            raise NodeNotFoundError(node_id)
        return result

    def _defer_interval_encode(self, name: str) -> bool:
        """Should this lineage query skip the interval re-encode?

        True while a structural edit burst is in flight over a resident
        graph: the graph's version moved since the previous lineage query
        (or a batch is literally open, or this store is read-only and
        replay advanced the graph past its persisted rows).  The version
        watermark makes the heuristic self-settling — the first query *not*
        preceded by new edits re-encodes, and every later query scans rows.
        """
        graph = self._graphs.get(name)
        if graph is None:
            return False
        if graph.in_batch:
            return True
        if self.read_only:
            # A follower never rewrites the leader's interval rows, and a
            # resident graph here means the write-log replay (or a caller)
            # already paid for the in-memory structure — traverse it.
            return True
        index = self._interval_index.get(name)
        rows_current = (
            index is not None
            and not index.stale_for(graph)
            and self._interval_written.get(name) == index.revision
        )
        if rows_current:
            self._lineage_seen[name] = graph.version
            return False
        last_seen = self._lineage_seen.get(name)
        self._lineage_seen[name] = graph.version
        return last_seen is not None and last_seen != graph.version

    def visible_frontier(
        self, name: str, markings: Any, privilege: Any, start: Any, *, forward: bool = True
    ) -> Set[Any]:
        """Stop-at-VISIBLE walk frontier with the expansion run in SQL."""
        if name in self._graphs:
            edges = [(edge.source, edge.target) for edge in self._graphs[name].edges()]
        else:
            if name not in self.catalog:
                raise CatalogError(f"graph {name!r} is not in the store")
            edges = [
                (json.loads(source), json.loads(target))
                for source, target in self.db.execute(
                    "SELECT source, target FROM edges WHERE graph = ? ORDER BY position",
                    (name,),
                ).fetchall()
            ]
        steps = reachability.walk_steps_from_view(edges, markings, privilege, forward=forward)
        return reachability.visible_frontier(self.db, steps, start)

    def search_nodes(self, name: str, query: str) -> Set[Any]:
        """Nodes whose kind or features match ``query`` (FTS when available).

        With FTS5, ``query`` uses full MATCH syntax; the fallback without
        FTS5 is a case-insensitive substring scan over the same text.
        """
        if name not in self.catalog:
            raise CatalogError(f"graph {name!r} is not in the store")
        graph = self._graphs.get(name)
        if graph is not None and self._row_versions.get(name) != graph.version:
            if self.read_only:
                # Followers cannot refresh the FTS rows; scan the replayed
                # in-memory graph with the substring semantics instead.
                needle = query.lower()
                return {
                    node.node_id
                    for node in graph.nodes()
                    if needle in _search_body(node).lower()
                }
            self._write_graph_rows(name)
        if self.db.fts_enabled:
            rows = self.db.execute(
                "SELECT id FROM node_search WHERE graph = ? AND body MATCH ?",
                (name, query),
            ).fetchall()
            return {json.loads(text) for (text,) in rows}
        needle = query.lower()
        found: Set[Any] = set()
        cursor = self.db.execute(
            "SELECT id, kind, features FROM nodes WHERE graph = ?", (name,)
        )
        while True:
            page = cursor.fetchmany(self._page_rows)
            if not page:
                break
            for id_text, kind, features in page:
                if needle in f"{kind or ''} {features}".lower():
                    found.add(json.loads(id_text))
        return found

    def list_accounts(self, *, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """The materialized account listing, optionally filtered by tenant."""
        sql = (
            "SELECT name, graph, tenant, privilege, strategy, node_count, edge_count, "
            "surrogate_nodes, surrogate_edges FROM account_listing"
        )
        params: tuple = ()
        if tenant is not None:
            sql += " WHERE tenant = ?"
            params = (tenant,)
        rows = self.db.execute(sql + " ORDER BY name", params).fetchall()
        return [
            {
                "name": name,
                "graph": graph,
                "tenant": owner,
                "privilege": privilege,
                "strategy": strategy,
                "nodes": nodes,
                "edges": edges,
                "surrogate_nodes": surrogate_nodes,
                "surrogate_edges": surrogate_edges,
            }
            for (
                name,
                graph,
                owner,
                privilege,
                strategy,
                nodes,
                edges,
                surrogate_nodes,
                surrogate_edges,
            ) in rows
        ]

    def _ensure_intervals(self, name: str) -> None:
        """Bring the persisted interval rows up to date with the live graph.

        Non-resident graphs need nothing — their rows were written with
        their snapshot.  Resident graphs re-encode lazily: the delta hook
        (:func:`~repro.graph.intervals.attach_interval_maintenance`) keeps
        the index valid across feature-only edits, so only structural
        changes (or a fresh residency) trigger an encode + row rewrite.
        """
        graph = self._graphs.get(name)
        if graph is None or self.read_only:
            return
        index = self._interval_index.get(name)
        if index is None:
            index = IntervalIndex(graph)
            self._interval_index[name] = index
            self._interval_tokens[name] = attach_interval_maintenance(graph, index) or 0
        else:
            index.refresh(graph)
        if self._interval_written.get(name) != index.revision or name not in self._interval_rows():
            with self.db.transaction("sqlite.intervals"):
                self.db.execute("DELETE FROM intervals WHERE graph = ?", (name,))
                self.db.execute("DELETE FROM extra_edges WHERE graph = ?", (name,))
                self._insert_interval_rows(name, index)
            self._interval_written[name] = index.revision

    def _interval_rows(self) -> Set[str]:
        rows = self.db.execute("SELECT DISTINCT graph FROM intervals").fetchall()
        return {name for (name,) in rows}

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def export_graph(self, name: str) -> dict:
        """The serialised form of one stored graph."""
        return graph_to_dict(self.graph(name))

    def import_graph(self, payload: dict, *, name: Optional[str] = None) -> str:
        """Store a graph from its serialised form."""
        graph = graph_from_dict(payload)
        return self.put_graph(graph, name=name)

    def close(self) -> None:
        """Close the underlying connection (further use is undefined)."""
        self.db.close()


def _search_body(node: Any) -> str:
    """Flatten one node's kind + features into the FTS document text."""
    parts = [str(node.kind or "")]
    for key, value in node.features.items():
        parts.append(str(key))
        parts.append(str(value))
    return " ".join(part for part in parts if part)
