"""Paged graph loading: stream snapshot rows in bounded batches.

The point of the SQLite engine is that a graph no longer has to fit the
page cache to be *stored*; this module is what keeps the *load* path
bounded too.  Rows stream out of SQLite via ``fetchmany(page_rows)`` —
never ``fetchall`` — so the peak number of row tuples resident in Python
at any instant is one page, regardless of graph size.  The out-of-core
regression test pins :attr:`PagingStats.peak_page_rows` against the
configured budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict

from repro.graph.model import PropertyGraph
from repro.store.sqlite.connection import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: Default rows per fetched page; small enough to bound memory, large
#: enough that per-page overhead is noise.
DEFAULT_PAGE_ROWS = 2048


@dataclass
class PagingStats:
    """Counters proving loads stayed paged (read by the out-of-core test)."""

    page_rows: int = DEFAULT_PAGE_ROWS
    pages_fetched: int = 0
    rows_streamed: int = 0
    #: Largest single batch of row tuples held at once — bounded by
    #: ``page_rows`` whenever every load went through the paged path.
    peak_page_rows: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "page_rows": self.page_rows,
            "pages_fetched": self.pages_fetched,
            "rows_streamed": self.rows_streamed,
            "peak_page_rows": self.peak_page_rows,
        }


def decode_id(text: str) -> Any:
    """Node-id column → original id (JSON round-trip, matching the file engine)."""
    return json.loads(text)


def encode_id(node_id: Any) -> str:
    """Original node id → stable TEXT key."""
    return json.dumps(node_id, sort_keys=True, default=str)


def load_graph_paged(
    db: Database,
    name: str,
    *,
    page_rows: int,
    stats: PagingStats,
) -> PropertyGraph:
    """Rebuild one graph from its snapshot rows, one page at a time."""
    graph = PropertyGraph(name=name)
    cursor = db.execute(
        "SELECT id, kind, features FROM nodes WHERE graph = ? ORDER BY position",
        (name,),
    )
    while True:
        page = cursor.fetchmany(page_rows)
        if not page:
            break
        stats.pages_fetched += 1
        stats.rows_streamed += len(page)
        stats.peak_page_rows = max(stats.peak_page_rows, len(page))
        for id_text, kind, features in page:
            graph.add_node(decode_id(id_text), kind=kind, features=json.loads(features))
    cursor = db.execute(
        "SELECT source, target, label, features FROM edges WHERE graph = ? ORDER BY position",
        (name,),
    )
    while True:
        page = cursor.fetchmany(page_rows)
        if not page:
            break
        stats.pages_fetched += 1
        stats.rows_streamed += len(page)
        stats.peak_page_rows = max(stats.peak_page_rows, len(page))
        for source, target, label, features in page:
            graph.add_edge(
                decode_id(source),
                decode_id(target),
                label=label,
                features=json.loads(features),
            )
    return graph
