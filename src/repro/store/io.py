"""The storage I/O seam: every byte the store persists flows through here.

:class:`StorageIO` is the single place the store touches the filesystem —
appends, atomic renames, fsyncs, reads, unlinks.  Centralising the surface
buys two things:

* **Defined commit points.**  Each primitive spells out its durability
  protocol (append = write + flush + fsync, atomic write = temp file +
  fsync + ``os.replace`` + directory fsync), so the failure model in
  ``docs/reliability.md`` describes real code paths, not intent.
* **Fault injection.**  Every sub-step announces itself through
  :meth:`StorageIO.checkpoint` with a named *injection point*.  The default
  implementation ignores these calls; the test-only
  :class:`~repro.reliability.faults.FaultInjector` subclass turns them into
  deterministic torn writes, transient ``OSError``\\ s and simulated crashes,
  which is how the crash-recovery suite visits every fsync/rename boundary.

Operating-system failures (``OSError`` from any primitive) surface as
:class:`~repro.exceptions.TransientError` so callers retry through one typed
channel instead of guessing which bare exceptions are safe to retry.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import TransientError

PathLike = Union[str, Path]

#: Suffix of the temp files atomic writes stage data in; recovery deletes
#: orphans (a crash between staging and rename leaves one behind).
TMP_SUFFIX = ".tmp"


class StorageIO:
    """Filesystem primitives with explicit durability and injection points.

    Subclasses (the fault injector) override :meth:`checkpoint` and
    :meth:`write_step`; production code uses this class as-is.
    """

    # ------------------------------------------------------------------ #
    # injection hooks (no-ops in production)
    # ------------------------------------------------------------------ #
    def checkpoint(self, point: str) -> None:
        """Announce one injection point; overridden by the fault injector."""

    def write_step(self, point: str, handle, data: bytes) -> None:
        """Write ``data`` to an open binary handle (the torn-write hook)."""
        handle.write(data)

    # ------------------------------------------------------------------ #
    # primitives
    # ------------------------------------------------------------------ #
    def append_bytes(self, path: PathLike, data: bytes, *, sync: bool = True) -> None:
        """Durably append ``data`` to ``path`` (write, flush, fsync).

        Self-healing on failure: the pre-append file size is recorded and a
        failed write/fsync attempts to truncate back to it, so a *retried*
        append never lands after a torn half-record (which would turn a
        recoverable torn tail into mid-log corruption).  If the truncate
        itself is lost to a crash, write-log recovery still truncates the
        torn tail on reopen.
        """
        path = Path(path)
        self.checkpoint("append.before")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("ab") as handle:
                base = handle.tell()
                try:
                    self.write_step("append.write", handle, data)
                    handle.flush()
                    if sync:
                        self.checkpoint("append.fsync")
                        os.fsync(handle.fileno())
                except OSError:
                    try:  # roll the file back so a retry starts clean
                        handle.truncate(base)
                    except OSError:  # pragma: no cover - double-fault path
                        pass
                    raise
        except OSError as exc:
            raise TransientError(
                f"append to {path} failed: {exc}", point="append"
            ) from exc
        self.checkpoint("append.after")

    def atomic_write_text(self, path: PathLike, text: str) -> None:
        """Atomically replace ``path`` with ``text`` (temp + fsync + rename).

        The commit point is the ``os.replace``: readers observe either the
        old complete file or the new complete file, never a prefix.  The
        directory fsync afterwards makes the rename itself durable.
        """
        path = Path(path)
        tmp = path.with_name(path.name + TMP_SUFFIX)
        self.checkpoint("atomic.before")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as handle:
                self.write_step("atomic.write", handle, text.encode("utf-8"))
                handle.flush()
                self.checkpoint("atomic.fsync")
                os.fsync(handle.fileno())
            self.checkpoint("atomic.replace")
            os.replace(tmp, path)
            self.fsync_dir(path.parent)
        except OSError as exc:
            try:
                if tmp.exists():
                    tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise TransientError(
                f"atomic write of {path} failed: {exc}", point="atomic"
            ) from exc
        self.checkpoint("atomic.after")

    def fsync_dir(self, directory: PathLike) -> None:
        """Make a directory's entry table durable (after renames/unlinks)."""
        self.checkpoint("dir.fsync")
        try:
            fd = os.open(str(directory), os.O_RDONLY)
        except OSError:  # pragma: no cover - platforms without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync on dirs may be unsupported
            pass
        finally:
            os.close(fd)

    def read_bytes(self, path: PathLike) -> bytes:
        """Read a file completely (no injection: reads cannot tear state)."""
        try:
            return Path(path).read_bytes()
        except OSError as exc:
            raise TransientError(f"read of {path} failed: {exc}", point="read") from exc

    def read_text(self, path: PathLike) -> str:
        """Read a file as UTF-8 text."""
        return self.read_bytes(path).decode("utf-8")

    def unlink(self, path: PathLike, *, missing_ok: bool = True) -> None:
        """Remove one file (idempotent by default)."""
        self.checkpoint("unlink")
        try:
            Path(path).unlink()
        except FileNotFoundError:
            if not missing_ok:
                raise TransientError(f"unlink of {path} failed: not found", point="unlink")
        except OSError as exc:
            raise TransientError(f"unlink of {path} failed: {exc}", point="unlink") from exc

    def replace(self, source: PathLike, destination: PathLike) -> None:
        """Atomically rename ``source`` over ``destination``."""
        self.checkpoint("replace")
        try:
            os.replace(str(source), str(destination))
            self.fsync_dir(Path(destination).parent)
        except OSError as exc:
            raise TransientError(
                f"rename {source} -> {destination} failed: {exc}", point="replace"
            ) from exc

    def truncate_file(self, path: PathLike, size: int) -> None:
        """Truncate ``path`` to ``size`` bytes and fsync (torn-tail removal)."""
        self.checkpoint("truncate")
        try:
            with Path(path).open("r+b") as handle:
                handle.truncate(size)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise TransientError(f"truncate of {path} failed: {exc}", point="truncate") from exc


#: Shared default adapter; stateless, so one instance serves every store.
DEFAULT_IO = StorageIO()


def resolve_io(io: Optional[StorageIO]) -> StorageIO:
    """The caller's adapter, or the shared production default."""
    return io if io is not None else DEFAULT_IO
