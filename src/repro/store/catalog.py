"""The named-graph catalog of the embedded store."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import CatalogError


@dataclass
class GraphDescriptor:
    """Metadata about one named graph held by the store."""

    name: str
    node_count: int = 0
    edge_count: int = 0
    kind: str = "graph"
    description: str = ""
    metadata: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "nodes": self.node_count,
            "edges": self.edge_count,
            "kind": self.kind,
            "description": self.description,
            "metadata": dict(self.metadata),
        }


class Catalog:
    """Tracks which graphs exist and their summary statistics."""

    def __init__(self) -> None:
        self._descriptors: Dict[str, GraphDescriptor] = {}

    def register(
        self,
        name: str,
        *,
        kind: str = "graph",
        description: str = "",
        metadata: Optional[Dict[str, str]] = None,
    ) -> GraphDescriptor:
        """Register a new graph name; re-registering an existing name fails."""
        if name in self._descriptors:
            raise CatalogError(f"graph {name!r} already exists in the catalog")
        descriptor = GraphDescriptor(
            name=name, kind=kind, description=description, metadata=dict(metadata or {})
        )
        self._descriptors[name] = descriptor
        return descriptor

    def drop(self, name: str) -> GraphDescriptor:
        """Remove a graph from the catalog and return its descriptor."""
        try:
            return self._descriptors.pop(name)
        except KeyError:
            raise CatalogError(f"graph {name!r} is not in the catalog") from None

    def get(self, name: str) -> GraphDescriptor:
        """Fetch a descriptor (raises :class:`CatalogError` when unknown)."""
        try:
            return self._descriptors[name]
        except KeyError:
            raise CatalogError(f"graph {name!r} is not in the catalog") from None

    def update_counts(self, name: str, *, node_count: int, edge_count: int) -> None:
        """Refresh a graph's summary statistics after mutations."""
        descriptor = self.get(name)
        descriptor.node_count = node_count
        descriptor.edge_count = edge_count

    def __contains__(self, name: str) -> bool:
        return name in self._descriptors

    def __len__(self) -> int:
        return len(self._descriptors)

    def names(self) -> List[str]:
        """Every registered graph name, in registration order."""
        return list(self._descriptors.keys())

    def descriptors(self) -> List[GraphDescriptor]:
        """Every descriptor, in registration order."""
        return list(self._descriptors.values())

    def find(
        self, *, kind: Optional[str] = None, tenant: Optional[str] = None
    ) -> List[GraphDescriptor]:
        """Descriptors filtered by ``kind`` and/or owning tenant.

        The tenant filter matches the ``"tenant"`` metadata key stamped by
        tenant-scoped :class:`~repro.store.engine.GraphStore` instances;
        either filter may be omitted.
        """
        found: List[GraphDescriptor] = []
        for descriptor in self._descriptors.values():
            if kind is not None and descriptor.kind != kind:
                continue
            if tenant is not None and descriptor.metadata.get("tenant") != tenant:
                continue
            found.append(descriptor)
        return found
