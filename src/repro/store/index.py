"""Secondary indexes over a stored graph.

Two indexes are maintained by the store engine for each graph:

* :class:`AdjacencyIndex` — successor/predecessor sets, kept incrementally so
  lineage queries on large stored graphs do not have to scan the edge list;
* :class:`FeatureIndex` — (attribute, value) → node ids, supporting the
  feature-lookup queries used by the examples ("find every node whose
  ``role`` is ``person``").

Both are rebuildable from the graph, which is how the storage layer restores
them after loading a snapshot.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.model import NodeId, PropertyGraph


class AdjacencyIndex:
    """Incremental successor/predecessor index."""

    def __init__(self) -> None:
        self._successors: Dict[NodeId, Set[NodeId]] = defaultdict(set)
        self._predecessors: Dict[NodeId, Set[NodeId]] = defaultdict(set)

    @classmethod
    def build(cls, graph: PropertyGraph) -> "AdjacencyIndex":
        """Build the index from scratch for an existing graph."""
        index = cls()
        for edge in graph.edges():
            index.add_edge(edge.source, edge.target)
        for node_id in graph.node_ids():
            index.add_node(node_id)
        return index

    def add_node(self, node_id: NodeId) -> None:
        self._successors.setdefault(node_id, set())
        self._predecessors.setdefault(node_id, set())

    def remove_node(self, node_id: NodeId) -> None:
        for successor in self._successors.pop(node_id, set()):
            self._predecessors[successor].discard(node_id)
        for predecessor in self._predecessors.pop(node_id, set()):
            self._successors[predecessor].discard(node_id)

    def add_edge(self, source: NodeId, target: NodeId) -> None:
        self._successors[source].add(target)
        self._predecessors[target].add(source)
        self._successors.setdefault(target, set())
        self._predecessors.setdefault(source, set())

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        self._successors.get(source, set()).discard(target)
        self._predecessors.get(target, set()).discard(source)

    def successors(self, node_id: NodeId) -> Set[NodeId]:
        return set(self._successors.get(node_id, set()))

    def predecessors(self, node_id: NodeId) -> Set[NodeId]:
        return set(self._predecessors.get(node_id, set()))

    def degree(self, node_id: NodeId) -> int:
        return len(self._successors.get(node_id, set())) + len(self._predecessors.get(node_id, set()))

    def consistent_with(self, graph: PropertyGraph) -> bool:
        """True when the index matches the graph exactly (used in tests)."""
        for node_id in graph.node_ids():
            if self.successors(node_id) != graph.successors(node_id):
                return False
            if self.predecessors(node_id) != graph.predecessors(node_id):
                return False
        indexed_nodes = set(self._successors) | set(self._predecessors)
        return indexed_nodes == set(graph.node_ids())


class FeatureIndex:
    """(attribute, value) → node ids inverted index."""

    def __init__(self) -> None:
        self._index: Dict[Tuple[str, Any], Set[NodeId]] = defaultdict(set)
        self._node_features: Dict[NodeId, Dict[str, Any]] = {}

    @classmethod
    def build(cls, graph: PropertyGraph) -> "FeatureIndex":
        """Build the index from scratch for an existing graph."""
        index = cls()
        for node in graph.nodes():
            index.index_node(node.node_id, node.features)
        return index

    def index_node(self, node_id: NodeId, features: Dict[str, Any]) -> None:
        """(Re-)index one node's features."""
        self.remove_node(node_id)
        self._node_features[node_id] = dict(features)
        for name, value in features.items():
            if _indexable(value):
                self._index[(name, value)].add(node_id)

    def remove_node(self, node_id: NodeId) -> None:
        previous = self._node_features.pop(node_id, None)
        if not previous:
            return
        for name, value in previous.items():
            if _indexable(value):
                self._index.get((name, value), set()).discard(node_id)

    def lookup(self, name: str, value: Any) -> Set[NodeId]:
        """Node ids whose feature ``name`` equals ``value``."""
        return set(self._index.get((name, value), set()))

    def lookup_any(self, name: str, values: Iterable[Any]) -> Set[NodeId]:
        """Node ids whose feature ``name`` equals any of ``values``."""
        found: Set[NodeId] = set()
        for value in values:
            found |= self.lookup(name, value)
        return found

    def attributes(self) -> List[str]:
        """Every indexed attribute name."""
        return sorted({name for name, _ in self._index})


def _indexable(value: Any) -> bool:
    """Only hashable scalar-ish values participate in the inverted index."""
    try:
        hash(value)
    except TypeError:
        return False
    return True
