"""Command-line interface: ``repro-surrogate`` / ``python -m repro.cli``.

Subcommands
-----------
``table1``              Reproduce Table 1 / Figures 2-3 (the running example).
``figure7``             Reproduce Figure 7 (motifs).
``figure8``             Reproduce Figure 8 (utility-vs-opacity frontier).
``figure9``             Reproduce Figure 9 (synthetic sweep differences).
``figure10``            Reproduce Figure 10 (performance phases).
``all``                 Run every experiment and print the combined report.
``protect``             Protect a graph JSON file for a consumer class and
                        write the protected account to another JSON file
                        (runs through :class:`repro.api.ProtectionService`;
                        ``--json`` emits the full result, and policy/graph
                        errors exit non-zero with a one-line diagnosis).
``serve-batch``         Serve a JSON batch of protection requests spanning
                        one or more graphs through a single multi-graph
                        service — optionally under a named tenant with a
                        scoped store (``--tenant``/``--store-root``) — and
                        report per-request results plus account-cache
                        statistics.  ``--repeat`` replays the batch to
                        demonstrate cached serving.
``serve``               Run the async HTTP serving frontend
                        (:mod:`repro.server`): per-tenant bearer tokens,
                        admission control, streaming batch responses.
                        ``--check`` starts the server, probes
                        ``/v1/health`` once and exits (used by CI).
``edit``                Replay an edit script against a graph through an
                        incremental :meth:`ProtectionService.edit
                        <repro.api.service.ProtectionService.edit>` session:
                        each edit re-protects and re-scores off delta-patched
                        views (``delta_apply``) instead of recompiling, with
                        per-edit scores/timings and view-maintenance counters
                        in the report.
``motifs``              List the motif catalog with basic statistics.

Every experiment accepts ``--full`` to use the paper-scale synthetic family
instead of the reduced quick family.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.api.editing import apply_script_edit
from repro.api.registry import ServiceRegistry
from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.policy import ReleasePolicy, STRATEGIES, STRATEGY_SURROGATE
from repro.core.privileges import PrivilegeLattice
from repro.exceptions import ReproError
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.runner import run_all
from repro.experiments.table1 import run_table1
from repro.graph.serialization import graph_to_dict, load_graph, save_graph
from repro.graph.statistics import summarize
from repro.server.errors import error_envelope
from repro.store.engine import GraphStore
from repro.workloads.motifs import all_motifs


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro-surrogate`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-surrogate",
        description="Reproduction of 'Surrogate Parenthood: Protected and Informative Graphs' (VLDB 2011).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("table1", "Reproduce Table 1 / Figures 2-3"),
        ("figure7", "Reproduce Figure 7 (motifs)"),
        ("figure8", "Reproduce Figure 8 (utility vs opacity frontier)"),
        ("figure9", "Reproduce Figure 9 (synthetic sweep)"),
        ("figure10", "Reproduce Figure 10 (performance)"),
        ("all", "Run every experiment"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--full", action="store_true", help="use the paper-scale synthetic family")
        sub.add_argument("--seed", type=int, default=2011, help="random seed for workload generation")
        sub.add_argument(
            "--workers",
            type=int,
            default=0,
            help="worker processes sharding the experiment batch"
            " (default 0: serial; results are identical either way)",
        )
        if name == "figure10":
            sub.add_argument("--nodes", type=int, default=200, help="graph size for the timing run")

    protect = subparsers.add_parser("protect", help="Protect a graph JSON file")
    protect.add_argument("input", help="path to a graph JSON file (see repro.graph.serialization)")
    protect.add_argument("output", help="path the protected account graph is written to")
    protect.add_argument(
        "--strategy", choices=list(STRATEGIES), default=STRATEGY_SURROGATE, help="protection strategy"
    )
    protect.add_argument(
        "--protect-edge",
        action="append",
        default=[],
        metavar="SRC,DST",
        help="edge to protect, as 'source,target' (repeatable)",
    )
    protect.add_argument("--report", action="store_true", help="print utility/opacity of the result")
    protect.add_argument(
        "--json",
        action="store_true",
        help="emit the full ProtectionResult (account summary, scores, timings) as JSON",
    )

    serve = subparsers.add_parser(
        "serve-batch", help="Serve a JSON batch of protection requests (multi-graph, multi-tenant)"
    )
    serve.add_argument(
        "batch",
        help="path to a batch spec: {graphs: {name: path}, lattice: {priv: [dominates...]},"
        " lowest: {node: priv}, requests: [{graph, privilege(s), strategy, ...}]}",
    )
    serve.add_argument("--tenant", default=None, help="serve under this registered tenant")
    serve.add_argument(
        "--store-root",
        default=None,
        help="store directory (per-tenant subdirectories with --tenant, one shared store otherwise)",
    )
    serve.add_argument(
        "--store-engine",
        default=None,
        choices=("file", "sqlite"),
        help="storage backend for the store root (default: auto-detect;"
        " file for fresh roots)",
    )
    serve.add_argument(
        "--repeat", type=int, default=1, metavar="N", help="serve the batch N times (default 1)"
    )
    serve.add_argument(
        "--json", action="store_true", help="emit full per-request results and cache stats as JSON"
    )

    http_serve = subparsers.add_parser(
        "serve", help="Run the async HTTP serving frontend (repro.server)"
    )
    http_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    http_serve.add_argument("--port", type=int, default=8080, help="bind port (0 picks a free one)")
    http_serve.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME[=TOKEN]",
        help="tenant to enroll, optionally with a fixed bearer token (repeatable;"
        " default: one 'default' tenant with a generated token)",
    )
    http_serve.add_argument(
        "--store-root", default=None, help="root directory for per-tenant durable stores"
    )
    http_serve.add_argument(
        "--store-engine",
        default=None,
        choices=("file", "sqlite"),
        help="storage backend for tenant stores (default: auto-detect;"
        " file for fresh roots)",
    )
    http_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for cold compiles (default 0: everything"
        " runs on the executor threads)",
    )
    http_serve.add_argument(
        "--threads",
        type=int,
        default=4,
        help="executor threads for cached replays and request decode"
        " (default 4)",
    )
    http_serve.add_argument(
        "--replicate",
        action="store_true",
        help="lead: stream published graphs' deltas into per-tenant delta logs"
        " (needs --store-root; sqlite engine)",
    )
    http_serve.add_argument(
        "--replica-of",
        default=None,
        metavar="URL",
        help="follow: serve reads from the leader's --store-root (opened"
        " read-only), tailing its delta logs; URL is the leader's base"
        " address quoted back to stale clients",
    )
    http_serve.add_argument(
        "--staleness-budget",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="how long a follower blocks to cover a request's X-Repro-Vector"
        " before answering 503 (default 2.0)",
    )
    http_serve.add_argument(
        "--max-inflight", type=int, default=None, help="concurrent requests per tenant lane"
    )
    http_serve.add_argument(
        "--max-queue", type=int, default=None, help="queued requests per tenant lane"
    )
    http_serve.add_argument(
        "--max-requests", type=int, default=None, help="per-tenant total request quota"
    )
    http_serve.add_argument(
        "--check",
        action="store_true",
        help="start, probe /v1/health once, print the result and exit (CI smoke)",
    )
    http_serve.add_argument(
        "--json", action="store_true", help="emit startup/check output as JSON"
    )

    edit = subparsers.add_parser(
        "edit", help="Replay an edit script through an incremental edit session"
    )
    edit.add_argument("input", help="path to a graph JSON file")
    edit.add_argument(
        "script",
        help="path to an edit script: either a JSON list of edits or an object"
        " {lattice, lowest, privilege, edits}; each edit is"
        " {op: add_edge|remove_edge|add_bidirectional_edge|add_node|remove_node"
        "|set_node_features, ...}",
    )
    edit.add_argument(
        "--privilege", default=None, help="consumer class (default: the script's, else Public)"
    )
    edit.add_argument(
        "--output", default=None, help="write the final protected account graph to this path"
    )
    edit.add_argument(
        "--json", action="store_true", help="emit per-edit results and maintenance stats as JSON"
    )

    subparsers.add_parser("motifs", help="List the motif catalog")
    return parser


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


def _print_error(
    message: str, *, kind: str = "usage", as_json: bool, exc: Optional[BaseException] = None
) -> None:
    """One structured error line: JSON on ``--json``, ``error: ...`` otherwise.

    The JSON shape is the server's envelope
    (:func:`repro.server.errors.error_envelope`), so scripted callers parse
    one format whether the stack answered over HTTP or from a subcommand;
    usage errors (no exception object) map to status 400.
    """
    if as_json:
        if exc is not None:
            envelope = error_envelope(exc, message=message)
        else:
            envelope = error_envelope(kind=kind, message=message, status=400)
        _print(json.dumps(envelope))
    else:
        _print(f"error: {message}")


def _cmd_protect(args: argparse.Namespace) -> int:
    as_json = getattr(args, "json", False)
    edges = []
    for raw in args.protect_edge:
        parts = [part.strip() for part in raw.split(",")]
        if len(parts) != 2:
            _print_error(
                f"--protect-edge expects 'source,target', got {raw!r}",
                kind="usage",
                as_json=as_json,
            )
            return 2
        edges.append((parts[0], parts[1]))
    try:
        graph = load_graph(args.input)
    except (OSError, ReproError) as exc:
        _print_error(f"cannot load graph from {args.input}: {exc}", kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1
    policy = ReleasePolicy(PrivilegeLattice())
    service = ProtectionService(graph, policy)
    request = ProtectionRequest(
        privileges=(policy.lattice.public,),
        strategy=args.strategy,
        protect_edges=tuple(edges),
        score=args.report or as_json,
    )
    try:
        result = service.protect(request)
    except ReproError as exc:
        # NodeNotFoundError, EdgeNotFoundError, PolicyError, ProtectionError:
        # a structured one-line diagnosis instead of a traceback.
        _print_error(str(exc.args[0] if exc.args else exc), kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1
    account = result.account
    try:
        save_graph(account.graph, args.output)
    except (OSError, ReproError) as exc:
        _print_error(
            f"cannot write protected account to {args.output}: {exc}",
            kind=type(exc).__name__,
            as_json=as_json,
            exc=exc,
        )
        return 1
    if as_json:
        payload = result.as_dict()
        payload["output"] = str(args.output)
        _print(json.dumps(payload, indent=2, default=str))
        return 0
    _print(f"protected account written to {args.output} "
           f"({account.graph.node_count()} nodes, {account.graph.edge_count()} edges, "
           f"{len(account.surrogate_edges)} surrogate edges)")
    if args.report:
        report = {
            "strategy": args.strategy,
            "path_utility": round(result.scores.path_utility, 4),
            "average_opacity": round(result.scores.average_opacity, 4),
        }
        _print(json.dumps(report, indent=2))
    return 0


def _load_batch_spec(path: str, *, as_json: bool) -> Optional[dict]:
    """Parse the serve-batch spec file, or print a diagnosis and return None."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, ValueError) as exc:
        _print_error(f"cannot load batch spec {path}: {exc}", kind="usage", as_json=as_json)
        return None
    if not isinstance(spec, dict) or not isinstance(spec.get("requests"), list):
        _print_error(
            f"batch spec {path} must be an object with a 'requests' list",
            kind="usage",
            as_json=as_json,
        )
        return None
    return spec


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    as_json = getattr(args, "json", False)
    spec = _load_batch_spec(args.batch, as_json=as_json)
    if spec is None:
        return 2

    try:
        graphs = {
            name: load_graph(path) for name, path in dict(spec.get("graphs", {})).items()
        }
    except (OSError, ReproError) as exc:
        _print_error(f"cannot load batch graph: {exc}", kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1

    policy = ReleasePolicy(PrivilegeLattice())
    try:
        for name, dominates in dict(spec.get("lattice", {})).items():
            policy.lattice.add(name, dominates=list(dominates))
        for node_id, privilege in dict(spec.get("lowest", {})).items():
            policy.set_lowest(node_id, privilege)
    except ReproError as exc:
        _print_error(str(exc), kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1

    engine = getattr(args, "store_engine", None)
    if args.tenant is not None:
        registry = ServiceRegistry(args.store_root, store_engine=engine)
        registry.register(args.tenant)
        service = registry.service(args.tenant, None, policy)
    else:
        # An explicit --store-root without --tenant still deserves a store:
        # requests with persist_as would otherwise fail despite the flag.
        store = GraphStore(args.store_root, engine=engine) if args.store_root is not None else None
        service = ProtectionService(None, policy, store=store)

    try:
        requests = [_batch_request(entry, graphs) for entry in spec["requests"]]
    except (KeyError, TypeError, ValueError) as exc:
        _print_error(f"bad batch request: {exc}", kind="usage", as_json=as_json)
        return 2

    try:
        for _ in range(max(0, args.repeat - 1)):
            service.protect_many(requests)
        results = service.protect_many(requests)
    except ReproError as exc:
        _print_error(str(exc.args[0] if exc.args else exc), kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1

    stats = service.cache_stats()
    if as_json:
        payload = {
            "tenant": args.tenant,
            "served": len(results) * max(1, args.repeat),
            "results": [result.as_dict() for result in results],
            "cache": stats.as_dict(),
        }
        _print(json.dumps(payload, indent=2, default=str))
        return 0
    for index, result in enumerate(results):
        summary = result.account.graph
        line = (
            f"[{index}] privileges={','.join(p.name for p in result.request.privileges)} "
            f"strategy={result.request.strategy} nodes={summary.node_count()} "
            f"edges={summary.edge_count()} cache_hit={int(result.timings_ms.get('cache_hit', 0))}"
        )
        if result.scores is not None:
            line += (
                f" path_utility={result.scores.path_utility:.4f}"
                f" avg_opacity={result.scores.average_opacity:.4f}"
            )
        _print(line)
    _print(
        f"cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate, {stats.entries} entries)"
    )
    return 0


def _batch_request(entry: dict, graphs: Dict[str, object]) -> ProtectionRequest:
    """Build one ProtectionRequest from its batch-spec JSON entry."""
    if not isinstance(entry, dict):
        raise TypeError(f"each request must be an object, got {entry!r}")
    options = dict(entry)
    graph_name = options.pop("graph", None)
    graph = None
    if graph_name is not None:
        if graph_name not in graphs:
            raise ValueError(f"request names unknown graph {graph_name!r}")
        graph = graphs[graph_name]
    privileges = options.pop("privileges", None)
    privilege = options.pop("privilege", None)
    if privileges is None:
        if privilege is None:
            raise ValueError("each request needs 'privilege' or 'privileges'")
        privileges = [privilege]
    if "protect_edges" in options:
        options["protect_edges"] = tuple(
            (source, target) for source, target in options["protect_edges"]
        )
    if "opacity_edges" in options:
        options["opacity_edges"] = tuple(
            (source, target) for source, target in options["opacity_edges"]
        )
    return ProtectionRequest(privileges=tuple(privileges), graph=graph, **options)


def _stats_since(
    before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-run view-maintenance counters: ``after`` minus ``before``."""
    delta: Dict[str, Dict[str, int]] = {}
    for component, counters in after.items():
        base = before.get(component, {})
        moved = {
            event: count - base.get(event, 0)
            for event, count in counters.items()
            if count - base.get(event, 0)
        }
        if moved:
            delta[component] = moved
    return delta


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run (or ``--check``) the async HTTP frontend on a background thread."""
    # Imported lazily: only this subcommand needs the asyncio server stack.
    from repro.server.app import ServerConfig, start_server_thread

    as_json = getattr(args, "json", False)
    tenants: Dict[str, Optional[str]] = {}
    for raw in args.tenant or ["default"]:
        name, sep, token = raw.partition("=")
        if not name:
            _print_error(f"--tenant expects NAME[=TOKEN], got {raw!r}", as_json=as_json)
            return 2
        tenants[name] = token if sep else None
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=getattr(args, "threads", 4),
        pool_workers=args.workers or None,
        store_root=args.store_root,
        store_engine=getattr(args, "store_engine", None),
        replicate=getattr(args, "replicate", False),
        replica_of=getattr(args, "replica_of", None),
        staleness_budget=getattr(args, "staleness_budget", 2.0),
    )
    if args.max_inflight is not None:
        config.max_inflight = args.max_inflight
    if args.max_queue is not None:
        config.max_queue = args.max_queue
    tenant_options = (
        {name: {"max_requests": args.max_requests} for name in tenants}
        if args.max_requests is not None
        else None
    )
    try:
        handle, tokens = start_server_thread(
            config, tenants=tenants, tenant_options=tenant_options
        )
    except (OSError, ReproError, RuntimeError, ValueError) as exc:
        _print_error(f"cannot start server: {exc}", kind=type(exc).__name__, as_json=as_json)
        return 1

    if args.check:
        import http.client

        try:
            conn = http.client.HTTPConnection(config.host, handle.port, timeout=10)
            conn.request("GET", "/v1/health")
            response = conn.getresponse()
            health = json.loads(response.read())
            conn.close()
        finally:
            handle.stop()
        if as_json:
            _print(json.dumps({"port": handle.port, "health": health}))
        else:
            _print(f"serving check ok: port={handle.port} status={health['status']}")
        return 0 if health.get("status") in ("ok", "degraded") else 1

    if as_json:
        _print(json.dumps({"host": config.host, "port": handle.port, "tokens": tokens}))
    else:
        _print(f"serving on http://{config.host}:{handle.port} (Ctrl-C to drain and stop)")
        for name, token in tokens.items():
            _print(f"tenant {name}: Authorization: Bearer {token}")
    try:
        import time as _time

        while True:
            _time.sleep(1.0)
    except KeyboardInterrupt:
        _print("draining...")
    finally:
        handle.stop()
    return 0


def _cmd_edit(args: argparse.Namespace) -> int:
    as_json = getattr(args, "json", False)
    try:
        graph = load_graph(args.input)
    except (OSError, ReproError) as exc:
        _print_error(f"cannot load graph from {args.input}: {exc}", kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1
    try:
        with open(args.script, "r", encoding="utf-8") as handle:
            script = json.load(handle)
    except (OSError, ValueError) as exc:
        _print_error(f"cannot load edit script {args.script}: {exc}", kind="usage", as_json=as_json)
        return 2
    if isinstance(script, list):
        script = {"edits": script}
    if not isinstance(script, dict) or not isinstance(script.get("edits"), list):
        _print_error(
            f"edit script {args.script} must be a list of edits or an object with an 'edits' list",
            kind="usage",
            as_json=as_json,
        )
        return 2

    policy = ReleasePolicy(PrivilegeLattice())
    try:
        for name, dominates in dict(script.get("lattice", {})).items():
            policy.lattice.add(name, dominates=list(dominates))
        for node_id, privilege in dict(script.get("lowest", {})).items():
            policy.set_lowest(node_id, privilege)
        privilege = args.privilege or script.get("privilege") or policy.lattice.public
        service = ProtectionService(graph, policy)
        session = service.edit(privilege)
    except ReproError as exc:
        _print_error(str(exc.args[0] if exc.args else exc), kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1

    # Maintenance counters are process-wide and cumulative; snapshot before
    # the loop so the report describes this run only.
    stats_before = service.view_maintenance_stats()
    edits_report: List[Dict[str, object]] = []
    try:
        for index, entry in enumerate(script["edits"]):
            try:
                apply_script_edit(session, entry)
            except (ValueError, TypeError) as exc:
                _print_error(f"bad edit [{index}]: {exc}", kind="usage", as_json=as_json)
                return 2
            result = session.commit()
            edits_report.append(
                {
                    "edit": entry,
                    "path_utility": round(result.scores.path_utility, 6),
                    "node_utility": round(result.scores.node_utility, 6),
                    "average_opacity": round(result.scores.average_opacity, 6),
                    "delta_apply_ms": round(result.timings_ms.get("delta_apply", 0.0), 3),
                    "recompile_fallback_ms": round(
                        result.timings_ms.get("recompile_fallback", 0.0), 3
                    ),
                }
            )
    except ReproError as exc:
        _print_error(str(exc.args[0] if exc.args else exc), kind=type(exc).__name__, as_json=as_json, exc=exc)
        return 1
    finally:
        session.close()

    account = session.result.account
    if args.output is not None:
        try:
            save_graph(account.graph, args.output)
        except (OSError, ReproError) as exc:
            _print_error(
                f"cannot write protected account to {args.output}: {exc}",
                kind=type(exc).__name__,
                as_json=as_json,
            )
            return 1
    maintenance = _stats_since(stats_before, service.view_maintenance_stats())
    stats = maintenance.get("edit_session", {})
    if as_json:
        payload: Dict[str, object] = {
            "edits": edits_report,
            "account": account.summary(),
            "maintenance": maintenance,
        }
        if args.output is not None:
            payload["output"] = str(args.output)
        _print(json.dumps(payload, indent=2, default=str))
        return 0
    for index, row in enumerate(edits_report):
        path = (
            f"delta_apply={row['delta_apply_ms']}ms"
            if row["recompile_fallback_ms"] == 0.0
            else f"recompile_fallback={row['recompile_fallback_ms']}ms"
        )
        _print(
            f"[{index}] {row['edit']['op']}: path_utility={row['path_utility']:.4f} "
            f"avg_opacity={row['average_opacity']:.4f} ({path})"
        )
    _print(
        f"edits: {len(edits_report)} "
        f"(delta path {stats.get('delta_applied', 0)}, fallback {stats.get('recompile_fallback', 0)})"
    )
    if args.output is not None:
        _print(f"protected account written to {args.output}")
    return 0


def _cmd_motifs() -> int:
    for motif in all_motifs():
        summary = summarize(motif.graph).as_dict()
        _print(
            f"{motif.name:14s} nodes={summary['nodes']} edges={summary['edges']} "
            f"protected_edge={motif.protected_edge[0]}->{motif.protected_edge[1]}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    quick = not getattr(args, "full", False)
    seed = getattr(args, "seed", 2011)
    workers = getattr(args, "workers", 0) or None

    if args.command == "table1":
        _print(run_table1().render())
    elif args.command == "figure7":
        _print(run_figure7(workers=workers).render())
    elif args.command == "figure8":
        _print(run_figure8(quick=quick, seed=seed).render())
    elif args.command == "figure9":
        _print(run_figure9(quick=quick, seed=seed, workers=workers).render())
    elif args.command == "figure10":
        _print(run_figure10(node_count=args.nodes, seed=seed).render())
    elif args.command == "all":
        _print(run_all(quick=quick, seed=seed).render())
    elif args.command == "protect":
        return _cmd_protect(args)
    elif args.command == "serve-batch":
        return _cmd_serve_batch(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "edit":
        return _cmd_edit(args)
    elif args.command == "motifs":
        return _cmd_motifs()
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
