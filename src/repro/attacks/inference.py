"""Edge-inference attack: rank the edges an attacker would guess are missing.

The attacker sees only the protected account.  Following the paper's
advanced-adversary assumptions (Figure 5), it expects a well-connected graph
and therefore suspects that poorly connected ("loner") nodes have had edges
redacted.  The attack scores every absent ordered pair of account nodes and
returns the top guesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.opacity import AdvancedAdversary, AttackerModel, CompiledOpacityView
from repro.graph.model import NodeId, PropertyGraph


@dataclass(frozen=True)
class InferredEdge:
    """One guessed edge with the attacker's confidence score."""

    source: NodeId
    target: NodeId
    score: float

    @property
    def key(self) -> Tuple[NodeId, NodeId]:
        return (self.source, self.target)


class EdgeInferenceAttack:
    """Rank absent account edges by how strongly the adversary suspects them."""

    def __init__(self, adversary: Optional[AttackerModel] = None) -> None:
        self.adversary = adversary if adversary is not None else AdvancedAdversary()

    def candidate_scores(
        self,
        account_graph: PropertyGraph,
        *,
        view: Optional[CompiledOpacityView] = None,
    ) -> List[InferredEdge]:
        """Score every ordered pair of distinct nodes with no account edge.

        The score of a candidate ``(u, v)`` is the probability mass the
        opacity formula assigns to the attacker naming that pair: focus on
        either endpoint (normalised ``FP``) times the chance of picking the
        other endpoint (normalised ``IP`` among candidates).

        The weight vectors, the focus total and every per-source
        leave-one-out denominator come off one
        :class:`~repro.core.opacity.CompiledOpacityView` — the same compiled
        adversary simulation the opacity measure batches over — so scoring
        the O(V²) candidate grid no longer redoes an O(V) weight pass per
        source.  (As in the seed implementation, both directional terms of a
        candidate normalise over the nodes other than ``source`` — the
        attacker fixes its anchor first, then weighs both reading
        directions.)  ``view`` optionally supplies an already-compiled
        simulation (revalidated, recompiled if stale).
        """
        node_ids = account_graph.node_ids()
        if len(node_ids) < 2:
            return []
        if view is None or not view.is_current_for(account_graph, self.adversary):
            view = CompiledOpacityView.compile(account_graph, self.adversary)
        focus = view.focus_weights
        inference = view.inference_weights
        total_focus = view.total_focus or 1.0
        # denominators(): a delta-patched or derived view rebuilds its
        # leave-one-out table lazily; reading the raw dict would be stale.
        denominators = view.denominators()
        candidates: List[InferredEdge] = []
        for source in node_ids:
            focus_source = focus[source] / total_focus
            inference_total = denominators[source] or 1.0
            for target in node_ids:
                if source == target or account_graph.has_edge(source, target):
                    continue
                score = focus_source * (inference[target] / inference_total)
                score += (focus[target] / total_focus) * (inference[source] / inference_total)
                candidates.append(InferredEdge(source=source, target=target, score=score))
        candidates.sort(key=lambda edge: (-edge.score, repr(edge.source), repr(edge.target)))
        return candidates

    def top_guesses(
        self,
        account_graph: PropertyGraph,
        count: int,
        *,
        view: Optional[CompiledOpacityView] = None,
    ) -> List[InferredEdge]:
        """The attacker's ``count`` most confident guesses."""
        if count <= 0:
            return []
        return self.candidate_scores(account_graph, view=view)[:count]
