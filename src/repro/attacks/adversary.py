"""Run an edge-inference attack against a protected account and score it."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.attacks.inference import EdgeInferenceAttack, InferredEdge
from repro.core.opacity import AttackerModel, CompiledOpacityView, hidden_edges
from repro.core.protected_account import ProtectedAccount
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


@dataclass
class AttackOutcome:
    """Result of simulating an attack: what was guessed and how well it did."""

    guesses: List[InferredEdge] = field(default_factory=list)
    hidden: Set[EdgeKey] = field(default_factory=set)
    hits: Set[EdgeKey] = field(default_factory=set)

    @property
    def precision(self) -> float:
        """Fraction of guesses that correspond to real hidden edges."""
        if not self.guesses:
            return 0.0
        return len(self.hits) / len(self.guesses)

    @property
    def recall(self) -> float:
        """Fraction of hidden edges the attacker recovered."""
        if not self.hidden:
            return 1.0 if not self.guesses else 0.0
        return len(self.hits) / len(self.hidden)

    def summary(self) -> dict:
        return {
            "guesses": len(self.guesses),
            "hidden_edges": len(self.hidden),
            "hits": len(self.hits),
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
        }


def simulate_attack(
    original: PropertyGraph,
    account: ProtectedAccount,
    *,
    adversary: Optional[AttackerModel] = None,
    guess_budget: Optional[int] = None,
    view: Optional[CompiledOpacityView] = None,
) -> AttackOutcome:
    """Run the edge-inference attack and score it against the original graph.

    ``guess_budget`` caps how many edges the attacker names (default: the
    number of actually hidden edges — the "informed budget" that makes
    precision and recall comparable across accounts).  A guess counts as a
    hit when the guessed account nodes correspond to original nodes joined
    by a hidden original edge in the guessed direction.  ``view`` lets
    callers that already scored the account (e.g. through
    :meth:`ProtectionService.score <repro.api.service.ProtectionService.score>`,
    whose reports carry their compiled view) hand the attack the same
    adversary simulation instead of compiling a fresh one.
    """
    attack = EdgeInferenceAttack(adversary)
    hidden = {tuple(edge) for edge in hidden_edges(original, account)}
    representable_hidden = {
        (source, target)
        for source, target in hidden
        if account.account_node_of(source) is not None and account.account_node_of(target) is not None
    }
    budget = guess_budget if guess_budget is not None else max(1, len(representable_hidden))
    guesses = attack.top_guesses(account.graph, budget, view=view)
    hits: Set[EdgeKey] = set()
    for guess in guesses:
        original_source = account.correspondence.get(guess.source)
        original_target = account.correspondence.get(guess.target)
        if original_source is None or original_target is None:
            continue
        if (original_source, original_target) in hidden:
            hits.add((original_source, original_target))
    return AttackOutcome(guesses=guesses, hidden=set(hidden), hits=hits)
