"""Attacker simulation: empirical counterpart of the opacity measure.

Opacity (Section 4.2) is an *analytic* estimate of how likely an attacker is
to infer a hidden edge.  This package implements the attacker itself so the
estimate can be sanity-checked empirically: the adversary ranks candidate
missing edges over a protected account using the same background knowledge
the opacity formula assumes (focus on loners, preference for low-degree
endpoints), and the simulation scores those guesses against the original
graph.  Accounts with higher average opacity should — and, in the test
suite, do — yield lower attack success.
"""

from repro.attacks.inference import EdgeInferenceAttack, InferredEdge
from repro.attacks.adversary import AttackOutcome, simulate_attack

__all__ = [
    "EdgeInferenceAttack",
    "InferredEdge",
    "AttackOutcome",
    "simulate_attack",
]
