"""``authorized(consumer, object)`` — Definition 1 made concrete.

The :class:`AccessController` combines a release policy's ``lowest()``
assignments with the credential predicates of
:mod:`repro.security.credentials`: a consumer is authorized for a graph
object when one of the privileges they satisfy dominates the object's lowest
privilege.  Decisions are returned as small structured objects so that
applications (and the audit log in the PLUS substrate) can explain *why*
access was granted or refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.policy import ReleasePolicy
from repro.core.privileges import Privilege
from repro.graph.model import EdgeKey, NodeId, PropertyGraph
from repro.security.credentials import (
    Consumer,
    CredentialPredicate,
    best_privilege,
    default_predicates_for,
)


@dataclass(frozen=True)
class AuthorizationDecision:
    """The outcome of one authorization check."""

    consumer_id: str
    object_ref: str
    allowed: bool
    reason: str
    privilege_used: Optional[Privilege] = None

    def __bool__(self) -> bool:
        return self.allowed


class AccessController:
    """Evaluates ``authorized(c, o)`` for nodes and edges of one data set."""

    def __init__(
        self,
        policy: ReleasePolicy,
        *,
        predicates: Optional[Mapping[str, CredentialPredicate]] = None,
    ) -> None:
        self.policy = policy
        self.predicates = (
            dict(predicates) if predicates is not None else default_predicates_for(policy.lattice)
        )

    # ------------------------------------------------------------------ #
    # consumer classification
    # ------------------------------------------------------------------ #
    def effective_privileges(self, consumer: Consumer) -> List[Privilege]:
        """The maximal privilege classes the consumer's credentials satisfy."""
        return best_privilege(self.policy.lattice, consumer, self.predicates)

    def primary_privilege(self, consumer: Consumer) -> Privilege:
        """One representative privilege for the consumer (first maximal class).

        Appendix B generates protected accounts for singleton high-water
        sets; when a consumer satisfies several incomparable classes the
        caller can iterate :meth:`effective_privileges` instead.
        """
        return self.effective_privileges(consumer)[0]

    # ------------------------------------------------------------------ #
    # object-level decisions
    # ------------------------------------------------------------------ #
    def authorize_node(self, consumer: Consumer, node_id: NodeId) -> AuthorizationDecision:
        """``authorized(c, n)`` for a node."""
        lowest = self.policy.lowest(node_id)
        for privilege in self.effective_privileges(consumer):
            if self.policy.lattice.dominates(privilege, lowest):
                return AuthorizationDecision(
                    consumer_id=consumer.consumer_id,
                    object_ref=f"node:{node_id}",
                    allowed=True,
                    reason=f"{privilege.name} dominates lowest({node_id})={lowest.name}",
                    privilege_used=privilege,
                )
        return AuthorizationDecision(
            consumer_id=consumer.consumer_id,
            object_ref=f"node:{node_id}",
            allowed=False,
            reason=f"no satisfied privilege dominates lowest({node_id})={lowest.name}",
        )

    def authorize_edge(self, consumer: Consumer, edge: EdgeKey) -> AuthorizationDecision:
        """``authorized(c, e)`` for an edge: both incidences must be visible."""
        source, target = edge
        for privilege in self.effective_privileges(consumer):
            state = self.policy.markings.edge_state(edge, privilege)
            if state.value == "visible":
                return AuthorizationDecision(
                    consumer_id=consumer.consumer_id,
                    object_ref=f"edge:{source}->{target}",
                    allowed=True,
                    reason=f"both incidences visible for {privilege.name}",
                    privilege_used=privilege,
                )
        return AuthorizationDecision(
            consumer_id=consumer.consumer_id,
            object_ref=f"edge:{source}->{target}",
            allowed=False,
            reason="no satisfied privilege sees both incidences",
        )

    # ------------------------------------------------------------------ #
    # bulk decisions
    # ------------------------------------------------------------------ #
    def visible_nodes(self, consumer: Consumer, graph: PropertyGraph) -> List[NodeId]:
        """Every node of ``graph`` the consumer may see directly."""
        return [
            node_id for node_id in graph.node_ids() if self.authorize_node(consumer, node_id).allowed
        ]

    def visible_edges(self, consumer: Consumer, graph: PropertyGraph) -> List[EdgeKey]:
        """Every edge of ``graph`` the consumer may see directly."""
        return [key for key in graph.edge_keys() if self.authorize_edge(consumer, key).allowed]

    def decision_matrix(
        self, consumers: Iterable[Consumer], graph: PropertyGraph
    ) -> Dict[Tuple[str, NodeId], bool]:
        """(consumer, node) → allowed, for audit-style reporting."""
        matrix: Dict[Tuple[str, NodeId], bool] = {}
        for consumer in consumers:
            for node_id in graph.node_ids():
                matrix[(consumer.consumer_id, node_id)] = self.authorize_node(consumer, node_id).allowed
        return matrix
