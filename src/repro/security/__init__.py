"""Access-control substrate: credentials, authorization and enforcement.

The paper assumes a Boolean ``authorized(c, o)`` function evaluated by each
object's cognizant authority and characterises consumer classes with
privilege-predicates.  This package provides a concrete (but intentionally
simple) realisation used by the examples, the PLUS substrate and the
evaluation:

* :mod:`repro.security.credentials` — consumer credentials as attribute
  sets, and predicates over them;
* :mod:`repro.security.authorization` — ``authorized(consumer, object)``
  built from ``lowest()`` assignments plus the dominance lattice;
* :mod:`repro.security.enforcement` — query-time enforcement: the naive
  filter (baseline) and protected-account-based enforcement (the paper's
  proposal) behind one interface.
"""

from repro.security.credentials import Consumer, CredentialPredicate, credential_predicate
from repro.security.authorization import AccessController, AuthorizationDecision
from repro.security.enforcement import (
    EnforcementMode,
    QueryEnforcer,
)

__all__ = [
    "Consumer",
    "CredentialPredicate",
    "credential_predicate",
    "AccessController",
    "AuthorizationDecision",
    "EnforcementMode",
    "QueryEnforcer",
]
