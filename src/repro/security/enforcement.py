"""Query-time enforcement: naive filtering vs protected accounts.

The paper's motivating problem (Section 1) is that naive access control
breaks path-traversal queries: a single hidden ancestor makes every node
beyond it unreachable.  The :class:`QueryEnforcer` exposes both behaviours
behind one interface so that applications — and the examples in
``examples/`` — can show the difference directly:

* ``EnforcementMode.NAIVE`` — answer queries on the all-or-nothing account
  (drop invisible nodes and their incident edges);
* ``EnforcementMode.PROTECTED`` — answer queries on the maximally
  informative protected account produced by the Surrogate Generation
  Algorithm.

Either way, queries are evaluated *only* on the released account, never on
the original graph, so enforcement is correct by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.hiding import STRATEGY_NAIVE
from repro.core.policy import ReleasePolicy, STRATEGY_SURROGATE
from repro.core.protected_account import ProtectedAccount
from repro.exceptions import NodeNotFoundError
from repro.graph.model import NodeId, PropertyGraph
from repro.graph.traversal import ancestors, descendants
from repro.security.authorization import AccessController
from repro.security.credentials import Consumer


class EnforcementMode(enum.Enum):
    """How query results are protected."""

    NAIVE = "naive"
    PROTECTED = "protected"


@dataclass
class QueryResult:
    """The result of one path-traversal query over a released account."""

    consumer_id: str
    mode: EnforcementMode
    start: NodeId
    direction: str
    nodes: List[NodeId] = field(default_factory=list)
    surrogate_nodes: Set[NodeId] = field(default_factory=set)
    start_missing: bool = False

    def __len__(self) -> int:
        return len(self.nodes)

    def names(self) -> List[str]:
        return [str(node_id) for node_id in self.nodes]


class QueryEnforcer:
    """Evaluates lineage-style queries for a consumer under a chosen mode."""

    def __init__(
        self,
        graph: PropertyGraph,
        policy: ReleasePolicy,
        *,
        controller: Optional[AccessController] = None,
        service: Optional[ProtectionService] = None,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self.controller = controller if controller is not None else AccessController(policy)
        #: Accounts are generated through the service so enforcement shares
        #: compiled marking views with every other service caller; an
        #: enforcer built by :meth:`ProtectionService.enforce` is handed the
        #: parent service itself (session scoping).
        self.service = service if service is not None else ProtectionService(graph, policy)
        self._account_cache: Dict[tuple, ProtectedAccount] = {}
        #: Consumer keys whose next generation must bypass the service's
        #: account-cache lookup (set by :meth:`invalidate`).
        self._force_fresh: set = set()

    # ------------------------------------------------------------------ #
    # account management
    # ------------------------------------------------------------------ #
    def account_for(self, consumer: Consumer, mode: EnforcementMode) -> ProtectedAccount:
        """The (cached) released account this consumer's queries run against.

        A consumer whose credentials satisfy several incomparable classes
        (e.g. both High-1 and High-2) is served the merged account of all of
        them — the multi-privilege extension of Appendix B.
        """
        privileges = self.controller.effective_privileges(consumer)
        key = (tuple(sorted(privilege.name for privilege in privileges)), mode)
        if key not in self._account_cache:
            strategy = STRATEGY_NAIVE if mode is EnforcementMode.NAIVE else STRATEGY_SURROGATE
            request = ProtectionRequest(
                privileges=tuple(privileges),
                strategy=strategy,
                score=False,
                use_cache=key not in self._force_fresh,
            )
            self._account_cache[key] = self.service.protect(request).account
            self._force_fresh.discard(key)
        return self._account_cache[key]

    def invalidate(self) -> None:
        """Drop cached accounts (call after the policy or graph changes).

        Clears the enforcer's per-consumer map and marks every consumer it
        had served for one cache-bypassing regeneration (the fresh account
        also refreshes the service's cache entry).  Entries belonging to
        other graphs or callers in the same tenant namespace are left
        untouched — the service's versioned keys already guarantee they can
        never be served stale.
        """
        self._force_fresh.update(self._account_cache)
        self._account_cache.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def reachable(
        self,
        consumer: Consumer,
        start: NodeId,
        *,
        direction: str = "descendants",
        mode: EnforcementMode = EnforcementMode.PROTECTED,
    ) -> QueryResult:
        """All nodes reachable from ``start`` in the released account.

        ``direction`` is ``"descendants"`` (forward), ``"ancestors"``
        (backward — the provenance question "what contributed to this?"), or
        ``"connected"`` (ignore direction).  ``start`` refers to an original
        node id; if that node is not represented in the account the result
        is empty with ``start_missing=True`` — exactly the uninformative
        outcome the paper's introduction describes for naive enforcement.
        """
        if direction not in {"descendants", "ancestors", "connected"}:
            raise ValueError(
                f"direction must be 'descendants', 'ancestors' or 'connected', got {direction!r}"
            )
        if not self.graph.has_node(start):
            raise NodeNotFoundError(start)
        account = self.account_for(consumer, mode)
        result = QueryResult(
            consumer_id=consumer.consumer_id,
            mode=mode,
            start=start,
            direction=direction,
        )
        account_start = account.account_node_of(start)
        if account_start is None:
            result.start_missing = True
            return result
        if direction == "descendants":
            found = descendants(account.graph, account_start)
        elif direction == "ancestors":
            found = ancestors(account.graph, account_start)
        else:
            from repro.graph.traversal import weakly_reachable

            found = weakly_reachable(account.graph, account_start)
        result.nodes = sorted(found, key=repr)
        result.surrogate_nodes = {node for node in found if account.is_surrogate_node(node)}
        return result

    def compare_modes(
        self,
        consumer: Consumer,
        start: NodeId,
        *,
        direction: str = "ancestors",
    ) -> Dict[str, QueryResult]:
        """The same query under both enforcement modes (used by the examples)."""
        return {
            EnforcementMode.NAIVE.value: self.reachable(
                consumer, start, direction=direction, mode=EnforcementMode.NAIVE
            ),
            EnforcementMode.PROTECTED.value: self.reachable(
                consumer, start, direction=direction, mode=EnforcementMode.PROTECTED
            ),
        }
