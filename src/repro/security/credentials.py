"""Consumers, credentials and concrete privilege-predicates.

The paper leaves credential generation/authentication out of scope and only
needs the *implication* structure between predicates.  For the examples and
the PLUS substrate we still want something runnable, so a consumer carries a
set of credential attributes (clearances, roles, organisation tags) and a
:class:`CredentialPredicate` is a requirement over those attributes.  The
bridge to the paper's model is :func:`bind_lattice`, which checks that a set
of concrete predicates is consistent with the declared dominance lattice
(``p`` dominates ``q`` implies every consumer satisfying ``p`` satisfies
``q``) over a universe of consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from repro.core.privileges import Privilege, PrivilegeLattice
from repro.exceptions import PolicyError


@dataclass(frozen=True)
class Consumer:
    """A consumer of graph data: an identifier plus credential attributes."""

    consumer_id: str
    credentials: FrozenSet[str] = frozenset()
    attributes: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def with_credentials(cls, consumer_id: str, *credentials: str, **attributes: str) -> "Consumer":
        """Convenience constructor: ``Consumer.with_credentials("amy", "High-2")``."""
        return cls(
            consumer_id=consumer_id,
            credentials=frozenset(credentials),
            attributes=dict(attributes),
        )

    def has(self, credential: str) -> bool:
        """True when the consumer holds the given credential string."""
        return credential in self.credentials


class CredentialPredicate:
    """A concrete privilege-predicate: a Boolean function over consumers.

    ``required`` credentials must all be present; ``check`` (if given) adds
    an arbitrary extra condition (time, location, role...), mirroring the
    paper's remark that the cognizant authority may use any context
    information.
    """

    def __init__(
        self,
        name: str,
        *,
        required: Iterable[str] = (),
        check: Optional[Callable[[Consumer], bool]] = None,
    ) -> None:
        self.name = name
        self.required: FrozenSet[str] = frozenset(required)
        self._check = check

    def __call__(self, consumer: Consumer) -> bool:
        if not self.required.issubset(consumer.credentials):
            return False
        if self._check is not None and not self._check(consumer):
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CredentialPredicate({self.name!r}, required={sorted(self.required)})"


def credential_predicate(name: str, *required: str) -> CredentialPredicate:
    """Build a predicate that simply requires the listed credential strings."""
    return CredentialPredicate(name, required=required)


def default_predicates_for(lattice: PrivilegeLattice) -> Dict[str, CredentialPredicate]:
    """One concrete predicate per declared privilege.

    A consumer satisfies the predicate for privilege ``p`` when they hold a
    credential naming ``p`` or any privilege that dominates ``p``; the Public
    predicate is satisfied by everyone.  This construction is consistent
    with the lattice by definition.
    """
    predicates: Dict[str, CredentialPredicate] = {}
    for privilege in lattice.privileges():
        if privilege == lattice.public:
            predicates[privilege.name] = CredentialPredicate(privilege.name, check=lambda consumer: True)
            continue
        satisfying_names = {
            dominator.name for dominator in lattice.dominators_of(privilege)
        }

        def check(consumer: Consumer, names: FrozenSet[str] = frozenset(satisfying_names)) -> bool:
            return bool(names & consumer.credentials)

        predicates[privilege.name] = CredentialPredicate(privilege.name, check=check)
    return predicates


def satisfied_privileges(
    lattice: PrivilegeLattice,
    consumer: Consumer,
    predicates: Optional[Mapping[str, CredentialPredicate]] = None,
) -> Set[Privilege]:
    """Every declared privilege whose predicate the consumer satisfies."""
    predicates = predicates if predicates is not None else default_predicates_for(lattice)
    satisfied: Set[Privilege] = set()
    for privilege in lattice.privileges():
        predicate = predicates.get(privilege.name)
        if predicate is not None and predicate(consumer):
            satisfied.add(privilege)
    return satisfied


def best_privilege(
    lattice: PrivilegeLattice,
    consumer: Consumer,
    predicates: Optional[Mapping[str, CredentialPredicate]] = None,
) -> List[Privilege]:
    """The maximal privileges a consumer satisfies (its effective classes)."""
    satisfied = satisfied_privileges(lattice, consumer, predicates)
    if not satisfied:
        return [lattice.public]
    return sorted(lattice.maximal(satisfied), key=lambda privilege: privilege.name)


def bind_lattice(
    lattice: PrivilegeLattice,
    predicates: Mapping[str, CredentialPredicate],
    consumers: Iterable[Consumer],
) -> None:
    """Check the concrete predicates against the declared dominance relation.

    For every pair ``p`` dominates ``q`` and every supplied consumer,
    ``p(consumer)`` must imply ``q(consumer)``; otherwise the predicates
    contradict the lattice and a :class:`PolicyError` is raised.
    """
    consumers = list(consumers)
    for higher in lattice.privileges():
        for lower in lattice.privileges():
            if higher == lower or not lattice.dominates(higher, lower):
                continue
            higher_predicate = predicates.get(higher.name)
            lower_predicate = predicates.get(lower.name)
            if higher_predicate is None or lower_predicate is None:
                continue
            for consumer in consumers:
                if higher_predicate(consumer) and not lower_predicate(consumer):
                    raise PolicyError(
                        f"declared dominance {higher.name} -> {lower.name} is violated by "
                        f"consumer {consumer.consumer_id!r}: satisfies {higher.name} but not {lower.name}"
                    )
