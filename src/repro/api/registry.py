"""Multi-tenant serving: the :class:`ServiceRegistry` and per-tenant quotas.

One process serving many tenants needs three guarantees the bare
:class:`~repro.api.service.ProtectionService` does not give on its own:

* **Isolation** — tenants must not read each other's cached results or
  persisted accounts.  The registry gives every tenant its own namespace in
  one shared :class:`~repro.api.cache.AccountCache` and its own
  tenant-scoped :class:`~repro.store.engine.GraphStore` root
  (``base_dir/<tenant>`` on disk, or an isolated in-memory store).
* **Quotas** — a tenant's traffic must not starve the rest.
  :class:`TenantQuota` bounds requests served, graphs persisted and cache
  entries held per tenant; breaching one raises
  :class:`~repro.exceptions.QuotaExceededError`.
* **Thread safety** — registration, lookup and every quota counter take
  locks, and the services the registry hands out serialise account
  generation internally, so one registry can back a thread pool.

Example
-------
>>> from repro.api.registry import ServiceRegistry
>>> registry = ServiceRegistry()
>>> _ = registry.register("acme", max_requests=1000)
>>> registry.tenants()
('acme',)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.api.cache import DEFAULT_CACHE_CAPACITY, AccountCache
from repro.api.service import ProtectionService
from repro.core.opacity import AttackerModel
from repro.core.policy import ReleasePolicy
from repro.exceptions import QuotaExceededError, TenantError, UnknownTenantError
from repro.graph.model import PropertyGraph
from repro.store.engine import GraphStore


class TenantQuota:
    """Thread-safe usage budget for one tenant.

    ``None`` limits are unlimited.  The request counter is charged by
    :meth:`ProtectionService.protect
    <repro.api.service.ProtectionService.protect>` (cache hits count too:
    the quota bounds *traffic*, not compute); the graph limit is enforced
    atomically around each store write via :meth:`persist_guard`, which
    :meth:`ProtectionService.persist
    <repro.api.service.ProtectionService.persist>` enters automatically.

    Parameters
    ----------
    tenant:
        The tenant this budget belongs to (named in quota errors).
    max_requests:
        Upper bound on ``protect()`` calls served for this tenant.
    max_graphs:
        Upper bound on graphs persisted in the tenant's store.
    max_cache_entries:
        Override of the account cache's per-tenant LRU bound.
    """

    def __init__(
        self,
        tenant: str,
        *,
        max_requests: Optional[int] = None,
        max_graphs: Optional[int] = None,
        max_cache_entries: Optional[int] = None,
    ) -> None:
        self.tenant = tenant
        self.max_requests = max_requests
        self.max_graphs = max_graphs
        self.max_cache_entries = max_cache_entries
        self._requests_served = 0
        self._lock = threading.Lock()

    @property
    def requests_served(self) -> int:
        """How many ``protect()`` calls this tenant has been charged for."""
        with self._lock:
            return self._requests_served

    def charge_request(self) -> None:
        """Count one request; raises once the request budget is exhausted."""
        with self._lock:
            if self.max_requests is not None and self._requests_served >= self.max_requests:
                raise QuotaExceededError(self.tenant, "requests", self.max_requests)
            self._requests_served += 1

    @contextmanager
    def persist_guard(self, store: GraphStore, name: str) -> Iterator[None]:
        """Hold the quota lock across one store write so ``max_graphs`` is
        enforced atomically (no two concurrent persists can both pass the
        check).  Overwriting an already-stored name never counts as a new
        graph."""
        with self._lock:
            if (
                self.max_graphs is not None
                and not store.has_graph(name)
                and len(store.graph_names()) >= self.max_graphs
            ):
                raise QuotaExceededError(self.tenant, "graphs", self.max_graphs)
            yield

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of limits and usage."""
        return {
            "tenant": self.tenant,
            "max_requests": self.max_requests,
            "max_graphs": self.max_graphs,
            "max_cache_entries": self.max_cache_entries,
            "requests_served": self.requests_served,
        }


@dataclass
class _TenantRecord:
    """Everything the registry tracks for one tenant."""

    name: str
    store: GraphStore
    quota: TenantQuota
    services: int = 0


class ServiceRegistry:
    """Creates and tracks per-tenant :class:`ProtectionService` instances.

    Parameters
    ----------
    base_dir:
        Root directory for tenant stores (``base_dir/<tenant>`` each).
        ``None`` keeps every tenant store in memory.
    cache_capacity:
        Default per-tenant LRU bound of the shared account cache
        (individual tenants may override it via ``max_cache_entries``).
    store_engine:
        Storage backend every tenant store is opened with (``"file"`` or
        ``"sqlite"``; see :data:`repro.store.engine.STORE_ENGINES`).
        ``None`` auto-detects per tenant root — an existing SQLite root
        reopens as SQLite, anything else (including fresh and in-memory
        roots) gets the file engine.
    read_only:
        Open every tenant store read-only (follower processes).  This is
        what relaxes the one-process-per-root assumption: any number of
        read-only registries may share a root with one writer, because a
        ``mode=ro`` SQLite open takes no write locks and refuses every
        mutation up front (:class:`~repro.exceptions.ReadOnlyStoreError`).
    """

    def __init__(
        self,
        base_dir: Optional[Union[str, Path]] = None,
        *,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        store_engine: Optional[str] = None,
        read_only: bool = False,
    ) -> None:
        self.base_dir = Path(base_dir) if base_dir is not None else None
        self.store_engine = store_engine
        self.read_only = read_only
        self.cache = AccountCache(cache_capacity)
        self._lock = threading.RLock()
        self._tenants: Dict[str, _TenantRecord] = {}

    # ------------------------------------------------------------------ #
    # tenant lifecycle
    # ------------------------------------------------------------------ #
    def register(
        self,
        tenant: str,
        *,
        max_requests: Optional[int] = None,
        max_graphs: Optional[int] = None,
        max_cache_entries: Optional[int] = None,
    ) -> TenantQuota:
        """Enroll a tenant: scoped store, cache namespace, quota budget.

        Returns the tenant's :class:`TenantQuota` (also retrievable later
        via :meth:`quota_for`).  Registering a name twice is an error — a
        tenant's quotas are a policy decision, not something to silently
        overwrite.
        """
        with self._lock:
            if tenant in self._tenants:
                raise TenantError(f"tenant {tenant!r} is already registered")
            # Validate before any side effect, and only touch the shared
            # cache after the store exists: a failed registration must leave
            # neither a record nor a stale cache namespace behind.
            if max_cache_entries is not None and max_cache_entries < 1:
                raise ValueError(
                    f"cache capacity must be positive, got {max_cache_entries}"
                )
            quota = TenantQuota(
                tenant,
                max_requests=max_requests,
                max_graphs=max_graphs,
                max_cache_entries=max_cache_entries,
            )
            record = _TenantRecord(
                name=tenant,
                store=GraphStore.for_tenant(
                    self.base_dir,
                    tenant,
                    engine=self.store_engine,
                    read_only=self.read_only,
                ),
                quota=quota,
            )
            if max_cache_entries is not None:
                self.cache.set_capacity(tenant, max_cache_entries)
            self._tenants[tenant] = record
            return quota

    def tenants(self) -> Tuple[str, ...]:
        """Every registered tenant name, in registration order."""
        with self._lock:
            return tuple(self._tenants)

    def drop(self, tenant: str) -> None:
        """Unregister a tenant and drop its whole cache namespace.

        The namespace is removed outright (entries, stats and capacity
        override), so re-registering the same name starts from a clean
        slate.  The tenant's store directory (when durable) is left on
        disk: data deletion is an operator action, not a registry side
        effect.
        """
        with self._lock:
            self._record(tenant)
            del self._tenants[tenant]
            self.cache.drop_tenant(tenant)

    # ------------------------------------------------------------------ #
    # per-tenant access
    # ------------------------------------------------------------------ #
    def service(
        self,
        tenant: str,
        graph: Optional[PropertyGraph],
        policy: ReleasePolicy,
        *,
        adversary: Optional[AttackerModel] = None,
    ) -> ProtectionService:
        """A :class:`ProtectionService` wired into this tenant's slice.

        The service shares the registry's account cache (under the tenant's
        namespace), persists into the tenant's scoped store, and charges the
        tenant's quota on every request.  ``graph=None`` gives a multi-graph
        service for cross-graph batch serving.
        """
        with self._lock:
            record = self._record(tenant)
            record.services += 1
        return ProtectionService(
            graph,
            policy,
            store=record.store,
            adversary=adversary,
            cache=self.cache,
            tenant=tenant,
            quota=record.quota,
        )

    def store_for(self, tenant: str) -> GraphStore:
        """The tenant's scoped :class:`~repro.store.engine.GraphStore`."""
        with self._lock:
            return self._record(tenant).store

    def quota_for(self, tenant: str) -> TenantQuota:
        """The tenant's :class:`TenantQuota` budget."""
        with self._lock:
            return self._record(tenant).quota

    def invalidate(self, tenant: str) -> int:
        """Drop one tenant's cached results; returns how many were dropped."""
        with self._lock:
            self._record(tenant)
        return self.cache.invalidate_tenant(tenant)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant serving report: cache counters, quota usage, store size."""
        with self._lock:
            report: Dict[str, Dict[str, object]] = {}
            for name, record in self._tenants.items():
                report[name] = {
                    "cache": self.cache.stats(name).as_dict(),
                    "quota": record.quota.as_dict(),
                    "services": record.services,
                    "stored_graphs": len(record.store.graph_names()),
                    "stored_accounts": len(
                        record.store.storage.catalog.find(kind="protected_account")
                    ),
                }
            return report

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _record(self, tenant: str) -> _TenantRecord:
        record = self._tenants.get(tenant)
        if record is None:
            raise UnknownTenantError(tenant)
        return record
