"""Account-level result caching for :class:`~repro.api.service.ProtectionService`.

Generating and scoring a protected account is a pure function of the graph's
structure, the policy's markings and the request's options — so identical
requests against an unmodified (graph, policy) pair can be answered without
re-running the pipeline at all.  :class:`AccountCache` memoises whole
``protect()`` outcomes (account + :class:`~repro.api.results.ScoreCard`):

* **Versioned keys, automatic invalidation.**  Every key embeds
  :func:`repro.core.generation.account_cache_token` — the graph's and the
  policy's monotonic mutation counters — plus the identity of both objects.
  A mutation bumps a counter, so stale entries can never be *served*; the
  LRU bound garbage-collects them.  Entry identity is double-checked through
  weak references so a recycled ``id()`` can never alias a dead graph.
* **Per-tenant namespaces.**  Each tenant gets an independent LRU segment
  and independent hit/miss statistics, so one tenant's traffic can neither
  read nor evict another's entries (the isolation the
  :class:`~repro.api.registry.ServiceRegistry` builds on).
* **Thread safety.**  All operations take the cache's lock; lookups and
  stores are safe from concurrent service threads.

Cached results share the generated account object: callers must treat
accounts from ``protect()`` as immutable (which all library code does).
Requests that carry side effects (``persist_as``) or unhashable options are
simply never cached — :meth:`ProtectionRequest.cache_fingerprint
<repro.api.requests.ProtectionRequest.cache_fingerprint>` decides.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple, TYPE_CHECKING

from repro.core.generation import account_cache_token
from repro.core.policy import ReleasePolicy
from repro.graph.deltas import GraphDelta, record_maintenance
from repro.graph.model import PropertyGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.results import ProtectionResult

#: Default number of entries kept per tenant namespace.
DEFAULT_CACHE_CAPACITY = 256

#: Tenant namespace used by services not enrolled with a registry.
DEFAULT_TENANT = "default"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one tenant namespace (or the whole cache)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """The element-wise sum of two stats snapshots (for whole-cache totals)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            entries=self.entries + other.entries,
        )


@dataclass
class _CacheEntry:
    """One memoised result plus the weak identity proof for its key."""

    result: "ProtectionResult"
    graph_ref: "weakref.ref[PropertyGraph]"
    policy_ref: "weakref.ref[ReleasePolicy]"
    #: ``id()`` of the graph at store time — the per-graph eviction index
    #: key (usable even after the weakref dies).
    graph_id: int = 0

    def alive_for(self, graph: PropertyGraph, policy: ReleasePolicy) -> bool:
        """True when the entry was built against exactly these objects.

        Keys embed ``id(graph)`` / ``id(policy)``; ids can be recycled after
        garbage collection, so a hit must also prove object identity.
        """
        return self.graph_ref() is graph and self.policy_ref() is policy


@dataclass
class _TenantNamespace:
    """The LRU segment and counters of one tenant."""

    capacity: int
    entries: "OrderedDict[Hashable, _CacheEntry]" = field(default_factory=OrderedDict)
    stats: CacheStats = field(default_factory=CacheStats)
    #: graph id -> keys of entries built against that graph, so
    #: delta-scoped eviction is O(entries of the edited graph), not
    #: O(all entries of all tenants).
    by_graph: Dict[int, set] = field(default_factory=dict)

    def insert(self, key: Hashable, entry: _CacheEntry) -> None:
        """Add one entry, maintaining the per-graph index."""
        self.entries[key] = entry
        self.by_graph.setdefault(entry.graph_id, set()).add(key)

    def remove(self, key: Hashable) -> Optional[_CacheEntry]:
        """Drop one entry (returns it), maintaining the per-graph index."""
        entry = self.entries.pop(key, None)
        if entry is not None:
            keys = self.by_graph.get(entry.graph_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self.by_graph[entry.graph_id]
        return entry

    def pop_oldest(self) -> None:
        """Evict the least recently used entry (index maintained)."""
        key, entry = self.entries.popitem(last=False)
        keys = self.by_graph.get(entry.graph_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self.by_graph[entry.graph_id]

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self.entries)
        self.entries.clear()
        self.by_graph.clear()
        return dropped


class AccountCache:
    """A bounded, tenant-namespaced cache of whole ``protect()`` results.

    Parameters
    ----------
    capacity:
        Maximum entries kept **per tenant namespace** (least recently used
        entries are evicted first).  The :class:`~repro.api.registry.ServiceRegistry`
        may override the bound per tenant via its quotas.

    Example
    -------
    >>> cache = AccountCache(capacity=2)
    >>> cache.stats().lookups
    0
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._tenants: Dict[str, _TenantNamespace] = {}

    # ------------------------------------------------------------------ #
    # key construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(
        graph: PropertyGraph,
        policy: ReleasePolicy,
        fingerprint: Hashable,
    ) -> Tuple[Hashable, ...]:
        """The full cache key for one request against one (graph, policy).

        Combines object identity (``id``), the version token from
        :func:`~repro.core.generation.account_cache_token` (which is what
        makes invalidation automatic) and the request's option fingerprint.
        """
        return (id(graph), id(policy), account_cache_token(graph, policy), fingerprint)

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        tenant: str,
        graph: PropertyGraph,
        policy: ReleasePolicy,
        fingerprint: Hashable,
    ) -> Optional["ProtectionResult"]:
        """The cached result for this request, or ``None`` (counts a miss)."""
        key = self.key_for(graph, policy, fingerprint)
        with self._lock:
            namespace = self._namespace(tenant)
            entry = namespace.entries.get(key)
            if entry is not None and entry.alive_for(graph, policy):
                namespace.entries.move_to_end(key)
                namespace.stats.hits += 1
                return entry.result
            if entry is not None:
                # A recycled id() aliased a dead graph/policy: drop the corpse.
                namespace.remove(key)
            namespace.stats.misses += 1
            return None

    def contains(
        self,
        tenant: str,
        graph: PropertyGraph,
        policy: ReleasePolicy,
        fingerprint: Hashable,
    ) -> bool:
        """Whether a live entry exists, without touching LRU order or stats.

        Routing layers (the server's pool dispatch, parallel
        ``protect_many`` sharding) use this peek to decide *where* a
        request runs; the authoritative counted lookup still happens on
        the serving path, so hit/miss accounting matches the serial
        execution.
        """
        key = self.key_for(graph, policy, fingerprint)
        with self._lock:
            namespace = self._tenants.get(tenant)
            if namespace is None:
                return False
            entry = namespace.entries.get(key)
            return entry is not None and entry.alive_for(graph, policy)

    def store(
        self,
        tenant: str,
        graph: PropertyGraph,
        policy: ReleasePolicy,
        fingerprint: Hashable,
        result: "ProtectionResult",
    ) -> None:
        """Memoise one result under its versioned key (LRU-evicting when full)."""
        key = self.key_for(graph, policy, fingerprint)
        entry = _CacheEntry(
            result=result,
            graph_ref=weakref.ref(graph),
            policy_ref=weakref.ref(policy),
            graph_id=id(graph),
        )
        with self._lock:
            namespace = self._namespace(tenant)
            namespace.remove(key)
            while len(namespace.entries) >= namespace.capacity:
                namespace.pop_oldest()
                namespace.stats.evictions += 1
            namespace.insert(key, entry)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def set_capacity(self, tenant: str, capacity: int) -> None:
        """Override the LRU bound of one tenant namespace (quota hook)."""
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        with self._lock:
            namespace = self._namespace(tenant)
            namespace.capacity = capacity
            while len(namespace.entries) > capacity:
                namespace.pop_oldest()
                namespace.stats.evictions += 1

    def on_delta(self, graph: PropertyGraph, delta: GraphDelta) -> int:
        """Delta-scoped eviction: drop every entry built against ``graph``.

        A protected account is a function of the whole graph, so *any*
        structural delta kills every entry of the edited graph — but the
        versioned keys already guarantee those entries can never be served
        again.  What this subscriber (wired through the service's
        :class:`~repro.graph.deltas.DeltaBus`) adds is promptness: dead
        entries are reclaimed the moment the edit happens instead of
        squatting in the LRU until capacity pressure finds them.  The
        per-graph key index makes each dispatch O(entries of the edited
        graph) — a mutation of a graph with no cached entries costs
        O(tenants) dictionary probes, so high-churn edit loops do not
        serialize other tenants' cache hits behind full scans.  Entries of
        other graphs are untouched.  Returns how many entries were dropped.
        """
        dropped = 0
        graph_id = id(graph)
        with self._lock:
            for namespace in self._tenants.values():
                keys = namespace.by_graph.get(graph_id)
                if not keys:
                    continue
                for key in list(keys):
                    holder = namespace.entries[key].graph_ref()
                    # A recycled id() may alias a *different* live graph's
                    # entries into this bucket; drop only this graph's
                    # entries and dead-ref corpses.
                    if holder is graph or holder is None:
                        namespace.remove(key)
                        dropped += 1
        if dropped:
            record_maintenance("account_cache", "delta_evicted", dropped)
        return dropped

    def invalidate_tenant(self, tenant: str) -> int:
        """Drop every entry of one tenant; returns how many were dropped."""
        with self._lock:
            namespace = self._tenants.get(tenant)
            if namespace is None:
                return 0
            return namespace.clear()

    def drop_tenant(self, tenant: str) -> int:
        """Remove a tenant's namespace entirely — entries, stats and any
        capacity override — so a later re-registration starts fresh.
        Returns how many entries were dropped."""
        with self._lock:
            namespace = self._tenants.pop(tenant, None)
            return len(namespace.entries) if namespace is not None else 0

    def clear(self) -> None:
        """Drop every entry of every tenant (stats are kept)."""
        with self._lock:
            for namespace in self._tenants.values():
                namespace.clear()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self, tenant: Optional[str] = None) -> CacheStats:
        """Counters for one tenant, or the sum across tenants when ``None``."""
        with self._lock:
            if tenant is not None:
                namespace = self._tenants.get(tenant)
                if namespace is None:
                    return CacheStats()
                return CacheStats(
                    hits=namespace.stats.hits,
                    misses=namespace.stats.misses,
                    evictions=namespace.stats.evictions,
                    entries=len(namespace.entries),
                )
            total = CacheStats()
            for name in self._tenants:
                total = total.merged_with(self.stats(name))
            return total

    def tenants(self) -> Tuple[str, ...]:
        """Every tenant namespace that has been touched, in first-use order."""
        with self._lock:
            return tuple(self._tenants)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(ns.entries) for ns in self._tenants.values())

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _namespace(self, tenant: str) -> _TenantNamespace:
        namespace = self._tenants.get(tenant)
        if namespace is None:
            namespace = _TenantNamespace(capacity=self.capacity)
            self._tenants[tenant] = namespace
        return namespace
