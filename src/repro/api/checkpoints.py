"""Warm-restart checkpoints: compiled state persisted, delta catch-up on reopen.

A cold :class:`~repro.api.service.ProtectionService` start against an 8k-node
graph pays the whole pipeline again — compile the marking view, walk the
visible sets, generate the account, run the adversary simulation, score.  A
*checkpoint* freezes the expensive results next to the store:

* the :class:`~repro.core.markings.CompiledMarkingView` tables (node default
  markings, incidence overrides, per-edge states),
* the :class:`~repro.core.opacity.CompiledOpacityView` vectors (with the
  exact-Fraction totals, so a restored view is bit-identical to the one that
  scored the checkpointed result),
* the protected account — stored as a *structural diff against the original
  graph* (dropped edges/nodes, surrogate additions, feature changes), so
  restoring it is O(Δ) graph patching instead of O(V+E) JSON rebuild,
* the full :class:`~repro.api.results.ScoreCard`, and
* enough of the originating request to re-seed the
  :class:`~repro.api.cache.AccountCache` (the first ``protect()`` after a
  warm restart is a cache hit).

Every checkpoint is stamped with the store's write-log sequence number and
the delta-bus journal stamp.  On :func:`restore_service`, three paths:

**warm**
    The write log shows nothing happened since the stamp: every piece is
    restored and the caches seeded.
**catch-up**
    The log holds a *complete* tail after the stamp
    (:attr:`~repro.store.wal.WriteAheadLog.base_seq` proves no truncation
    gap): the marking view is restored at checkpoint state and patched
    through the tail records — O(affected), the same primitives the
    delta-maintenance layer uses — while the account and scores (stale by
    definition) are left for regeneration against the warm view.
**cold**
    No checkpoint, a CRC/format failure (the file is quarantined aside,
    never deleted), a policy/adversary mismatch, or a truncation gap: the
    service recompiles from scratch.  Corruption degrades to a recompile,
    never to an error or — worse — to silently wrong state.

The payload is a CRC-guarded two-line text file — a JSON header line
(format version + CRC32 of the body) followed by one JSON body — written
through the store's :class:`~repro.store.io.StorageIO` seam (atomic temp +
fsync + rename), so the fault-injection suite covers checkpoint writes like
any other store write.  Restore speed is the whole point of a checkpoint,
so the bulky per-node/per-edge tables inside the body are *packed*: rows of
string fields joined with tabs and newlines inside one JSON string.  A JSON
parser flies through one long string where it would crawl through 100k
tokens, and ``str.split`` recovers the rows at C speed — this is what makes
an 8k-node warm restart an order of magnitude cheaper than a cold
recompile.  Tables whose fields are not strings (exotic node ids) fall back
to plain JSON rows, transparently to the reader.
"""

from __future__ import annotations

import gc
import json
import weakref
import zlib
from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.api.persistence import account_from_metadata, account_metadata_to_dict
from repro.codec import (
    col_num as _col_num,
    col_str as _col_str,
    escape_field as _escape_field,
    split_num as _split_num,
    split_str as _split_str,
)
from repro.api.requests import ProtectionRequest
from repro.api.results import ProtectionResult, ScoreCard
from repro.core.markings import CompiledMarkingView, EdgeState, Marking
from repro.core.opacity import (
    DEFAULT_ADVERSARY,
    CompiledOpacityView,
    OpacityReport,
    adversary_fingerprint,
)
from repro.core.utility import UtilityReport
from repro.exceptions import CorruptionError, StoreError
from repro.graph.deltas import record_maintenance
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.serialization import graph_from_json, graph_to_json
from repro.store.wal import LogRecord

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.api.service import ProtectionService
    from repro.store.engine import GraphStore

#: Version stamp of the checkpoint payload layout.
CHECKPOINT_FORMAT_VERSION = 2

#: Suffix of checkpoint files inside the store directory.
CHECKPOINT_SUFFIX = ".checkpoint.json"


@dataclass
class RestoreReport:
    """What :func:`restore_service` managed to bring back.

    ``mode`` is ``"warm"`` (everything restored, caches seeded),
    ``"catchup"`` (marking view restored and patched through the write-log
    tail; account/scores left for regeneration) or ``"cold"`` (nothing
    usable — ``reason`` says why).
    """

    mode: str = "cold"
    reason: str = ""
    view_restored: bool = False
    account_restored: bool = False
    scores_restored: bool = False
    cache_seeded: bool = False
    opacity_view_restored: bool = False
    wal_tail_applied: int = 0
    quarantined: Optional[str] = None
    #: The restored account (warm mode), for callers that want it directly.
    account: Optional[object] = field(default=None, repr=False, compare=False)
    scores: Optional[ScoreCard] = field(default=None, repr=False, compare=False)

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-friendly summary (embedded in ``service.health()``)."""
        return {
            "mode": self.mode,
            "reason": self.reason,
            "view_restored": self.view_restored,
            "account_restored": self.account_restored,
            "scores_restored": self.scores_restored,
            "cache_seeded": self.cache_seeded,
            "opacity_view_restored": self.opacity_view_restored,
            "wal_tail_applied": self.wal_tail_applied,
            "quarantined": self.quarantined,
        }


# --------------------------------------------------------------------------- #
# paths and framing
# --------------------------------------------------------------------------- #
def checkpoint_path(store: "GraphStore", name: str) -> Path:
    """Where the named checkpoint lives inside the store directory."""
    directory = store.storage.directory
    if directory is None:
        raise StoreError("service checkpoints need a durable (directory-backed) store")
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)
    return directory / f"{safe}{CHECKPOINT_SUFFIX}"


def _wrap(payload: Dict[str, Any]) -> str:
    """Frame a payload: one JSON header line, then the CRC-guarded JSON body."""
    body = json.dumps(payload, sort_keys=True, default=str)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    header = json.dumps(
        {"format_version": CHECKPOINT_FORMAT_VERSION, "crc32": f"{crc:08x}"},
        sort_keys=True,
    )
    return header + "\n" + body


def _unwrap(text: str) -> Dict[str, Any]:
    """Parse a framed checkpoint; raises :class:`CorruptionError` on damage.

    The header and body are parsed separately (the body is never re-encoded
    inside a JSON string), so the big payload is tokenised exactly once.
    """
    header_text, sep, body = text.partition("\n")
    if not sep:
        raise CorruptionError("checkpoint is missing its header line")
    try:
        header = json.loads(header_text)
    except json.JSONDecodeError as exc:
        raise CorruptionError(f"checkpoint header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict) or "crc32" not in header:
        raise CorruptionError("checkpoint header is missing its CRC")
    if header.get("format_version") != CHECKPOINT_FORMAT_VERSION:
        raise CorruptionError(
            f"unsupported checkpoint format {header.get('format_version')!r}"
        )
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if f"{crc:08x}" != header["crc32"]:
        raise CorruptionError("checkpoint failed its CRC check")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise CorruptionError(f"checkpoint body is not valid JSON: {exc}") from exc


# --------------------------------------------------------------------------- #
# packed columns
# --------------------------------------------------------------------------- #
# The per-node and per-edge tables dominate a checkpoint (a 2.5 MB payload
# at 8k nodes).  Serialised as JSON rows they cost hundreds of thousands of
# parser tokens *and* a Python-level loop per row on restore; the packed
# column codecs (shared with the account-metadata serialiser) live in
# :mod:`repro.api.columns`.


def _pack_map(mapping: Any) -> Any:
    """A ``{string: number}`` mapping, columnar (or raw rows as fallback)."""
    keys = list(mapping)
    key_col = _col_str(keys)
    value_col = _col_num(list(mapping.values()))
    if key_col is None or value_col is None:
        return [[key, value] for key, value in mapping.items()]
    return {"n": len(keys), "k": key_col, "v": value_col}


def _unpack_map(value: Any) -> Dict[Any, Any]:
    if isinstance(value, list):
        return {key: number for key, number in value}
    count = value["n"]
    return dict(zip(_split_str(value["k"], count), _split_num(value["v"], count)))


def _pack_pairs(mapping: Any) -> Any:
    """A ``{number: number}`` mapping (e.g. a Counter), columnar."""
    key_col = _col_num(list(mapping))
    value_col = _col_num(list(mapping.values()))
    if key_col is None or value_col is None:
        return [[key, value] for key, value in mapping.items()]
    return {"n": len(mapping), "a": key_col, "b": value_col}


def _unpack_pairs(value: Any) -> Dict[Any, Any]:
    if isinstance(value, list):
        return {key: number for key, number in value}
    count = value["n"]
    return dict(zip(_split_num(value["a"], count), _split_num(value["b"], count)))


def _pack_edge_map(mapping: Any) -> Any:
    """A ``{(source, target): number}`` mapping, columnar."""
    source_col = _col_str([key[0] for key in mapping])
    target_col = _col_str([key[1] for key in mapping])
    value_col = _col_num(list(mapping.values()))
    if source_col is None or target_col is None or value_col is None:
        return [[key[0], key[1], value] for key, value in mapping.items()]
    return {"n": len(mapping), "s": source_col, "t": target_col, "v": value_col}


def _unpack_edge_map(value: Any) -> Dict[Any, Any]:
    if isinstance(value, list):
        return {(source, target): number for source, target, number in value}
    count = value["n"]
    keys = zip(_split_str(value["s"], count), _split_str(value["t"], count))
    return dict(zip(keys, _split_num(value["v"], count)))


def _pack_enum_map(mapping: Any) -> Any:
    """A ``{node: Enum}`` mapping, grouped by enum value (few distinct values)."""
    groups: Dict[Any, List[Any]] = {}
    for key, member in mapping.items():
        groups.setdefault(member.value, []).append(key)
    packed = []
    for value, keys in groups.items():
        col = _col_str(keys)
        if col is None:
            return [[key, member.value] for key, member in mapping.items()]
        packed.append([value, len(keys), col])
    return {"groups": packed}


def _unpack_enum_map(value: Any, by_value: Dict[Any, Any]) -> Dict[Any, Any]:
    if isinstance(value, list):
        return {key: by_value[v] for key, v in value}
    table: Dict[Any, Any] = {}
    for v, count, col in value["groups"]:
        table.update(dict.fromkeys(_split_str(col, count), by_value[v]))
    return table


def _pack_enum_edge_map(mapping: Any) -> Any:
    """A ``{(source, target): Enum}`` mapping, grouped by enum value."""
    groups: Dict[Any, Tuple[List[Any], List[Any]]] = {}
    for (source, target), member in mapping.items():
        sources, targets = groups.setdefault(member.value, ([], []))
        sources.append(source)
        targets.append(target)
    packed = []
    for value, (sources, targets) in groups.items():
        source_col = _col_str(sources)
        target_col = _col_str(targets)
        if source_col is None or target_col is None:
            return [
                [key[0], key[1], member.value] for key, member in mapping.items()
            ]
        packed.append([value, len(sources), source_col, target_col])
    return {"groups": packed}


def _unpack_enum_edge_map(value: Any, by_value: Dict[Any, Any]) -> Dict[Any, Any]:
    if isinstance(value, list):
        return {(source, target): by_value[v] for source, target, v in value}
    table: Dict[Any, Any] = {}
    for v, count, source_col, target_col in value["groups"]:
        keys = zip(_split_str(source_col, count), _split_str(target_col, count))
        table.update(dict.fromkeys(keys, by_value[v]))
    return table


def _pack_override_map(mapping: Any) -> Any:
    """The ``{(node, (source, target)): Marking}`` override table, grouped."""
    groups: Dict[Any, Tuple[List[Any], List[Any], List[Any]]] = {}
    for (node, (source, target)), member in mapping.items():
        nodes, sources, targets = groups.setdefault(member.value, ([], [], []))
        nodes.append(node)
        sources.append(source)
        targets.append(target)
    packed = []
    for value, (nodes, sources, targets) in groups.items():
        cols = (_col_str(nodes), _col_str(sources), _col_str(targets))
        if any(col is None for col in cols):
            return [
                [node, edge[0], edge[1], member.value]
                for (node, edge), member in mapping.items()
            ]
        packed.append([value, len(nodes), *cols])
    return {"groups": packed}


def _unpack_override_map(value: Any) -> Dict[Any, Any]:
    if isinstance(value, list):
        return {
            (node, (source, target)): _MARKING_BY_VALUE[v]
            for node, source, target, v in value
        }
    table: Dict[Any, Any] = {}
    for v, count, node_col, source_col, target_col in value["groups"]:
        keys = zip(
            _split_str(node_col, count),
            zip(_split_str(source_col, count), _split_str(target_col, count)),
        )
        table.update(dict.fromkeys(keys, _MARKING_BY_VALUE[v]))
    return table


def _encode_features(features: Dict[str, Any]) -> str:
    return (
        ""
        if not features
        else json.dumps(features, separators=(",", ":"), sort_keys=True, default=str)
    )


def _pack_entities(rows: List[List[Any]]) -> Any:
    """Entity rows (head string fields + a trailing features dict), columnar."""
    head_cols = [
        _col_str(list(col)) for col in zip(*[row[:-1] for row in rows])
    ]
    if any(col is None for col in head_cols):
        return rows
    features_col = "\t".join(
        _escape_field(_encode_features(row[-1])) for row in rows
    )
    return {"n": len(rows), "cols": head_cols, "f": features_col}


def _entity_columns(value: Any, width: int) -> List[List[Any]]:
    """``width`` head columns plus the decoded features column."""
    if isinstance(value, list):
        if not value:
            return [[] for _ in range(width + 1)]
        return [list(col) for col in zip(*value)]
    count = value["n"]
    if count == 0:
        return [[] for _ in range(width + 1)]
    cols = [_split_str(col, count) for col in value["cols"]]
    if len(cols) != width:
        raise CorruptionError(
            f"entity table holds {len(cols)} columns where {width} were expected"
        )
    features = [
        json.loads(text) if text else {} for text in _split_str(value["f"], count)
    ]
    return [*cols, features]


#: Enum members by value, so hot decode loops skip the Enum ``__call__``.
_MARKING_BY_VALUE = {marking.value: marking for marking in Marking}
_EDGE_STATE_BY_VALUE = {state.value: state for state in EdgeState}


def _adversary_crc(adversary: object) -> str:
    """A cross-process identity for an attacker model (repr of its fingerprint)."""
    effective = adversary if adversary is not None else DEFAULT_ADVERSARY
    return f"{zlib.crc32(repr(adversary_fingerprint(effective)).encode('utf-8')) & 0xFFFFFFFF:08x}"


def _policy_crc(policy: object) -> str:
    """A cross-process fingerprint of a release policy's protection-relevant state.

    Covers the lattice's privilege names, the default protected marking, the
    ``lowest()`` assignments and every explicit incidence marking — i.e.
    everything a :class:`~repro.core.markings.CompiledMarkingView` depends
    on.  Version counters are process-local, so content is hashed instead.
    """
    markings = getattr(policy, "markings", policy)
    lattice = markings.lattice
    # The explicit table can run to thousands of incidences, so it is folded
    # with an order-independent sum of per-item CRCs — and ``MarkingPolicy``
    # / ``ReleasePolicy`` maintain those sums incrementally as mutations
    # land, so checkpoint and restore read them in O(1).  The fallback folds
    # cover policy-like objects that do not maintain them; both paths hash
    # identical item strings, so they agree on identical content.
    crc32 = zlib.crc32
    explicit_sum = getattr(markings, "_explicit_crc", None)
    if explicit_sum is None:
        explicit_sum = 0
        for key, marking in markings.explicit_incidences():
            item = f"{key!r}\x1f{marking.value}"
            explicit_sum = (explicit_sum + crc32(item.encode("utf-8"))) & 0xFFFFFFFF
    lowest_sum = getattr(policy, "_lowest_crc", None)
    if lowest_sum is None:
        lowest_sum = 0
        for node, privilege in getattr(policy, "_lowest", {}).items():
            item = f"{node!r}\x1f{getattr(privilege, 'name', str(privilege))}"
            lowest_sum = (lowest_sum + crc32(item.encode("utf-8"))) & 0xFFFFFFFF
    default_lowest = getattr(policy, "default_lowest", None)
    canonical = json.dumps(
        {
            "privileges": sorted(p.name for p in lattice.privileges()),
            "default_protected_marking": markings.default_protected_marking.value,
            "default_lowest": getattr(default_lowest, "name", None),
            "lowest_sum": lowest_sum,
            "explicit_sum": explicit_sum,
        },
        sort_keys=True,
    )
    return f"{crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"


# --------------------------------------------------------------------------- #
# compiled-view serialisation
# --------------------------------------------------------------------------- #
def _marking_view_to_dict(view: CompiledMarkingView) -> Dict[str, Any]:
    """Serialise a compiled marking view's three tables (packed when possible)."""
    return {
        "privilege": view.privilege.name,
        "node_default": _pack_enum_map(view.node_default),
        "overrides": _pack_override_map(view._overrides),
        "edge_states": _pack_enum_edge_map(view.edge_state_table),
    }


def _marking_view_from_dict(
    payload: Dict[str, Any],
    graph: PropertyGraph,
    policy: object,
    privilege: object,
) -> CompiledMarkingView:
    """Rebuild a compiled marking view from its serialised tables.

    The view is constructed without the O(V+E) compile pass — slots are
    filled straight from the payload — and stamped *current* for ``graph``
    and ``policy``; the caller is responsible for having proven that the
    tables actually describe the graph's present (warm path) or for patching
    them forward (catch-up path) before handing the view out.
    """
    markings = getattr(policy, "markings", policy)
    view = CompiledMarkingView.__new__(CompiledMarkingView)
    view._graph_ref = weakref.ref(graph)
    view.privilege = privilege
    view.graph_version = graph.version
    view.policy_version = markings.version
    view._policy = markings
    view.node_default = _unpack_enum_map(payload["node_default"], _MARKING_BY_VALUE)
    view._overrides = _unpack_override_map(payload["overrides"])
    view.edge_state_table = _unpack_enum_edge_map(
        payload["edge_states"], _EDGE_STATE_BY_VALUE
    )
    record_maintenance("marking_view", "restored")
    return view


def _opacity_view_to_dict(view: CompiledOpacityView) -> Dict[str, Any]:
    """Serialise a compiled opacity view, exact-Fraction totals included."""
    return {
        "node_count": view.node_count,
        "focus_weights": _pack_map(view.focus_weights),
        "inference_weights": _pack_map(view.inference_weights),
        "total_focus": view.total_focus,
        "total_inference": view.total_inference,
        "guess_denominators": _pack_map(view.denominators()),
        "total_focus_exact": str(view._total_focus_exact),
        "total_inference_exact": str(view._total_inference_exact),
        "inference_value_counts": _pack_pairs(view._inference_value_counts),
    }


def _opacity_view_from_dict(
    payload: Dict[str, Any], account_graph: PropertyGraph, adversary: object
) -> CompiledOpacityView:
    """Rebuild a compiled opacity view bound to the restored account graph.

    Exact totals come back as :class:`~fractions.Fraction` values, so the
    restored view's arithmetic is bit-identical to the one checkpointed.
    """
    effective = adversary if adversary is not None else DEFAULT_ADVERSARY
    view = CompiledOpacityView(
        graph_version=account_graph.version,
        node_count=payload["node_count"],
        focus_weights=_unpack_map(payload["focus_weights"]),
        inference_weights=_unpack_map(payload["inference_weights"]),
        total_focus=payload["total_focus"],
        total_inference=payload["total_inference"],
        # The leave-one-out denominators are derived state: rebuilt from the
        # exact total and the weight-value multiset on first read (the same
        # stale-refresh path every patched copy uses), bit-identical to the
        # persisted column — so restore skips decoding the largest map.
        guess_denominators={},
        _denominators_stale=True,
        adversary_key=adversary_fingerprint(effective),
        _graph_ref=weakref.ref(account_graph),
        _total_focus_exact=Fraction(payload["total_focus_exact"]),
        _total_inference_exact=Fraction(payload["total_inference_exact"]),
        _inference_value_counts=Counter(
            _unpack_pairs(payload["inference_value_counts"])
        ),
    )
    record_maintenance("opacity_view", "restored")
    return view


# --------------------------------------------------------------------------- #
# account serialisation (diff against the original graph)
# --------------------------------------------------------------------------- #
def _graph_diff(base: PropertyGraph, target: PropertyGraph) -> Optional[Dict[str, Any]]:
    """``target`` as a structural diff against ``base`` (``None`` if unsupported).

    Unsupported means a node present in both graphs changed its ``kind`` —
    rebuilding that needs edge surgery the O(Δ) patcher doesn't attempt, so
    the caller falls back to a full graph serialisation.
    """
    removed_nodes: List[Any] = []
    changed_nodes: List[List[Any]] = []
    for node_id in base.node_ids():
        if not target.has_node(node_id):
            removed_nodes.append(node_id)
            continue
        old = base.node(node_id)
        new = target.node(node_id)
        if old.kind != new.kind:
            return None
        if dict(old.features) != dict(new.features):
            changed_nodes.append([node_id, dict(new.features)])
    added_nodes = []
    for node_id in target.node_ids():
        if not base.has_node(node_id):
            node = target.node(node_id)
            added_nodes.append([node.node_id, node.kind, dict(node.features)])
    base_edges = set(base.edge_keys())
    target_edges = set(target.edge_keys())
    removed_edges = [[s, t] for (s, t) in base.edge_keys() if (s, t) not in target_edges]
    added_edges = []
    changed_edges = []
    for key in target.edge_keys():
        edge = target.edge(*key)
        if key not in base_edges:
            added_edges.append([edge.source, edge.target, edge.label, dict(edge.features)])
        else:
            old = base.edge(*key)
            if old.label != edge.label or dict(old.features) != dict(edge.features):
                changed_edges.append(
                    [edge.source, edge.target, edge.label, dict(edge.features)]
                )
    return {
        "removed_edges": removed_edges,
        "removed_nodes": removed_nodes,
        "added_nodes": added_nodes,
        "added_edges": added_edges,
        "changed_nodes": changed_nodes,
        "changed_edges": changed_edges,
    }


def _encode_diff(diff: Dict[str, Any]) -> Dict[str, Any]:
    """Pack the diff's six row lists for the checkpoint body."""
    removed_edges = diff["removed_edges"]
    source_col = _col_str([row[0] for row in removed_edges])
    target_col = _col_str([row[1] for row in removed_edges])
    if source_col is not None and target_col is not None:
        packed_removed: Any = {
            "n": len(removed_edges),
            "s": source_col,
            "t": target_col,
        }
    else:
        packed_removed = removed_edges
    id_col = _col_str(diff["removed_nodes"])
    return {
        "removed_edges": packed_removed,
        "removed_nodes": {"n": len(diff["removed_nodes"]), "t": id_col}
        if id_col is not None
        else diff["removed_nodes"],
        "added_nodes": _pack_entities(diff["added_nodes"]),
        "added_edges": _pack_entities(diff["added_edges"]),
        "changed_nodes": _pack_entities(diff["changed_nodes"]),
        "changed_edges": _pack_entities(diff["changed_edges"]),
    }


def _build_edges(sources, targets, labels, features_col) -> list:
    """Construct ``Edge`` rows positionally, bypassing the frozen ``__init__``.

    The frozen-dataclass protocol routes every field through
    ``object.__setattr__``; on a diff with tens of thousands of added edges
    that is the single largest restore cost.  Populating ``__dict__``
    directly builds identical instances (same fields, same equality) in
    roughly two thirds of the time.
    """
    new = Edge.__new__
    out = [new(Edge) for _ in sources]
    for edge, source, target, label, features in zip(
        out, sources, targets, labels, features_col
    ):
        edge.__dict__.update(
            source=source, target=target, label=label, features=features
        )
    return out


def _apply_graph_diff(
    base: PropertyGraph, diff: Dict[str, Any], name: Optional[str]
) -> PropertyGraph:
    """Rebuild an account graph: clone ``base`` structurally, apply the diff.

    ``Node`` and ``Edge`` are immutable value objects, so the clone shares
    them with ``base`` and only copies the containers — and the diff is
    applied by direct container surgery rather than through the public
    mutators, which would re-normalise every feature dict and drive the
    delta machinery for a graph nothing is observing yet.  O(V+E) dict
    copies plus O(Δ) construction, with none of the per-call typing tax.
    """
    rebuilt = PropertyGraph(name=name)
    rebuilt._nodes = dict(base._nodes)
    rebuilt._edges = dict(base._edges)
    rebuilt._succ = {node: dict(adj) for node, adj in base._succ.items()}
    rebuilt._pred = {node: dict(adj) for node, adj in base._pred.items()}
    nodes, edges, succ, pred = rebuilt._nodes, rebuilt._edges, rebuilt._succ, rebuilt._pred

    removed = diff["removed_edges"]
    if isinstance(removed, dict):
        count = removed["n"]
        removed = zip(_split_str(removed["s"], count), _split_str(removed["t"], count))
    for source, target in removed:
        del edges[(source, target)]
        del succ[source][target]
        del pred[target][source]
    removed_nodes = diff["removed_nodes"]
    if isinstance(removed_nodes, dict):
        removed_nodes = _split_str(removed_nodes["t"], removed_nodes["n"])
    for node_id in removed_nodes:
        del nodes[node_id]
        succ.pop(node_id, None)
        pred.pop(node_id, None)

    ids, kinds, features_col = _entity_columns(diff["added_nodes"], 2)
    nodes.update(zip(ids, map(Node, ids, kinds, features_col)))
    for node_id in ids:
        succ.setdefault(node_id, {})
        pred.setdefault(node_id, {})
    sources, targets, labels, features_col = _entity_columns(diff["added_edges"], 3)
    keys = list(zip(sources, targets))
    edges.update(zip(keys, _build_edges(sources, targets, labels, features_col)))
    for source, target in keys:
        succ[source][target] = None
        pred[target][source] = None

    ids, features_col = _entity_columns(diff["changed_nodes"], 1)
    for node_id, features in zip(ids, features_col):
        nodes[node_id] = Node(node_id, nodes[node_id].kind, features)
    sources, targets, labels, features_col = _entity_columns(diff["changed_edges"], 3)
    edges.update(
        zip(zip(sources, targets), _build_edges(sources, targets, labels, features_col))
    )
    return rebuilt


# --------------------------------------------------------------------------- #
# scores serialisation
# --------------------------------------------------------------------------- #
def _scores_to_dict(scores: ScoreCard) -> Dict[str, Any]:
    """Serialise a full ScoreCard (per-node and per-edge breakdowns included)."""
    return {
        "utility": {
            "path_utility": scores.utility.path_utility,
            "node_utility": scores.utility.node_utility,
            "path_percentages": _pack_map(scores.utility.path_percentages),
        },
        "opacity": {
            "average": scores.opacity.average,
            "per_edge": _pack_edge_map(scores.opacity.per_edge),
        },
        "timings_ms": dict(scores.timings_ms),
    }


def _scores_from_dict(
    payload: Dict[str, Any], opacity_view: Optional[CompiledOpacityView]
) -> ScoreCard:
    """Rebuild a ScoreCard; ``opacity_view`` rides along for cached re-scores."""
    utility = UtilityReport(
        path_utility=payload["utility"]["path_utility"],
        node_utility=payload["utility"]["node_utility"],
        path_percentages=_unpack_map(payload["utility"]["path_percentages"]),
    )
    opacity = OpacityReport(
        average=payload["opacity"]["average"],
        per_edge=_unpack_edge_map(payload["opacity"]["per_edge"]),
        view=opacity_view,
    )
    return ScoreCard(utility=utility, opacity=opacity, timings_ms=payload.get("timings_ms", {}))


# --------------------------------------------------------------------------- #
# request serialisation (for account-cache re-seeding)
# --------------------------------------------------------------------------- #
_REQUEST_FIELDS = (
    "strategy",
    "include_surrogate_edges",
    "repair_connectivity",
    "name",
    "score",
    "normalize_focus",
    "compiled",
)


def _request_to_dict(request: ProtectionRequest) -> Optional[Dict[str, Any]]:
    """The cache-relevant request fields (``None`` when not reproducible).

    Requests carrying an adversary override, explicit scores, protected
    edges or a per-request graph are not checkpointed for cache seeding —
    their fingerprints cannot be reproduced from JSON alone.
    """
    if (
        request.adversary is not None
        or request.explicit_scores is not None
        or request.protect_edges
        or request.graph is not None
        or request.persist_as is not None
    ):
        return None
    payload = {name: getattr(request, name) for name in _REQUEST_FIELDS}
    payload["privileges"] = [
        getattr(p, "name", str(p)) for p in request.privileges
    ]
    payload["opacity_edges"] = (
        [[s, t] for (s, t) in request.opacity_edges]
        if request.opacity_edges is not None
        else None
    )
    return payload


def _request_from_dict(payload: Dict[str, Any], lattice: object) -> ProtectionRequest:
    """Rebuild a request with privileges resolved through the live lattice."""
    options = {name: payload[name] for name in _REQUEST_FIELDS}
    opacity_edges = payload.get("opacity_edges")
    if opacity_edges is not None:
        options["opacity_edges"] = tuple((s, t) for s, t in opacity_edges)
    privileges = tuple(lattice.get(name) for name in payload["privileges"])
    return ProtectionRequest(privileges=privileges, **options)


# --------------------------------------------------------------------------- #
# write
# --------------------------------------------------------------------------- #
def write_checkpoint(
    service: "ProtectionService",
    result: ProtectionResult,
    *,
    store: Optional["GraphStore"] = None,
    name: str = "service",
    graph_name: Optional[str] = None,
) -> Path:
    """Checkpoint one served result (account, scores, compiled views) to the store.

    The store is checkpointed first (snapshots + write-log truncation), so
    the stamp recorded here sits right at a truncation marker and the
    common restart — nothing happened since — takes the warm path.  Returns
    the checkpoint file's path.
    """
    store = store if store is not None else service.store
    if store is None:
        raise StoreError("service checkpoints need a store; pass store= or set one")
    if service.graph is None:
        raise StoreError("a multi-graph service cannot be checkpointed; bind a graph")
    path = checkpoint_path(store, name)
    graph = service.graph
    account = result.account

    store.checkpoint()

    view_payload: Optional[Dict[str, Any]] = None
    privileges = result.request.privileges
    if len(privileges) == 1 and not result.request.protect_edges:
        view = service.policy.markings.compile(graph, privileges[0])
        view_payload = _marking_view_to_dict(view)

    diff = _graph_diff(graph, account.graph)
    if diff is not None:
        account_payload: Dict[str, Any] = {"encoding": "diff", "diff": _encode_diff(diff)}
    else:
        account_payload = {"encoding": "full", "graph": graph_to_json(account.graph)}
    account_payload["name"] = account.graph.name
    account_payload["metadata"] = account_metadata_to_dict(account)

    effective_adversary = (
        result.request.adversary if result.request.adversary is not None else service.adversary
    )
    opacity_payload: Optional[Dict[str, Any]] = None
    scores_payload: Optional[Dict[str, Any]] = None
    if result.scores is not None and result.request.explicit_scores is None:
        scores_payload = _scores_to_dict(result.scores)
        view_obj = result.scores.opacity.view
        if view_obj is not None:
            opacity_payload = _opacity_view_to_dict(view_obj)

    payload: Dict[str, Any] = {
        "graph_name": graph_name if graph_name is not None else graph.name,
        "node_count": len(graph.node_ids()),
        "edge_count": len(graph.edge_keys()),
        "wal_next_seq": store.storage.wal.next_seq,
        "delta_journal_seq": service.delta_bus.journal_seq,
        "tenant": service.tenant,
        "policy_crc": _policy_crc(service.policy),
        "adversary_crc": _adversary_crc(effective_adversary),
        "marking_view": view_payload,
        "account": account_payload,
        "scores": scores_payload,
        "opacity_view": opacity_payload,
        "request": _request_to_dict(result.request),
    }
    store.storage.io.atomic_write_text(path, _wrap(payload))
    return path


# --------------------------------------------------------------------------- #
# restore
# --------------------------------------------------------------------------- #
def restore_service(
    service: "ProtectionService",
    *,
    store: Optional["GraphStore"] = None,
    name: str = "service",
    graph_name: Optional[str] = None,
) -> RestoreReport:
    """Bring a freshly constructed service back to its checkpointed state.

    Call after binding the service to the graph recovered from ``store``.
    Never raises on a bad checkpoint: corruption quarantines the file and
    the report comes back ``cold`` — the service simply recompiles.
    """
    if not gc.isenabled():
        return _restore_service_inner(
            service, store=store, name=name, graph_name=graph_name
        )
    # A restore allocates a few hundred thousand objects in one burst, none
    # of them garbage; the cyclic collector would otherwise run several full
    # passes over the live heap mid-decode.  Pause it for the bounded
    # critical section — this alone shaves tens of milliseconds off a warm
    # restart at 8k nodes.
    gc.disable()
    try:
        return _restore_service_inner(
            service, store=store, name=name, graph_name=graph_name
        )
    finally:
        gc.enable()


def _restore_service_inner(
    service: "ProtectionService",
    *,
    store: Optional["GraphStore"],
    name: str,
    graph_name: Optional[str],
) -> RestoreReport:
    """The restore flow proper (see :func:`restore_service`)."""
    store = store if store is not None else service.store
    report = RestoreReport()
    if store is None or service.graph is None:
        report.reason = "no store or no bound graph"
        return report
    try:
        path = checkpoint_path(store, name)
    except StoreError:
        report.reason = "store is not durable"
        return report
    if not path.exists():
        report.reason = "no checkpoint"
        return report

    io = store.storage.io
    try:
        payload = _unwrap(io.read_text(path))
    except (CorruptionError, StoreError, UnicodeDecodeError) as exc:
        # UnicodeDecodeError: bitrot can leave bytes that are not even text.
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            io.replace(path, quarantined)
            report.quarantined = str(quarantined)
        except StoreError:  # pragma: no cover - double-fault path
            pass
        record_maintenance("checkpoint", "quarantined")
        report.reason = f"checkpoint corrupt: {exc}"
        return report

    graph = service.graph
    expected_name = graph_name if graph_name is not None else graph.name
    if payload["graph_name"] != expected_name:
        report.reason = (
            f"checkpoint is for graph {payload['graph_name']!r}, not {expected_name!r}"
        )
        return report
    if payload["policy_crc"] != _policy_crc(service.policy):
        report.reason = "policy changed since checkpoint"
        return report

    wal = store.storage.wal
    stamp = payload["wal_next_seq"]
    if stamp > wal.next_seq:
        report.reason = "checkpoint is from the store's future (restored from backup?)"
        return report
    if stamp <= wal.base_seq:
        report.reason = "write-log range since checkpoint was truncated away"
        return report
    tail = [
        record
        for record in wal.records_since(stamp - 1)
        if record.graph == payload["graph_name"]
    ]
    if any(record.op == "drop_graph" for record in tail):
        report.reason = "graph was dropped and recreated since checkpoint"
        return report

    try:
        return _restore_from_payload(service, report, payload, graph, tail)
    except (CorruptionError, KeyError, ValueError, TypeError, IndexError) as exc:
        # The frame's CRC passed but the payload itself would not decode —
        # a format drift or an impossible shape.  Undo any half-restored
        # view, quarantine the file, and come back cold: never wrong.
        markings = service.policy.markings
        for key in [k for k in markings._compiled if k[0] == id(graph)]:
            del markings._compiled[key]
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            io.replace(path, quarantined)
        except StoreError:  # pragma: no cover - double-fault path
            pass
        record_maintenance("checkpoint", "quarantined")
        return RestoreReport(
            quarantined=str(quarantined),
            reason=f"checkpoint unreadable: {exc}",
        )


def _restore_from_payload(
    service: "ProtectionService",
    report: RestoreReport,
    payload: Dict[str, Any],
    graph: PropertyGraph,
    tail: List[LogRecord],
) -> RestoreReport:
    """Interpret a validated checkpoint payload into service state.

    Raises decoding errors upward; :func:`restore_service` converts them
    into a quarantine-and-cold outcome.
    """
    privilege = None
    view = None
    if payload["marking_view"] is not None:
        privilege = service.policy.lattice.get(payload["marking_view"]["privilege"])
        view = _marking_view_from_dict(
            payload["marking_view"], graph, service.policy, privilege
        )
        for record in tail:
            _patch_view_from_record(view, record)
        if len(view.node_default) != len(graph._nodes) or len(
            view.edge_state_table
        ) != len(graph._edges):
            # The tail didn't account for every mutation (e.g. the graph
            # was renamed in the store): the view cannot be trusted.
            record_maintenance("marking_view", "restore_rejected")
            view = None
        else:
            markings = service.policy.markings
            markings._compiled[(id(graph), privilege.name)] = view
            report.view_restored = True
            report.wal_tail_applied = len(tail)

    if tail:
        report.mode = "catchup" if report.view_restored else "cold"
        report.reason = "write-log tail after checkpoint; account and scores are stale"
        return report
    if payload["node_count"] != len(graph._nodes) or payload["edge_count"] != len(
        graph._edges
    ):
        report.mode = "catchup" if report.view_restored else "cold"
        report.reason = "graph shape does not match the checkpoint"
        return report

    account_payload = payload["account"]
    if account_payload["encoding"] == "diff":
        account_graph = _apply_graph_diff(
            graph, account_payload["diff"], account_payload["name"]
        )
    else:
        account_graph = graph_from_json(account_payload["graph"])
    account = account_from_metadata(
        account_graph, account_payload["metadata"], lattice=service.policy.lattice
    )
    report.account_restored = True
    report.account = account
    record_maintenance("account_cache", "restored")

    adversary_ok = payload["adversary_crc"] == _adversary_crc(service.adversary)
    opacity_view = None
    if adversary_ok and payload["opacity_view"] is not None:
        opacity_view = _opacity_view_from_dict(
            payload["opacity_view"], account.graph, service.adversary
        )
        service._opacity_views.seed(
            account.graph,
            service.adversary if service.adversary is not None else DEFAULT_ADVERSARY,
            opacity_view,
        )
        report.opacity_view_restored = True

    scores = None
    if adversary_ok and payload["scores"] is not None:
        scores = _scores_from_dict(payload["scores"], opacity_view)
        report.scores_restored = True
        report.scores = scores

    if payload["request"] is not None and scores is not None:
        request = _request_from_dict(payload["request"], service.policy.lattice)
        fingerprint = request.cache_fingerprint(adversary=service.adversary)
        if fingerprint is not None:
            memoised = ProtectionResult(
                request=request,
                account=account,
                scores=scores,
                timings_ms={},
                stored_as=None,
            )
            service.cache.store(
                service.tenant, graph, service.policy, fingerprint, memoised
            )
            report.cache_seeded = True

    report.mode = "warm"
    report.reason = "checkpoint restored" + (
        "" if adversary_ok else " (adversary changed; scores dropped)"
    )
    return report


# --------------------------------------------------------------------------- #
# write-log tail → marking-view patches (delta catch-up)
# --------------------------------------------------------------------------- #
def _patch_view_from_record(view: CompiledMarkingView, record: LogRecord) -> None:
    """Apply one write-log record's mutations to a restored marking view."""
    if record.op == "txn":
        for item in record.payload.get("operations", []):
            _patch_view_op(view, item["op"], item["payload"])
    else:
        _patch_view_op(view, record.op, record.payload)


def _patch_view_op(view: CompiledMarkingView, op: str, payload: Dict[str, Any]) -> None:
    """One write-log operation as an O(affected) marking-view patch.

    Mirrors :meth:`CompiledMarkingView.apply_delta`, but driven by the
    durable log instead of in-memory :class:`~repro.graph.deltas.GraphDelta`
    events — the restart-time equivalent of delta catch-up.
    """
    if op == "add_node":
        node_id = payload["id"]
        view.node_default[node_id] = view._default_for(node_id)
    elif op == "remove_node":
        node_id = payload["id"]
        for key in [
            key for key in view.edge_state_table if key[0] == node_id or key[1] == node_id
        ]:
            view._remove_edge_entry(key)
        view.node_default.pop(node_id, None)
    elif op == "add_edge":
        view._set_edge_entry((payload["source"], payload["target"]))
    elif op == "remove_edge":
        view._remove_edge_entry((payload["source"], payload["target"]))
    elif op == "set_node_features":
        pass  # markings are feature-blind (mirrors CompiledMarkingView._apply_one)
    # create_graph records and unknown ops carry no marking information.
