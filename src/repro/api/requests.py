"""The request side of the :class:`~repro.api.service.ProtectionService` API.

A :class:`ProtectionRequest` captures everything one protection run needs —
the consumer classes, the strategy, the edges to protect, the repair mode,
and how the resulting account should be scored and persisted — as one
immutable value.  Call sites that used to stitch together
``generate_protected_account`` + ``path_utility`` + ``opacity`` with ad-hoc
keyword conventions now build one request and hand it to the service.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Mapping, Optional, Sequence, Tuple

from repro.core.hiding import STRATEGY_NAIVE
from repro.core.opacity import AttackerModel
from repro.core.policy import STRATEGY_HIDE, STRATEGY_SURROGATE
from repro.exceptions import ProtectionError
from repro.graph.model import EdgeKey, NodeId, PropertyGraph

#: Every strategy a request may name.  ``"naive"`` selects the all-or-nothing
#: baseline of Figure 1(c); ``"hide"`` and ``"surrogate"`` select the two
#: edge-protection strategies of Section 6.
REQUEST_STRATEGIES = (STRATEGY_SURROGATE, STRATEGY_HIDE, STRATEGY_NAIVE)


@dataclass(frozen=True)
class ProtectionRequest:
    """One protect → score → (optionally) persist run, as a value.

    Attributes
    ----------
    privileges:
        The consumer classes the account is generated for.  One privilege
        produces the per-class account of Appendix B; several incomparable
        privileges produce the merged multi-privilege account.
    strategy:
        ``"surrogate"`` (default), ``"hide"`` or ``"naive"``.  With
        ``protect_edges`` the strategy decides how those edges are marked
        before generation; without it, ``"naive"`` selects the baseline
        account and the other two just label the result.
    protect_edges:
        Edges protected (on a scoped copy of the policy) before generation —
        the Section-6 transformation.  Ignored by the ``"naive"`` strategy.
    include_surrogate_edges:
        Disable to skip the surrogate-edge step (ablations).
    repair_connectivity:
        Run the Definition-9.3 closure-repair pass (the
        ``ensure_maximal_connectivity`` flag of the old free functions).
    name:
        Optional name for the account graph.
    score:
        When True (default) the service computes a
        :class:`~repro.api.results.ScoreCard` for the result.
    adversary:
        Attacker model for the opacity measure (default: the service's
        adversary, itself defaulting to Figure 5's advanced adversary).
    opacity_edges:
        Which original edges to score opacity over.  Default: every edge the
        account hides when ``protect_edges`` is empty, otherwise the
        protected edges themselves (the convention of the paper's Section 6
        evaluation).
    normalize_focus:
        Use the normalised-focus reading of the opacity formula.
    explicit_scores:
        Provider-assigned ``infoScore`` overrides, keyed by account node id.
    compiled:
        Use the compiled per-privilege marking view (default).  ``False``
        forces the uncompiled reference path; only the equivalence tests do.
    persist_as:
        When set, the service stores the account under this name in its
        configured :class:`~repro.store.engine.GraphStore`.
    graph:
        Optional per-request graph override.  ``None`` (default) targets the
        service's bound graph; a :class:`~repro.graph.model.PropertyGraph`
        makes this request run against that graph instead, which is how
        :meth:`~repro.api.service.ProtectionService.protect_many` serves
        batches spanning multiple graphs.
    use_cache:
        ``False`` skips the account-cache *lookup* for this request (the
        fresh result still refreshes the cache entry).  Callers that must
        observe a genuinely regenerated account — e.g.
        :meth:`QueryEnforcer.invalidate
        <repro.security.enforcement.QueryEnforcer.invalidate>` — use this
        instead of evicting other requests' entries.
    """

    privileges: Tuple[object, ...] = ()
    strategy: str = STRATEGY_SURROGATE
    protect_edges: Tuple[EdgeKey, ...] = ()
    include_surrogate_edges: bool = True
    repair_connectivity: bool = False
    name: Optional[str] = None
    score: bool = True
    adversary: Optional[AttackerModel] = None
    opacity_edges: Optional[Tuple[EdgeKey, ...]] = None
    normalize_focus: bool = False
    explicit_scores: Optional[Mapping[NodeId, float]] = None
    compiled: bool = True
    persist_as: Optional[str] = None
    graph: Optional[PropertyGraph] = None
    use_cache: bool = True

    def __post_init__(self) -> None:
        # Normalise sequence fields so callers may pass lists; keep the
        # dataclass hashable-by-content where its fields allow it.
        object.__setattr__(self, "privileges", _as_tuple(self.privileges))
        object.__setattr__(
            self, "protect_edges", tuple(tuple(edge) for edge in self.protect_edges)
        )
        if self.opacity_edges is not None:
            object.__setattr__(
                self, "opacity_edges", tuple(tuple(edge) for edge in self.opacity_edges)
            )
        if not self.privileges:
            raise ProtectionError("a ProtectionRequest needs at least one privilege")
        if self.strategy not in REQUEST_STRATEGIES:
            raise ProtectionError(
                f"unknown protection strategy {self.strategy!r}; expected one of {REQUEST_STRATEGIES}"
            )

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    @classmethod
    def for_privilege(cls, privilege: object, **options: object) -> "ProtectionRequest":
        """A request for one consumer class: ``ProtectionRequest.for_privilege("High-2")``."""
        return cls(privileges=(privilege,), **options)  # type: ignore[arg-type]

    def with_options(self, **options: object) -> "ProtectionRequest":
        """A copy of this request with some fields replaced."""
        return replace(self, **options)  # type: ignore[arg-type]

    @property
    def multi_privilege(self) -> bool:
        """True when the request asks for a merged multi-privilege account."""
        return len(self.privileges) > 1

    def default_opacity_edges(self) -> Optional[Tuple[EdgeKey, ...]]:
        """The edge set opacity is scored over when none is given explicitly."""
        if self.opacity_edges is not None:
            return self.opacity_edges
        return self.protect_edges or None

    def cache_fingerprint(
        self, *, adversary: Optional[AttackerModel] = None
    ) -> Optional[Hashable]:
        """A hashable digest of every option that affects this request's result.

        ``None`` marks the request uncacheable: it carries a side effect
        (``persist_as``) or an option that cannot be fingerprinted (an
        unhashable adversary or ``explicit_scores`` payload).  The graph and
        policy are deliberately absent — the
        :class:`~repro.api.cache.AccountCache` keys on their identities and
        version counters separately — and ``adversary`` must be the
        *effective* model (request override or service default), since two
        services sharing one cache may default differently.
        """
        if self.persist_as is not None:
            return None
        explicit: Optional[Hashable] = None
        if self.explicit_scores is not None:
            explicit = tuple(sorted(self.explicit_scores.items(), key=repr))
        fingerprint = (
            tuple(getattr(p, "name", str(p)) for p in self.privileges),
            self.strategy,
            self.protect_edges,
            self.include_surrogate_edges,
            self.repair_connectivity,
            self.name,
            self.score,
            adversary,
            self.opacity_edges,
            self.normalize_focus,
            explicit,
            self.compiled,
        )
        try:
            hash(fingerprint)
        except TypeError:
            return None
        return fingerprint


def _as_tuple(value: object) -> Tuple[object, ...]:
    """Accept one privilege, or any sequence of them, as the privileges field."""
    if isinstance(value, tuple):
        return value
    if isinstance(value, (list, set, frozenset)):
        return tuple(value)
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        return tuple(value)
    return (value,)
