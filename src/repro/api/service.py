"""The :class:`ProtectionService` facade: protect → score → enforce, one API.

The paper's workflow — mark a graph, generate a protected account per
privilege, score its utility and opacity, answer queries through it — used
to be assembled by hand at every call site.  The service binds one graph and
one release policy and exposes the whole workflow behind an explicit
request/response object model:

* :meth:`ProtectionService.protect` — one
  :class:`~repro.api.requests.ProtectionRequest` in, one
  :class:`~repro.api.results.ProtectionResult` (account + ScoreCard +
  timings) out;
* :meth:`ProtectionService.protect_many` — batched generation that shares
  the compiled per-privilege marking views and the visible-set walk caches
  across requests (no recompilation between requests for the same class),
  including batches whose requests target *different graphs*;
* :meth:`ProtectionService.score` — the ScoreCard of any account against
  the bound graph;
* :meth:`ProtectionService.enforce` — a session-scoped
  :class:`~repro.security.enforcement.QueryEnforcer` answering lineage
  queries through the service's accounts;
* :meth:`ProtectionService.persist` / :meth:`ProtectionService.load_account`
  — round-trip accounts through an embedded
  :class:`~repro.store.engine.GraphStore`.

Serving at scale
----------------
Every service owns (or shares) an :class:`~repro.api.cache.AccountCache`:
repeated identical requests against an unmodified (graph, policy) pair are
answered from the cache in microseconds, with hit/miss statistics surfaced
in :attr:`ProtectionResult.timings_ms <repro.api.results.ProtectionResult>`
(``cache_hit`` / ``cache_hits`` / ``cache_misses``).  Invalidation is
automatic — keys embed the graph's and policy's version counters — and the
cache is namespaced per tenant, so a
:class:`~repro.api.registry.ServiceRegistry` can hand one cache to many
tenants without cross-talk.  Account generation is serialised behind an
internal lock, which makes a shared service safe to call from concurrent
threads (cache hits stay lock-free on the service; the cache has its own
short lock).

Example
-------
>>> from repro.api import ProtectionService
>>> from repro.core.policy import ReleasePolicy
>>> from repro.core.privileges import PrivilegeLattice
>>> from repro.graph.builders import GraphBuilder
>>> graph = GraphBuilder("demo").chain(["a", "b", "c"]).build()
>>> service = ProtectionService(graph, ReleasePolicy(PrivilegeLattice()))
>>> result = service.protect(privilege="Public")
>>> result.scores.path_utility
1.0
>>> service.protect(privilege="Public").timings_ms["cache_hit"]
1.0
"""

from __future__ import annotations

import threading
import time
import weakref
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.cache import DEFAULT_TENANT, AccountCache, CacheStats
from repro.api.persistence import load_account as _load_account
from repro.api.persistence import persist_account as _persist_account
from repro.api.requests import ProtectionRequest
from repro.api.results import ProtectionResult, ScoreCard
from repro.core.generation import build_protected_account
from repro.core.hiding import STRATEGY_NAIVE, naive_protected_account
from repro.core.multi import build_multi_privilege_account, merge_accounts
from repro.core.opacity import (
    DEFAULT_ADVERSARY,
    AttackerModel,
    OpacityViewCache,
    opacity_report,
)
from repro.core.policy import ReleasePolicy
from repro.core.privileges import Privilege
from repro.core.protected_account import ProtectedAccount
from repro.core.utility import utility_report
from repro.exceptions import (
    EdgeNotFoundError,
    NodeNotFoundError,
    ProtectionError,
    StoreError,
)
from repro.graph.deltas import DeltaBus, view_maintenance_stats
from repro.graph.model import EdgeKey, NodeId, PropertyGraph
from repro.store.engine import GraphStore

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.api.checkpoints import RestoreReport

#: Anything `protect()` accepts as its request argument.
RequestLike = Union[ProtectionRequest, object]

#: Upper bound on cached visible-walk registries *per graph*; versioned keys
#: mean stale entries are never *wrong*, just dead weight, so the bound only
#: caps memory.
_WALK_CACHE_LIMIT = 32

#: Upper bound on the number of graphs the service keeps walk registries for.
#: Cross-graph batches are grouped by graph, so eviction never causes
#: recompilation within one batch.
_WALK_GRAPH_LIMIT = 16


class ProtectionService:
    """One graph + one policy behind the protect → score → enforce API.

    Parameters
    ----------
    graph:
        The original graph ``G`` the service protects.  ``None`` creates a
        multi-graph service: every request must then carry its own
        ``graph`` (the mode cross-graph batch serving uses).
    policy:
        The provider's :class:`~repro.core.policy.ReleasePolicy`.
    store:
        Optional :class:`~repro.store.engine.GraphStore` accounts are
        persisted to (requests with ``persist_as`` require it).
    adversary:
        Default attacker model for opacity scoring; individual requests may
        override it.  ``None`` selects the paper's advanced adversary.
    cache:
        The :class:`~repro.api.cache.AccountCache` results are memoised in.
        ``None`` (default) gives the service a private cache; a
        :class:`~repro.api.registry.ServiceRegistry` passes one shared,
        tenant-namespaced cache to every service it creates.
    tenant:
        The cache namespace this service reads and writes
        (``"default"`` outside a registry).
    quota:
        Optional per-tenant quota object (anything with a
        ``charge_request()`` method, e.g.
        :class:`~repro.api.registry.TenantQuota`); charged once per
        ``protect()`` call, cache hit or miss.
    retry:
        Optional :class:`~repro.reliability.retry.RetryPolicy` (anything
        with ``call(fn)``) applied around the service's own store
        round-trips — persist, load, checkpoint, restore — so a transient
        I/O fault degrades to a retried operation instead of a failed
        request.  ``None`` runs each operation exactly once.
    """

    def __init__(
        self,
        graph: Optional[PropertyGraph],
        policy: ReleasePolicy,
        *,
        store: Optional[GraphStore] = None,
        adversary: Optional[AttackerModel] = None,
        cache: Optional[AccountCache] = None,
        tenant: str = DEFAULT_TENANT,
        quota: Optional[object] = None,
        retry: Optional[object] = None,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self.store = store
        self.adversary = adversary
        self.cache = cache if cache is not None else AccountCache()
        self.tenant = tenant
        self.quota = quota
        self.retry = retry
        #: The report of the last :meth:`restore` call (surfaced in
        #: :meth:`health`); ``None`` until a restore runs.
        self.last_restore: Optional[object] = None
        #: Optional serving-stats provider (a zero-argument callable set by
        #: the HTTP frontend): per-tenant admission counters, queue depths
        #: and live session counts, surfaced under ``health()["serving"]``
        #: so ``/v1/health`` needs no side channels.
        self.serving: Optional[Callable[[], Dict[str, Any]]] = None
        #: Per-graph visible-walk registries shared across requests
        #: (see :meth:`protect_many`), keyed by graph identity.
        self._walks_caches: Dict[int, Dict[tuple, object]] = {}
        #: Compiled adversary simulations keyed by (account graph, adversary):
        #: repeated :meth:`score` calls over the same account — including
        #: accounts replayed from the account cache — never re-simulate.
        self._opacity_views = OpacityViewCache()
        #: Serialises account generation: the compiled-view cache on the
        #: policy and the walk registries are shared mutable state, so a
        #: service used from many threads generates one account at a time
        #: (cache hits never take this lock).
        self._generation_lock = threading.RLock()
        #: The delta fan-out: every graph the service serves gets attached
        #: (which *enables that graph's delta log for good* — a deliberate
        #: trade: served graphs pay one event object per mutation so graph
        #: edits translate into delta-scoped invalidation — prompt
        #: account-cache eviction, opacity-view patching, compiled-view
        #: catch-up — instead of blanket version checks and recompiles).
        self.delta_bus = DeltaBus()
        # The journal is what service checkpoints stamp; enabling it up
        # front costs one bounded deque and makes every service restorable.
        self.delta_bus.enable_journal()
        self.delta_bus.subscribe(self.cache.on_delta)
        self.delta_bus.subscribe(self._opacity_views.on_delta)
        self._attached_graphs: Dict[int, Tuple["weakref.ref[PropertyGraph]", int]] = {}
        if graph is not None:
            self._attach_graph(graph)

    # ------------------------------------------------------------------ #
    # protect
    # ------------------------------------------------------------------ #
    def protect(
        self,
        request: Optional[RequestLike] = None,
        *,
        privilege: Optional[object] = None,
        privileges: Optional[Sequence[object]] = None,
        **options: object,
    ) -> ProtectionResult:
        """Run one protection request end to end.

        Accepts a full :class:`~repro.api.requests.ProtectionRequest`, a bare
        privilege (``service.protect(privilege="High-2")`` or positionally
        ``service.protect("High-2")``), or keyword options that build a
        request on the fly.  Returns a
        :class:`~repro.api.results.ProtectionResult`.

        Identical requests against an unmodified (graph, policy) pair are
        served from the account cache; ``result.timings_ms["cache_hit"]``
        tells which path answered, and ``cache_hits`` / ``cache_misses``
        carry the tenant's cumulative counters.
        """
        request = self._coerce_request(request, privilege, privileges, options)
        return self._execute(request)

    def _execute(self, request: ProtectionRequest) -> ProtectionResult:
        """Serve one already-coerced request (privileges resolved)."""
        graph = self._effective_graph(request)
        if self.quota is not None:
            self.quota.charge_request()
        adversary = request.adversary if request.adversary is not None else self.adversary
        fingerprint = request.cache_fingerprint(adversary=adversary)

        timings: Dict[str, float] = {}
        if fingerprint is not None and request.use_cache:
            start = time.perf_counter()
            cached = self.cache.lookup(self.tenant, graph, self.policy, fingerprint)
            lookup_ms = (time.perf_counter() - start) * 1000.0
            if cached is not None:
                timings["cache_lookup"] = lookup_ms
                timings["total"] = lookup_ms
                result = ProtectionResult(
                    request=request,
                    account=cached.account,
                    scores=cached.scores,
                    timings_ms=timings,
                    stored_as=None,
                )
                self._stamp_cache_stats(timings, hit=True)
                return result

        start = time.perf_counter()
        account = self._build_account(request, graph)
        timings["generate"] = (time.perf_counter() - start) * 1000.0

        scores: Optional[ScoreCard] = None
        if request.score:
            start = time.perf_counter()
            scores = self.score(
                account,
                graph=graph,
                adversary=request.adversary,
                opacity_edges=request.default_opacity_edges(),
                normalize_focus=request.normalize_focus,
                explicit_scores=request.explicit_scores,
            )
            timings["score"] = (time.perf_counter() - start) * 1000.0

        stored_as: Optional[str] = None
        if request.persist_as is not None:
            start = time.perf_counter()
            stored_as = self.persist(account, name=request.persist_as)
            timings["persist"] = (time.perf_counter() - start) * 1000.0

        timings["total"] = sum(timings.values())
        if scores is not None:
            # Stamped after "total": the opacity_compile/opacity_score split
            # is already inside the "score" phase, so it must never inflate
            # the phase sum.
            timings.update(scores.timings_ms)
        result = ProtectionResult(
            request=request,
            account=account,
            scores=scores,
            timings_ms=timings,
            stored_as=stored_as,
        )
        if fingerprint is not None:
            # Store a copy whose request drops the per-request graph: the
            # entry's weakref identity check covers the graph, and a strong
            # reference here would pin swept-over batch graphs in memory for
            # the entry's whole LRU lifetime.
            memoised = ProtectionResult(
                request=request.with_options(graph=None),
                account=account,
                scores=scores,
                timings_ms={},
                stored_as=None,
            )
            self.cache.store(self.tenant, graph, self.policy, fingerprint, memoised)
            self._stamp_cache_stats(timings, hit=False)
        return result

    def protect_many(
        self,
        requests: Iterable[RequestLike],
        *,
        parallel: Optional[int] = None,
        pool: Optional[object] = None,
    ) -> List[ProtectionResult]:
        """Run several requests, sharing compiled state between them.

        Each element may be a full request or a bare privilege, and requests
        may target different graphs (via ``ProtectionRequest(graph=...)``).
        The batch is grouped by target graph before execution, so each
        (graph, policy, privilege) combination compiles its marking view and
        visible-walk cache **exactly once per batch** even when the batch
        spans more graphs than the bounded compiled-view cache holds.
        Results come back in the order the requests were given.

        Compiled marking views are cached on the policy (one per privilege,
        reused until the graph or policy mutates) and visible-set walk
        caches are shared through the service, so asking for the same
        consumer class twice — or for N classes over one graph — never
        recompiles.  The exception is requests with ``protect_edges``: those
        generate on a scoped one-shot policy copy whose compiled state dies
        with the request, so only their issuing convenience is batched.

        ``parallel=N`` (or an explicit ``pool=``, a
        :class:`~repro.parallel.pool.WorkerPool`) shards the cold
        fingerprint groups across worker processes: each (graph, policy,
        privilege) compiles exactly once on exactly one worker, results
        merge back through the checkpoint payload codec so this service
        ends warm, and the returned accounts/scores are bit-identical to
        the serial execution.  Requests the pool cannot express — custom
        adversaries, ``persist_as`` side effects, already-cached
        fingerprints — run inline on this process, so mixing them into a
        parallel batch is safe.
        """
        coerced: List[ProtectionRequest] = [
            self._coerce_request(request, None, None, {}) for request in requests
        ]
        owned_pool = None
        if pool is None and parallel is not None and parallel > 1 and len(coerced) > 1:
            from repro.parallel import WorkerPool

            pool = owned_pool = WorkerPool(parallel)
        try:
            if pool is not None and coerced:
                sharded = self._protect_many_parallel(coerced, pool)
                if sharded is not None:
                    return sharded
            # Group by target graph (first-appearance order), keeping each
            # request's original position so the result list lines up.
            groups: Dict[int, List[Tuple[int, ProtectionRequest]]] = {}
            for position, request in enumerate(coerced):
                graph = self._effective_graph(request)
                groups.setdefault(id(graph), []).append((position, request))
            results: List[Optional[ProtectionResult]] = [None] * len(coerced)
            for group in groups.values():
                for position, request in group:
                    results[position] = self._execute(request)
            return [result for result in results if result is not None]
        finally:
            if owned_pool is not None:
                owned_pool.shutdown()

    def _protect_many_parallel(
        self, coerced: List[ProtectionRequest], pool: object
    ) -> Optional[List[ProtectionResult]]:
        """Shard a coerced batch across ``pool``; ``None`` → use the serial path.

        Positions are classified once, with no side effects, into three
        lanes: *dispatched* (cold, wire-expressible fingerprint groups —
        exactly one representative per (graph, fingerprint) ships to a
        worker), *inline* (unshippable or already cached), and *deferred*
        (duplicate fingerprints, replayed after the merge so they hit the
        freshly warmed cache exactly like the serial execution's duplicate
        hits).  The whole shard-merge cycle holds the generation lock: the
        graph and policy must not mutate between packing a task and
        merging its compiled views back.

        Returns ``None`` when sharding cannot help — a service-level
        custom adversary the wire cannot carry, or fewer than two
        dispatchable requests.
        """
        from repro.parallel import tasks as worker_tasks
        from repro.parallel import wire

        adversary_spec = wire.pack_adversary(self.adversary)
        if adversary_spec is None:
            return None
        with self._generation_lock:
            graph_by_id: Dict[int, PropertyGraph] = {}
            inline: List[int] = []
            deferred: List[int] = []
            seen_groups: Dict[Tuple[int, object], int] = {}
            shard: Dict[int, List[Tuple[int, ProtectionRequest, Dict[str, Any]]]] = {}
            for position, request in enumerate(coerced):
                graph = self._effective_graph(request)
                graph_by_id[id(graph)] = graph
                adversary = (
                    request.adversary if request.adversary is not None else self.adversary
                )
                fingerprint = request.cache_fingerprint(adversary=adversary)
                spec = wire.pack_request(request) if fingerprint is not None else None
                if spec is None:
                    inline.append(position)
                    continue
                if request.use_cache:
                    if self.cache.contains(self.tenant, graph, self.policy, fingerprint):
                        inline.append(position)
                        continue
                    group_key = (id(graph), fingerprint)
                    if group_key in seen_groups:
                        deferred.append(position)
                        continue
                    seen_groups[group_key] = position
                shard.setdefault(id(graph), []).append((position, request, spec))
            if not shard:
                return None

            # Quota parity with the serial loop: every dispatched position
            # charges one request up front (inline/deferred positions charge
            # inside _execute).
            if self.quota is not None:
                for entries in shard.values():
                    for _ in entries:
                        self.quota.charge_request()

            policy_payload = wire.pack_policy(self.policy)
            tasks: List[Tuple[Dict[str, Any], List[Tuple[int, ProtectionRequest]], PropertyGraph]] = []
            for graph_id, entries in shard.items():
                graph = graph_by_id[graph_id]
                graph_payload = wire.pack_graph(graph)
                chunk_count = min(getattr(pool, "workers", 1), len(entries))
                for index in range(chunk_count):
                    chunk = entries[index::chunk_count]
                    tasks.append(
                        (
                            {
                                "graph": graph_payload,
                                "policy": policy_payload,
                                "adversary": adversary_spec,
                                "requests": [spec for (_, _, spec) in chunk],
                            },
                            [(pos, req) for (pos, req, _) in chunk],
                            graph,
                        )
                    )
            outcomes = pool.map(
                worker_tasks.protect_shard, [payload for payload, _, _ in tasks]
            )

            results: List[Optional[ProtectionResult]] = [None] * len(coerced)
            for (_, positions, graph), outcome in zip(tasks, outcomes):
                for (position, request), result_payload in zip(
                    positions, outcome["results"]
                ):
                    adversary = (
                        request.adversary
                        if request.adversary is not None
                        else self.adversary
                    )
                    start = time.perf_counter()
                    merged, _worker_timings = wire.merge_group_result(
                        self, graph, request, result_payload, adversary
                    )
                    timings = dict(merged.timings_ms)
                    timings["pool_merge"] = (time.perf_counter() - start) * 1000.0
                    fingerprint = request.cache_fingerprint(adversary=adversary)
                    if fingerprint is not None:
                        memoised = ProtectionResult(
                            request=request.with_options(graph=None),
                            account=merged.account,
                            scores=merged.scores,
                            timings_ms={},
                            stored_as=None,
                        )
                        self.cache.store(
                            self.tenant, graph, self.policy, fingerprint, memoised
                        )
                        self._stamp_cache_stats(timings, hit=False)
                    results[position] = ProtectionResult(
                        request=request,
                        account=merged.account,
                        scores=merged.scores,
                        timings_ms=timings,
                        stored_as=None,
                    )
            # Inline lanes run last: deferred duplicates now hit the warmed
            # cache and return the same memoised account object the serial
            # execution's duplicate hits would have shared.
            for position in inline:
                results[position] = self._execute(coerced[position])
            for position in deferred:
                results[position] = self._execute(coerced[position])
        return [result for result in results if result is not None]

    def warm_opacity_views(
        self,
        account_graphs: Iterable[PropertyGraph],
        *,
        adversary: Optional[AttackerModel] = None,
        parallel: Optional[int] = None,
        pool: Optional[object] = None,
    ) -> int:
        """Pre-compile opacity simulations, fanning one task per graph.

        Each (account graph, adversary) pair not already in the view cache
        is simulated — on worker processes when ``parallel``/``pool`` is
        given and the adversary is wire-expressible, inline otherwise —
        and seeded into :attr:`_opacity_views`, so subsequent
        :meth:`score` calls run **zero** simulations.  The seeded views
        are rebuilt from the exact-Fraction checkpoint payload, so scores
        computed against them are bit-identical to a local compile.
        Returns the number of views compiled.
        """
        from repro.api.checkpoints import _opacity_view_from_dict
        from repro.parallel import tasks as worker_tasks
        from repro.parallel import wire

        chosen = adversary if adversary is not None else self.adversary
        effective = chosen if chosen is not None else DEFAULT_ADVERSARY
        targets = [
            graph
            for graph in account_graphs
            if self._opacity_views.peek(graph, effective) is None
        ]
        if not targets:
            return 0
        spec = wire.pack_adversary(chosen)
        owned_pool = None
        if pool is None and parallel is not None and parallel > 1 and len(targets) > 1:
            from repro.parallel import WorkerPool

            pool = owned_pool = WorkerPool(parallel)
        try:
            if pool is None or spec is None or len(targets) < 2:
                for graph in targets:
                    self._opacity_views.get_or_compile(graph, effective)
                return len(targets)
            payloads = [
                {"name": graph.name, "graph": wire.pack_graph(graph), "adversary": spec}
                for graph in targets
            ]
            outcomes = pool.map(worker_tasks.opacity_shard, payloads)
            for graph, outcome in zip(targets, outcomes):
                view = _opacity_view_from_dict(outcome["view"], graph, chosen)
                self._opacity_views.seed(graph, effective, view)
            return len(targets)
        finally:
            if owned_pool is not None:
                owned_pool.shutdown()

    def is_cached(self, request: RequestLike) -> bool:
        """Whether this request would answer from the account cache right now.

        A non-counting peek (LRU order and hit/miss statistics are
        untouched), used by routing layers — the HTTP server sends cold
        compiles to its worker pool and keeps cached replays on the
        event-loop executor.  ``False`` for uncacheable requests
        (``persist_as``, unhashable adversaries, ``use_cache=False``).
        """
        coerced = self._coerce_request(request, None, None, {})
        if not coerced.use_cache:
            return False
        adversary = (
            coerced.adversary if coerced.adversary is not None else self.adversary
        )
        fingerprint = coerced.cache_fingerprint(adversary=adversary)
        if fingerprint is None:
            return False
        graph = self._effective_graph(coerced)
        return self.cache.contains(self.tenant, graph, self.policy, fingerprint)

    def protect_all_classes(self) -> Dict[str, ProtectionResult]:
        """One scored result per declared privilege, keyed by privilege name."""
        results: Dict[str, ProtectionResult] = {}
        for privilege in self.policy.lattice.privileges():
            results[privilege.name] = self.protect(privilege=privilege)
        return results

    # ------------------------------------------------------------------ #
    # score
    # ------------------------------------------------------------------ #
    def score(
        self,
        account: ProtectedAccount,
        *,
        graph: Optional[PropertyGraph] = None,
        adversary: Optional[AttackerModel] = None,
        opacity_edges: Optional[Iterable[EdgeKey]] = None,
        normalize_focus: bool = False,
        explicit_scores: Optional[Mapping[NodeId, float]] = None,
    ) -> ScoreCard:
        """Utility and opacity of ``account`` against the service's graph.

        ``graph`` overrides the service's bound graph (used when scoring an
        account generated from a per-request graph in a cross-graph batch).

        Opacity runs on the compiled engine: when (and only when) a scored
        edge actually needs inference, the adversary simulation is fetched
        from (or compiled into) the service's
        :class:`~repro.core.opacity.OpacityViewCache`, after which every
        edge is O(1).  The returned ScoreCard's ``timings_ms`` records the
        split as ``opacity_compile`` / ``opacity_score``; repeated calls for
        the same account graph and adversary hit the view cache and run
        **zero** additional simulations (``opacity_compile`` is 0.0 when no
        simulation was needed at all).
        """
        graph = graph if graph is not None else self.graph
        if graph is None:
            raise ProtectionError(
                "this service has no bound graph; pass score(..., graph=...)"
            )
        adversary = adversary if adversary is not None else self.adversary
        effective_adversary = adversary if adversary is not None else DEFAULT_ADVERSARY
        compile_ms = 0.0

        # A merged multi-privilege account and its sub-accounts form one
        # derivation family: whichever member compiled its adversary
        # simulation first seeds the others (zero further simulations).
        derive_from = tuple(
            peer.graph for peer in account.derivation_peers if peer is not account
        )

        def view_factory():
            """Fetch/compile the simulation through the view cache, timed."""
            nonlocal compile_ms
            start = time.perf_counter()
            view = self._opacity_views.get_or_compile(
                account.graph, effective_adversary, derive_from=derive_from
            )
            compile_ms += (time.perf_counter() - start) * 1000.0
            return view

        utility = utility_report(graph, account, explicit_scores=explicit_scores)
        start = time.perf_counter()
        opacity = opacity_report(
            graph,
            account,
            opacity_edges,
            adversary=effective_adversary,
            normalize_focus=normalize_focus,
            view_factory=view_factory,
        )
        score_ms = (time.perf_counter() - start) * 1000.0 - compile_ms
        return ScoreCard(
            utility=utility,
            opacity=opacity,
            timings_ms={"opacity_compile": compile_ms, "opacity_score": score_ms},
        )

    # ------------------------------------------------------------------ #
    # edit
    # ------------------------------------------------------------------ #
    def edit(
        self,
        privilege: object,
        *,
        adversary: Optional[AttackerModel] = None,
        normalize_focus: bool = False,
        name: Optional[str] = None,
    ) -> "EditSession":
        """An interactive mutate → re-protect → re-score session.

        Returns an :class:`~repro.api.editing.EditSession` bound to the
        service's graph and one consumer class.  Mutate the graph (through
        the session's proxies or directly), then :meth:`~repro.api.editing.
        EditSession.commit` — the session patches the compiled marking
        view, the visible-walk cache, the protected account and the
        compiled opacity view through the recorded deltas in O(affected)
        and re-scores off the patched state, falling back to a counted full
        rebuild for deltas that cannot be patched soundly.  Timings carry
        the split as ``delta_apply`` / ``recompile_fallback``.
        """
        from repro.api.editing import EditSession

        if self.graph is None:
            raise ProtectionError("a multi-graph service cannot edit; bind a graph")
        return EditSession(
            self,
            privilege,
            adversary=adversary,
            normalize_focus=normalize_focus,
            name=name,
        )

    # ------------------------------------------------------------------ #
    # cache introspection
    # ------------------------------------------------------------------ #
    def cache_stats(self) -> CacheStats:
        """This service's tenant-namespace counters from the account cache."""
        return self.cache.stats(self.tenant)

    def view_maintenance_stats(self) -> Dict[str, Dict[str, int]]:
        """Process-wide incremental-maintenance counters (convenience).

        See :func:`repro.graph.deltas.view_maintenance_stats`: per
        maintainer (marking views, opacity views, walk caches, account
        cache, edit sessions), how often the delta path vs the full
        recompile/rebuild path ran.
        """
        return view_maintenance_stats()

    # ------------------------------------------------------------------ #
    # enforce
    # ------------------------------------------------------------------ #
    def enforce(self, *, controller: Optional[object] = None) -> "QueryEnforcer":
        """A session-scoped query enforcer over this service's accounts.

        The enforcer generates (and caches) each consumer's account through
        the service, so enforcement and ad-hoc protection share compiled
        views.  ``controller`` is an optional
        :class:`~repro.security.authorization.AccessController`.
        """
        from repro.security.enforcement import QueryEnforcer

        if self.graph is None:
            raise ProtectionError("a multi-graph service cannot hand out enforcers; bind a graph")
        return QueryEnforcer(self.graph, self.policy, controller=controller, service=self)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def persist(
        self,
        result_or_account: Union[ProtectionResult, ProtectedAccount],
        *,
        name: Optional[str] = None,
        store: Optional[GraphStore] = None,
    ) -> str:
        """Store an account (or a result's account) in the graph store.

        When the service carries a tenant quota with a graph budget
        (:class:`~repro.api.registry.TenantQuota`), the budget is checked
        before the write.
        """
        store = store if store is not None else self.store
        if store is None:
            raise StoreError(
                "ProtectionService has no store; pass store= to persist() or the constructor"
            )
        account = (
            result_or_account.account
            if isinstance(result_or_account, ProtectionResult)
            else result_or_account
        )
        if name is None:
            name = account.graph.name
        if not name:
            raise StoreError("a persisted account needs a name")
        guard = getattr(self.quota, "persist_guard", None)
        if guard is not None:
            with guard(store, name):
                return self._durable(lambda: _persist_account(store, account, name))
        return self._durable(lambda: _persist_account(store, account, name))

    def load_account(
        self, name: str, *, store: Optional[GraphStore] = None
    ) -> ProtectedAccount:
        """Reload a persisted account; privileges resolve via the service's lattice."""
        store = store if store is not None else self.store
        if store is None:
            raise StoreError(
                "ProtectionService has no store; pass store= to load_account() or the constructor"
            )
        return self._durable(
            lambda: _load_account(store, name, lattice=self.policy.lattice)
        )

    # ------------------------------------------------------------------ #
    # checkpoints (warm restarts)
    # ------------------------------------------------------------------ #
    def checkpoint(
        self,
        result: ProtectionResult,
        *,
        name: str = "service",
        store: Optional[GraphStore] = None,
    ) -> Path:
        """Checkpoint one served result so a restarted service resumes warm.

        Snapshots the store (truncating its write log behind a sequence
        marker), then writes the compiled marking view, the account (as a
        diff against the original graph), the full ScoreCard and the
        compiled adversary simulation next to it.  A future service over
        the recovered graph calls :meth:`restore` to skip the O(V+E)
        recompile.  Requires a durable store.  Returns the checkpoint path.
        """
        from repro.api.checkpoints import write_checkpoint

        return self._durable(
            lambda: write_checkpoint(self, result, store=store, name=name)
        )

    def restore(
        self,
        *,
        name: str = "service",
        store: Optional[GraphStore] = None,
    ) -> "RestoreReport":
        """Resume from the named checkpoint (plus write-log delta catch-up).

        Never raises on a missing or damaged checkpoint: corruption is
        quarantined and the returned
        :class:`~repro.api.checkpoints.RestoreReport` comes back ``cold`` —
        the service simply recompiles on first use, which is graceful
        degradation, not failure.  The report is also kept on
        :attr:`last_restore` and surfaced in :meth:`health`.
        """
        from repro.api.checkpoints import restore_service

        report = restore_service(self, store=store, name=name)
        self.last_restore = report
        return report

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        """One dict describing the serving stack's condition.

        ``status`` is ``"ok"`` or ``"degraded"`` — degraded means the
        service is serving correctly but something needed intervention:
        recovery quarantined corrupt state, the write log lost a torn tail,
        retries were exhausted, or the last restore fell back to cold.
        ``issues`` lists the reasons; the remaining keys are per-component
        detail (store, caches, delta bus, retry counters).  When the HTTP
        frontend owns this service, ``serving`` carries its live admission
        counters (in-flight requests, queue depth, per-tenant admission
        stats) and edit-session count; it is ``None`` for an in-process
        service.
        """
        issues: List[str] = []
        store_health: Optional[Dict[str, Any]] = None
        if self.store is not None:
            store_health = self.store.health()
            recovery = store_health.get("recovery") or {}
            if recovery.get("quarantined"):
                issues.append(
                    f"store recovery quarantined {recovery['quarantined']} corrupt snapshot(s)"
                )
            if recovery.get("wal_torn_bytes"):
                issues.append(
                    f"write log lost {recovery['wal_torn_bytes']} torn byte(s) on recovery"
                )
            if not recovery.get("clean", True):
                issues.append("store recovery replayed the write log")
        retry_stats = getattr(self.retry, "stats", lambda: None)()
        if retry_stats and (retry_stats.get("exhausted") or retry_stats.get("deadline_hits")):
            issues.append("retries were exhausted for at least one operation")
        restore_report = self.last_restore
        if restore_report is not None and getattr(restore_report, "mode", "cold") == "cold":
            issues.append(f"last restore was cold: {getattr(restore_report, 'reason', '')}")
        return {
            "status": "degraded" if issues else "ok",
            "issues": issues,
            "tenant": self.tenant,
            "graph": (
                {
                    "name": self.graph.name,
                    "nodes": len(self.graph.node_ids()),
                    "edges": len(self.graph.edge_keys()),
                    "version": self.graph.version,
                }
                if self.graph is not None
                else None
            ),
            "cache": self.cache.stats(self.tenant).as_dict(),
            "opacity_views": len(self._opacity_views),
            "delta_bus": {
                "listeners": len(self.delta_bus),
                **self.delta_bus.journal_stats(),
            },
            "store": store_health,
            "retry": retry_stats,
            "serving": self.serving() if self.serving is not None else None,
            "last_restore": (
                restore_report.as_dict() if restore_report is not None else None
            ),
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _durable(self, operation: Callable[[], Any]) -> Any:
        """Run one store round-trip, through the retry policy when configured."""
        if self.retry is None:
            return operation()
        return self.retry.call(operation)

    def _attach_graph(self, graph: PropertyGraph) -> None:
        """Attach the delta bus to a graph the service serves (idempotent).

        The graph-side subscription holds the bus weakly, so attaching
        request graphs never extends the service's lifetime beyond its
        owner's.  The token map verifies graph identity through a weakref,
        so a recycled ``id()`` can neither skip an attach nor double one.
        """
        key = id(graph)
        entry = self._attached_graphs.get(key)
        if entry is not None and entry[0]() is graph:
            return
        if len(self._attached_graphs) >= 4 * _WALK_GRAPH_LIMIT:
            self._attached_graphs = {
                existing_key: existing
                for existing_key, existing in self._attached_graphs.items()
                if existing[0]() is not None
            }
        self._attached_graphs[key] = (weakref.ref(graph), self.delta_bus.attach(graph))

    def _effective_graph(self, request: ProtectionRequest) -> PropertyGraph:
        """The graph this request runs against (request override or bound)."""
        graph = request.graph if request.graph is not None else self.graph
        if graph is None:
            raise ProtectionError(
                "this service has no bound graph; requests must carry graph="
            )
        self._attach_graph(graph)
        return graph

    def _stamp_cache_stats(self, timings: Dict[str, float], *, hit: bool) -> None:
        """Surface the tenant's cache counters in a result's timings map.

        Stamped *after* ``timings["total"]`` is computed so the counters
        never inflate the phase sum.
        """
        stats = self.cache.stats(self.tenant)
        timings["cache_hit"] = 1.0 if hit else 0.0
        timings["cache_hits"] = float(stats.hits)
        timings["cache_misses"] = float(stats.misses)

    def _coerce_request(
        self,
        request: Optional[RequestLike],
        privilege: Optional[object],
        privileges: Optional[Sequence[object]],
        options: Mapping[str, object],
    ) -> ProtectionRequest:
        if request is not None and not isinstance(request, ProtectionRequest):
            # A bare privilege (or privilege name) passed positionally.
            if privilege is not None or privileges is not None:
                raise TypeError(
                    "pass either a positional privilege or privilege=/privileges=, not both"
                )
            request = ProtectionRequest(privileges=(request,), **options)  # type: ignore[arg-type]
        elif request is None:
            if privilege is not None and privileges is not None:
                raise TypeError("pass either privilege= or privileges=, not both")
            selected: Tuple[object, ...]
            if privilege is not None:
                selected = (privilege,)
            elif privileges is not None:
                selected = tuple(privileges)
            else:
                raise TypeError("protect() needs a request, privilege= or privileges=")
            request = ProtectionRequest(privileges=selected, **options)  # type: ignore[arg-type]
        elif options or privilege is not None or privileges is not None:
            raise TypeError("pass either a ProtectionRequest or keyword options, not both")
        resolved = tuple(self.policy.lattice.get(item) for item in request.privileges)
        return request.with_options(privileges=resolved)

    def _walks_registry(self, graph: PropertyGraph) -> Dict[tuple, object]:
        """The visible-walk registry for one graph (bounded, oldest evicted).

        Keyed by graph identity; a recycled ``id()`` is harmless because
        :func:`~repro.core.generation.build_protected_account` verifies each
        cached walk's graph identity before trusting it.
        """
        key = id(graph)
        registry = self._walks_caches.get(key)
        if registry is None:
            if len(self._walks_caches) >= _WALK_GRAPH_LIMIT:
                self._walks_caches.pop(next(iter(self._walks_caches)))
            registry = {}
            self._walks_caches[key] = registry
        return registry

    def _build_account(
        self, request: ProtectionRequest, graph: PropertyGraph
    ) -> ProtectedAccount:
        privileges: Tuple[Privilege, ...] = request.privileges  # type: ignore[assignment]
        with self._generation_lock:
            if request.strategy == STRATEGY_NAIVE:
                accounts = [
                    naive_protected_account(graph, self.policy, privilege)
                    for privilege in privileges
                ]
                if len(accounts) == 1:
                    return accounts[0]
                return merge_accounts(graph, accounts, name=request.name)

            policy = self.policy
            walks_cache: Optional[Dict[tuple, object]] = self._walks_registry(graph)
            if request.protect_edges:
                self._check_edges_exist(request.protect_edges, graph)
                policy = self.policy.copy()
                for privilege in privileges:
                    policy.protect_edges(
                        list(request.protect_edges), privilege, strategy=request.strategy
                    )
                # A scoped one-shot policy gets no shared walk cache: its
                # markings die with this request.
                walks_cache = None
            elif len(walks_cache) > _WALK_CACHE_LIMIT:
                walks_cache.clear()

            if len(privileges) > 1:
                return build_multi_privilege_account(
                    graph,
                    policy,
                    privileges,
                    ensure_maximal_connectivity=request.repair_connectivity,
                    strategy=request.strategy,
                    name=request.name,
                    walks_cache=walks_cache,
                )
            return build_protected_account(
                graph,
                policy,
                privileges[0],
                include_surrogate_edges=request.include_surrogate_edges,
                ensure_maximal_connectivity=request.repair_connectivity,
                strategy=request.strategy,
                name=request.name,
                compiled=request.compiled,
                walks_cache=walks_cache,
            )

    def _check_edges_exist(
        self, edges: Tuple[EdgeKey, ...], graph: PropertyGraph
    ) -> None:
        """Protecting an edge that is not in the graph is a caller error."""
        for source, target in edges:
            if not graph.has_node(source):
                raise NodeNotFoundError(source)
            if not graph.has_node(target):
                raise NodeNotFoundError(target)
            if not graph.has_edge(source, target):
                raise EdgeNotFoundError(source, target)
