"""The :class:`ProtectionService` facade: protect → score → enforce, one API.

The paper's workflow — mark a graph, generate a protected account per
privilege, score its utility and opacity, answer queries through it — used
to be assembled by hand at every call site.  The service binds one graph and
one release policy and exposes the whole workflow behind an explicit
request/response object model:

* :meth:`ProtectionService.protect` — one
  :class:`~repro.api.requests.ProtectionRequest` in, one
  :class:`~repro.api.results.ProtectionResult` (account + ScoreCard +
  timings) out;
* :meth:`ProtectionService.protect_many` — batched generation that shares
  the compiled per-privilege marking views and the visible-set walk caches
  across requests (no recompilation between requests for the same class);
* :meth:`ProtectionService.score` — the ScoreCard of any account against
  the bound graph;
* :meth:`ProtectionService.enforce` — a session-scoped
  :class:`~repro.security.enforcement.QueryEnforcer` answering lineage
  queries through the service's accounts;
* :meth:`ProtectionService.persist` / :meth:`ProtectionService.load_account`
  — round-trip accounts through an embedded
  :class:`~repro.store.engine.GraphStore`.

Example
-------
>>> from repro.api import ProtectionService
>>> from repro.core.policy import ReleasePolicy
>>> from repro.core.privileges import PrivilegeLattice
>>> from repro.graph.builders import GraphBuilder
>>> graph = GraphBuilder("demo").chain(["a", "b", "c"]).build()
>>> service = ProtectionService(graph, ReleasePolicy(PrivilegeLattice()))
>>> result = service.protect(privilege="Public")
>>> result.scores.path_utility
1.0
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.persistence import load_account as _load_account
from repro.api.persistence import persist_account as _persist_account
from repro.api.requests import ProtectionRequest
from repro.api.results import ProtectionResult, ScoreCard
from repro.core.generation import build_protected_account
from repro.core.hiding import STRATEGY_NAIVE, naive_protected_account
from repro.core.multi import build_multi_privilege_account, merge_accounts
from repro.core.opacity import AttackerModel, opacity_report
from repro.core.policy import ReleasePolicy
from repro.core.privileges import Privilege
from repro.core.protected_account import ProtectedAccount
from repro.core.utility import utility_report
from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, StoreError
from repro.graph.model import EdgeKey, NodeId, PropertyGraph
from repro.store.engine import GraphStore

#: Anything `protect()` accepts as its request argument.
RequestLike = Union[ProtectionRequest, object]

#: Upper bound on cached visible-walk registries; versioned keys mean stale
#: entries are never *wrong*, just dead weight, so the bound only caps memory.
_WALK_CACHE_LIMIT = 32


class ProtectionService:
    """One graph + one policy behind the protect → score → enforce API.

    Parameters
    ----------
    graph:
        The original graph ``G`` the service protects.
    policy:
        The provider's :class:`~repro.core.policy.ReleasePolicy`.
    store:
        Optional :class:`~repro.store.engine.GraphStore` accounts are
        persisted to (requests with ``persist_as`` require it).
    adversary:
        Default attacker model for opacity scoring; individual requests may
        override it.  ``None`` selects the paper's advanced adversary.
    """

    def __init__(
        self,
        graph: PropertyGraph,
        policy: ReleasePolicy,
        *,
        store: Optional[GraphStore] = None,
        adversary: Optional[AttackerModel] = None,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self.store = store
        self.adversary = adversary
        #: Visible-walk registries shared across requests (see protect_many).
        self._walks_cache: Dict[tuple, object] = {}

    # ------------------------------------------------------------------ #
    # protect
    # ------------------------------------------------------------------ #
    def protect(
        self,
        request: Optional[RequestLike] = None,
        *,
        privilege: Optional[object] = None,
        privileges: Optional[Sequence[object]] = None,
        **options: object,
    ) -> ProtectionResult:
        """Run one protection request end to end.

        Accepts a full :class:`~repro.api.requests.ProtectionRequest`, a bare
        privilege (``service.protect(privilege="High-2")`` or positionally
        ``service.protect("High-2")``), or keyword options that build a
        request on the fly.  Returns a
        :class:`~repro.api.results.ProtectionResult`.
        """
        request = self._coerce_request(request, privilege, privileges, options)
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        account = self._build_account(request)
        timings["generate"] = (time.perf_counter() - start) * 1000.0

        scores: Optional[ScoreCard] = None
        if request.score:
            start = time.perf_counter()
            scores = self.score(
                account,
                adversary=request.adversary,
                opacity_edges=request.default_opacity_edges(),
                normalize_focus=request.normalize_focus,
                explicit_scores=request.explicit_scores,
            )
            timings["score"] = (time.perf_counter() - start) * 1000.0

        stored_as: Optional[str] = None
        if request.persist_as is not None:
            start = time.perf_counter()
            stored_as = self.persist(account, name=request.persist_as)
            timings["persist"] = (time.perf_counter() - start) * 1000.0

        timings["total"] = sum(timings.values())
        return ProtectionResult(
            request=request,
            account=account,
            scores=scores,
            timings_ms=timings,
            stored_as=stored_as,
        )

    def protect_many(
        self, requests: Iterable[RequestLike]
    ) -> List[ProtectionResult]:
        """Run several requests, sharing compiled state between them.

        Each element may be a full request or a bare privilege.  Compiled
        marking views are cached on the policy (one per privilege, reused
        until the graph or policy mutates) and visible-set walk caches are
        shared through the service, so asking for the same consumer class
        twice — or for N classes over one graph — never recompiles.  The
        exception is requests with ``protect_edges``: those generate on a
        scoped one-shot policy copy whose compiled state dies with the
        request, so only their issuing convenience is batched.
        """
        return [self.protect(request) for request in requests]

    def protect_all_classes(self) -> Dict[str, ProtectionResult]:
        """One scored result per declared privilege, keyed by privilege name."""
        results: Dict[str, ProtectionResult] = {}
        for privilege in self.policy.lattice.privileges():
            results[privilege.name] = self.protect(privilege=privilege)
        return results

    # ------------------------------------------------------------------ #
    # score
    # ------------------------------------------------------------------ #
    def score(
        self,
        account: ProtectedAccount,
        *,
        adversary: Optional[AttackerModel] = None,
        opacity_edges: Optional[Iterable[EdgeKey]] = None,
        normalize_focus: bool = False,
        explicit_scores: Optional[Mapping[NodeId, float]] = None,
    ) -> ScoreCard:
        """Utility and opacity of ``account`` against the service's graph."""
        adversary = adversary if adversary is not None else self.adversary
        return ScoreCard(
            utility=utility_report(self.graph, account, explicit_scores=explicit_scores),
            opacity=opacity_report(
                self.graph,
                account,
                opacity_edges,
                adversary=adversary,
                normalize_focus=normalize_focus,
            ),
        )

    # ------------------------------------------------------------------ #
    # enforce
    # ------------------------------------------------------------------ #
    def enforce(self, *, controller: Optional[object] = None) -> "QueryEnforcer":
        """A session-scoped query enforcer over this service's accounts.

        The enforcer generates (and caches) each consumer's account through
        the service, so enforcement and ad-hoc protection share compiled
        views.  ``controller`` is an optional
        :class:`~repro.security.authorization.AccessController`.
        """
        from repro.security.enforcement import QueryEnforcer

        return QueryEnforcer(self.graph, self.policy, controller=controller, service=self)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def persist(
        self,
        result_or_account: Union[ProtectionResult, ProtectedAccount],
        *,
        name: Optional[str] = None,
        store: Optional[GraphStore] = None,
    ) -> str:
        """Store an account (or a result's account) in the graph store."""
        store = store if store is not None else self.store
        if store is None:
            raise StoreError(
                "ProtectionService has no store; pass store= to persist() or the constructor"
            )
        account = (
            result_or_account.account
            if isinstance(result_or_account, ProtectionResult)
            else result_or_account
        )
        if name is None:
            name = account.graph.name
        if not name:
            raise StoreError("a persisted account needs a name")
        return _persist_account(store, account, name)

    def load_account(
        self, name: str, *, store: Optional[GraphStore] = None
    ) -> ProtectedAccount:
        """Reload a persisted account; privileges resolve via the service's lattice."""
        store = store if store is not None else self.store
        if store is None:
            raise StoreError(
                "ProtectionService has no store; pass store= to load_account() or the constructor"
            )
        return _load_account(store, name, lattice=self.policy.lattice)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _coerce_request(
        self,
        request: Optional[RequestLike],
        privilege: Optional[object],
        privileges: Optional[Sequence[object]],
        options: Mapping[str, object],
    ) -> ProtectionRequest:
        if request is not None and not isinstance(request, ProtectionRequest):
            # A bare privilege (or privilege name) passed positionally.
            if privilege is not None or privileges is not None:
                raise TypeError(
                    "pass either a positional privilege or privilege=/privileges=, not both"
                )
            request = ProtectionRequest(privileges=(request,), **options)  # type: ignore[arg-type]
        elif request is None:
            if privilege is not None and privileges is not None:
                raise TypeError("pass either privilege= or privileges=, not both")
            selected: Tuple[object, ...]
            if privilege is not None:
                selected = (privilege,)
            elif privileges is not None:
                selected = tuple(privileges)
            else:
                raise TypeError("protect() needs a request, privilege= or privileges=")
            request = ProtectionRequest(privileges=selected, **options)  # type: ignore[arg-type]
        elif options or privilege is not None or privileges is not None:
            raise TypeError("pass either a ProtectionRequest or keyword options, not both")
        resolved = tuple(self.policy.lattice.get(item) for item in request.privileges)
        return request.with_options(privileges=resolved)

    def _build_account(self, request: ProtectionRequest) -> ProtectedAccount:
        privileges: Tuple[Privilege, ...] = request.privileges  # type: ignore[assignment]
        if request.strategy == STRATEGY_NAIVE:
            accounts = [
                naive_protected_account(self.graph, self.policy, privilege)
                for privilege in privileges
            ]
            if len(accounts) == 1:
                return accounts[0]
            return merge_accounts(self.graph, accounts, name=request.name)

        policy = self.policy
        walks_cache = self._walks_cache
        if request.protect_edges:
            self._check_edges_exist(request.protect_edges)
            policy = self.policy.copy()
            for privilege in privileges:
                policy.protect_edges(
                    list(request.protect_edges), privilege, strategy=request.strategy
                )
            # A scoped one-shot policy gets no shared walk cache: its markings
            # die with this request.
            walks_cache = None
        if len(self._walks_cache) > _WALK_CACHE_LIMIT:
            self._walks_cache.clear()

        if len(privileges) > 1:
            return build_multi_privilege_account(
                self.graph,
                policy,
                privileges,
                ensure_maximal_connectivity=request.repair_connectivity,
                strategy=request.strategy,
                name=request.name,
                walks_cache=walks_cache,
            )
        return build_protected_account(
            self.graph,
            policy,
            privileges[0],
            include_surrogate_edges=request.include_surrogate_edges,
            ensure_maximal_connectivity=request.repair_connectivity,
            strategy=request.strategy,
            name=request.name,
            compiled=request.compiled,
            walks_cache=walks_cache,
        )

    def _check_edges_exist(self, edges: Tuple[EdgeKey, ...]) -> None:
        """Protecting an edge that is not in the graph is a caller error."""
        for source, target in edges:
            if not self.graph.has_node(source):
                raise NodeNotFoundError(source)
            if not self.graph.has_node(target):
                raise NodeNotFoundError(target)
            if not self.graph.has_edge(source, target):
                raise EdgeNotFoundError(source, target)
