"""Interactive edit sessions: mutate → re-protect → re-score, incrementally.

A cold ``protect() + score()`` of an 8k-node graph costs hundreds of
milliseconds; an interactive provenance editor that re-protects after every
edge edit cannot afford to pay that per keystroke.  :class:`EditSession`
(obtained from :meth:`ProtectionService.edit
<repro.api.service.ProtectionService.edit>`) closes that gap by maintaining
*all* derived state through the graph's typed deltas
(:mod:`repro.graph.deltas`):

* the compiled marking view is patched in place
  (:meth:`~repro.core.markings.CompiledMarkingView.apply_delta`);
* the visible-walk cache evicts only walks whose traversal region the edit
  touches (:meth:`~repro.core.permitted.VisibleWalkCache.apply_delta`);
* the protected account itself is patched: the session tracks, per original
  edge, the surrogate-candidate pairs it contributes and the walks/pairs
  each contribution depends on, so an edit recomputes only the dirty slice
  of Algorithm 1's step 3 and applies the resulting edge diff to the
  account graph in place;
* scores are maintained, not recomputed: weakly-connected components of
  both graphs are updated per edge change (Path Utility), Node Utility is
  carried over (edge edits cannot change it), and opacity is re-read off
  the account's compiled adversary simulation, itself patched through the
  service's :class:`~repro.graph.deltas.DeltaBus`.

The result of every :meth:`EditSession.commit` is byte-identical to a fresh
``protect() + score()`` of the edited graph — the equivalence suite pins
account graphs, surrogate sets and every ScoreCard float with exact ``==``.
Deltas the incremental path cannot handle soundly (node additions/removals,
feature edits that may change surrogate choices, policy changes) fall back
to a full rebuild; both paths are counted in ``timings_ms``
(``delta_apply`` / ``recompile_fallback``) and in
:func:`~repro.graph.deltas.view_maintenance_stats` under ``"edit_session"``.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.api.requests import ProtectionRequest
from repro.api.results import ProtectionResult, ScoreCard
from repro.core.generation import SURROGATE_EDGE_LABEL, build_protected_account
from repro.core.markings import EdgeState, Marking
from repro.core.opacity import DEFAULT_ADVERSARY, AttackerModel, hidden_edges, opacity_report
from repro.core.permitted import VisibleWalkCache, direct_edge_allows_path
from repro.core.privileges import Privilege
from repro.core.protected_account import ProtectedAccount
from repro.core.utility import UtilityReport, utility_report
from repro.exceptions import ProtectionError
from repro.graph.deltas import DeltaKind, GraphDelta, record_maintenance
from repro.graph.model import Edge, EdgeKey, NodeId, PropertyGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.service import ProtectionService

#: An ordered (source original, target original) anchor pair.
Pair = Tuple[NodeId, NodeId]

#: One memoised walk identity: ("forward" | "backward", start node).
WalkKey = Tuple[str, NodeId]

#: Primitive delta kinds the incremental account maintainer supports; any
#: other kind (node structure, feature edits — which can change surrogate
#: choices and anchor sets) routes the commit through the full-rebuild
#: fallback instead.
_SUPPORTED_KINDS = frozenset(
    {DeltaKind.ADD_EDGE, DeltaKind.REMOVE_EDGE, DeltaKind.REPLACE_EDGE}
)


class _ComponentIndex:
    """Incrementally maintained weakly-connected components of one graph.

    ``%P`` only reads component *sizes*, so the index keeps a node → component
    id map plus per-component member sets.  Edge inserts union two
    components (smaller into larger); edge removals re-derive the affected
    side with one BFS that exits early as soon as the far endpoint proves
    the component intact.  Counts are exactly
    :func:`repro.graph.traversal.connected_pairs`'s.
    """

    __slots__ = ("graph", "comp_of", "members", "_next_id")

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self.comp_of: Dict[NodeId, int] = {}
        self.members: Dict[int, Set[NodeId]] = {}
        self._next_id = 0
        for node_id in graph.node_ids():
            if node_id in self.comp_of:
                continue
            comp = self._next_id
            self._next_id += 1
            bucket = {node_id}
            self.comp_of[node_id] = comp
            frontier = deque([node_id])
            while frontier:
                current = frontier.popleft()
                for neighbor in graph.iter_neighbors(current):
                    if neighbor not in bucket:
                        bucket.add(neighbor)
                        self.comp_of[neighbor] = comp
                        frontier.append(neighbor)
            self.members[comp] = bucket

    def connected_count(self, node_id: NodeId) -> int:
        """Number of other nodes weakly connected to ``node_id``."""
        return len(self.members[self.comp_of[node_id]]) - 1

    def add_edge(self, source: NodeId, target: NodeId) -> None:
        """Union the endpoints' components (smaller side relabelled)."""
        comp_source = self.comp_of[source]
        comp_target = self.comp_of[target]
        if comp_source == comp_target:
            return
        if len(self.members[comp_source]) < len(self.members[comp_target]):
            comp_source, comp_target = comp_target, comp_source
        small = self.members.pop(comp_target)
        for node_id in small:
            self.comp_of[node_id] = comp_source
        self.members[comp_source] |= small

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Split the component if (and only if) the removal disconnects it.

        Must be called *after* the graph mutation.  Correct under batches of
        interleaved edits applied in delta order: each BFS runs against the
        final graph, so every split it performs is real, and connectivity it
        cannot see through not-yet-processed removals is restored when those
        removals are processed (each either splits or proves a surviving
        path).
        """
        graph = self.graph
        if graph.has_edge(source, target) or graph.has_edge(target, source):
            return  # the pair is still directly linked
        if self.comp_of[source] != self.comp_of[target]:
            return  # an earlier removal in this batch already split them
        side = {source}
        frontier = deque([source])
        while frontier:
            current = frontier.popleft()
            for neighbor in graph.iter_neighbors(current):
                if neighbor == target:
                    return  # still connected without the removed edge
                if neighbor not in side:
                    side.add(neighbor)
                    frontier.append(neighbor)
        old_comp = self.comp_of[source]
        remainder = self.members[old_comp] - side
        new_comp = self._next_id
        self._next_id += 1
        if len(side) <= len(remainder):
            relabel, keep = side, remainder
        else:
            relabel, keep = remainder, side
        for node_id in relabel:
            self.comp_of[node_id] = new_comp
        self.members[new_comp] = relabel
        self.members[old_comp] = keep


class EditSession:
    """One consumer class, one live account, many cheap edit → score rounds.

    Create through :meth:`ProtectionService.edit
    <repro.api.service.ProtectionService.edit>`.  Mutate the graph — via the
    session's proxies (:meth:`add_edge`, :meth:`remove_edge`, ...) or
    directly on the graph object — then call :meth:`commit` to obtain a
    :class:`~repro.api.results.ProtectionResult` for the edited graph.  The
    session may also be used as a context manager; leaving the block commits
    any uncommitted edits and closes the session.

    The session owns its account (it is *never* shared with the service's
    account cache — cached results must stay immutable) and keeps it
    byte-identical to what a fresh ``protect()`` of the current graph would
    build.  Only the ``"surrogate"`` strategy with a single privilege is
    supported: that is the paper's standard account shape and the one with
    an O(V + E) rebuild worth avoiding.
    """

    def __init__(
        self,
        service: "ProtectionService",
        privilege: object,
        *,
        adversary: Optional[AttackerModel] = None,
        normalize_focus: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if service.graph is None:
            raise ProtectionError("EditSession needs a service with a bound graph")
        self._service = service
        self._graph: PropertyGraph = service.graph
        self._privilege: Privilege = service.policy.lattice.get(privilege)
        effective = adversary if adversary is not None else service.adversary
        self._adversary: AttackerModel = (
            effective if effective is not None else DEFAULT_ADVERSARY
        )
        self._normalize_focus = normalize_focus
        self._name = name
        self._pending: List[GraphDelta] = []
        self._closed = False
        self._account_bus: Optional[Tuple[PropertyGraph, int]] = None
        self.result: ProtectionResult = None  # type: ignore[assignment]
        self._graph.enable_delta_log()
        self._subscription = self._graph.subscribe(self._on_delta)
        with service._generation_lock:
            self._rebuild(timings={"setup": 0.0})

    # ------------------------------------------------------------------ #
    # public surface
    # ------------------------------------------------------------------ #
    @property
    def account(self) -> ProtectedAccount:
        """The session's live protected account (updated by :meth:`commit`)."""
        return self.result.account

    def add_edge(self, source: NodeId, target: NodeId, **kwargs: object) -> Edge:
        """Proxy for :meth:`PropertyGraph.add_edge` on the session's graph."""
        return self._graph.add_edge(source, target, **kwargs)  # type: ignore[arg-type]

    def remove_edge(self, source: NodeId, target: NodeId) -> Edge:
        """Proxy for :meth:`PropertyGraph.remove_edge`."""
        return self._graph.remove_edge(source, target)

    def add_bidirectional_edge(
        self, left: NodeId, right: NodeId, **kwargs: object
    ) -> Tuple[Edge, Edge]:
        """Proxy for :meth:`PropertyGraph.add_bidirectional_edge` (one delta)."""
        return self._graph.add_bidirectional_edge(left, right, **kwargs)  # type: ignore[arg-type]

    def add_node(self, node_id: NodeId, **kwargs: object):
        """Proxy for :meth:`PropertyGraph.add_node` (commits via fallback)."""
        return self._graph.add_node(node_id, **kwargs)  # type: ignore[arg-type]

    def remove_node(self, node_id: NodeId):
        """Proxy for :meth:`PropertyGraph.remove_node` (commits via fallback)."""
        return self._graph.remove_node(node_id)

    def set_node_features(self, node_id: NodeId, features) -> object:
        """Proxy for :meth:`PropertyGraph.set_node_features` (fallback path)."""
        return self._graph.set_node_features(node_id, features)

    def commit(self) -> ProtectionResult:
        """Re-protect and re-score after the edits since the last commit.

        Edge-level edits take the delta path: every compiled structure is
        patched in O(affected) and the returned result's ``timings_ms``
        carries the cost under ``delta_apply``.  Anything the delta path
        cannot handle soundly rebuilds the session from scratch
        (``recompile_fallback``).  With no pending edits the previous result
        is returned unchanged.
        """
        if self._closed:
            raise ProtectionError("this EditSession is closed")
        with self._service._generation_lock:
            deltas = self._pending
            self._pending = []
            if not deltas:
                return self.result
            timings: Dict[str, float] = {}
            start = time.perf_counter()
            patched = False
            if self._can_patch(deltas):
                try:
                    patched = self._apply_incremental(deltas, timings)
                except Exception:
                    # A failed patch must degrade to the (always-sound) full
                    # rebuild, never take the session down: partially
                    # patched index state is irrelevant because _rebuild
                    # reconstructs everything from the live graph.
                    patched = False
                    record_maintenance("edit_session", "patch_error")
            if patched:
                timings["delta_apply"] = (time.perf_counter() - start) * 1000.0
                timings["recompile_fallback"] = 0.0
                record_maintenance("edit_session", "delta_applied")
                scores = self._score(self.result.account)
            else:
                self._rebuild(timings)
                timings["delta_apply"] = 0.0
                timings["recompile_fallback"] = (time.perf_counter() - start) * 1000.0
                record_maintenance("edit_session", "recompile_fallback")
                scores = self.result.scores
            timings["total"] = (time.perf_counter() - start) * 1000.0
            if scores is not None:
                timings.update(scores.timings_ms)
            self.result = ProtectionResult(
                request=self.result.request,
                account=self.result.account,
                scores=scores,
                timings_ms=timings,
                stored_as=None,
            )
            return self.result

    def close(self) -> None:
        """Stop observing the graph (idempotent; the last result survives)."""
        if self._closed:
            return
        self._closed = True
        self._graph.unsubscribe(self._subscription)
        self._detach_account_bus()

    def __enter__(self) -> "EditSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self._pending:
            self.commit()
        self.close()

    # ------------------------------------------------------------------ #
    # delta intake
    # ------------------------------------------------------------------ #
    def _on_delta(self, graph: PropertyGraph, delta: GraphDelta) -> None:
        self._pending.append(delta)

    def _policy_token(self) -> Tuple[int, int, int, bool]:
        policy = self._service.policy
        return (
            policy.markings.version,
            policy.surrogates.version,
            policy.lattice.version,
            policy.use_null_surrogates,
        )

    def _can_patch(self, deltas: List[GraphDelta]) -> bool:
        if self._policy_token() != self._policy_base:
            return False
        return all(
            primitive.kind in _SUPPORTED_KINDS
            for delta in deltas
            for primitive in delta.flatten()
        )

    # ------------------------------------------------------------------ #
    # full rebuild (setup + fallback)
    # ------------------------------------------------------------------ #
    def _rebuild(self, timings: Dict[str, float]) -> None:
        """(Re)build every piece of session state from the current graph."""
        service = self._service
        graph = self._graph
        policy = service.policy
        privilege = self._privilege
        self._policy_base = self._policy_token()
        self._view = policy.markings.compile(graph, privilege)
        registry = service._walks_registry(graph)
        account = build_protected_account(
            graph, policy, privilege, name=self._name, walks_cache=registry
        )
        walks = registry.get((privilege.name, policy.markings.version, True))
        if (
            walks is None
            or walks.graph is not graph
            or walks.graph_version != graph.version
        ):  # pragma: no cover - defensive; build just validated the entry
            raise ProtectionError("internal: walk registry out of step after build")
        self._walks: VisibleWalkCache = walks
        self._to_account: Dict[NodeId, NodeId] = {
            original: account_node
            for account_node, original in account.correspondence.items()
        }
        self._anchors: Set[NodeId] = set(self._to_account)

        view = self._view
        self._visible: Dict[EdgeKey, Edge] = {
            edge.key: edge
            for edge in graph.edges()
            if view.edge_state_table[edge.key] is EdgeState.VISIBLE
            and edge.source in self._to_account
            and edge.target in self._to_account
        }

        # The incremental index over Algorithm 1's surrogate-edge step.
        self._pending_by_edge: Dict[EdgeKey, FrozenSet[Pair]] = {}
        self._edge_deps: Dict[EdgeKey, Tuple[WalkKey, ...]] = {}
        self._walk_edge_dependents: Dict[WalkKey, Set[EdgeKey]] = {}
        self._pending_counts: Counter = Counter()
        self._resolutions: Dict[
            Pair, Tuple[FrozenSet[Pair], FrozenSet[Pair], FrozenSet[WalkKey]]
        ] = {}
        self._pair_dependents: Dict[Pair, Set[Pair]] = {}
        self._walk_resolution_dependents: Dict[WalkKey, Set[Pair]] = {}
        self._candidate_counts: Counter = Counter()
        for key in graph.edge_keys():
            self._index_edge(key)
        for pair in list(self._pending_counts):
            self._index_pair(pair)
        self._surrogate_pairs: Set[Pair] = {
            pair for pair in self._candidate_counts if pair not in self._visible
        }

        # The index must agree with the account the reference builder just
        # produced — this is the cheap structural self-check that keeps the
        # incremental path honest at runtime, not only in the test suite.
        account_pairs = {
            (account.original_of(a), account.original_of(b))
            for (a, b) in account.surrogate_edges
        }
        if account_pairs != self._surrogate_pairs:  # pragma: no cover - invariant
            raise ProtectionError(
                "internal: incremental candidate index disagrees with the built account"
            )

        # Score state.
        self._orig_comps = _ComponentIndex(graph)
        self._acc_comps = _ComponentIndex(account.graph)
        self._hidden: Set[EdgeKey] = set(hidden_edges(graph, account))
        utility = utility_report(graph, account)
        self._node_utility = utility.node_utility

        self._detach_account_bus()
        account.graph.enable_delta_log()
        # Subscribe only the opacity-view cache to the account graph: it is
        # the one maintainer with state keyed to this graph (the compiled
        # adversary simulation, patched + re-keyed per account-edge diff).
        # The full service bus would also fan account mutations out to
        # AccountCache.on_delta, whose O(entries) scan can never match an
        # account graph.
        self._account_bus = (
            account.graph,
            account.graph.subscribe(service._opacity_views.on_delta),
        )
        request = ProtectionRequest(privileges=(privilege,), name=self._name)
        self.result = ProtectionResult(
            request=request,
            account=account,
            scores=self._score(account, utility=utility),
            timings_ms=timings,
            stored_as=None,
        )

    def _detach_account_bus(self) -> None:
        if self._account_bus is not None:
            graph, token = self._account_bus
            graph.unsubscribe(token)
            self._account_bus = None

    # ------------------------------------------------------------------ #
    # the incremental path
    # ------------------------------------------------------------------ #
    def _apply_incremental(
        self, deltas: List[GraphDelta], timings: Dict[str, float]
    ) -> bool:
        """Patch every derived structure through ``deltas``; False → fallback."""
        graph = self._graph
        policy = self._service.policy
        view = policy.markings.compile(graph, self._privilege)
        if view is not self._view or view.graph_version != graph.version:
            return False  # the policy's LRU replaced the view: start over
        evicted: List[WalkKey] = []
        for delta in deltas:
            result = self._walks.apply_delta(delta)
            if result is None:
                return False
            evicted.extend(result)

        edited: List[Tuple[bool, Edge]] = [
            change for delta in deltas for change in delta.edge_changes()
        ]
        edited_keys = {edge.key for _added, edge in edited}

        # --- step 3 maintenance: recompute only the dirty slice ---------- #
        dirty_edges = set(edited_keys)
        for walk_key in evicted:
            dependents = self._walk_edge_dependents.get(walk_key)
            if dependents:
                dirty_edges |= dependents
        dead_pairs: Set[Pair] = set()
        new_pairs: Set[Pair] = set()
        for key in dirty_edges:
            dead_pairs.update(self._unindex_edge(key))
        for key in dirty_edges:
            if graph.has_edge(*key):
                new_pairs.update(self._index_edge(key))
        dead_pairs = {pair for pair in dead_pairs if pair not in self._pending_counts}

        dirty_roots: Set[Pair] = set()
        for key in edited_keys:
            dependents = self._pair_dependents.get(key)
            if dependents:
                dirty_roots |= dependents
        for walk_key in evicted:
            dependents = self._walk_resolution_dependents.get(walk_key)
            if dependents:
                dirty_roots |= dependents
        dirty_roots &= set(self._resolutions)
        dirty_roots -= dead_pairs

        candidate_changes: Set[Pair] = set()
        for pair in dead_pairs | dirty_roots:
            if pair in self._resolutions:
                candidate_changes.update(self._unindex_pair(pair))
        for pair in dirty_roots | {p for p in new_pairs if p not in self._resolutions}:
            candidate_changes.update(self._index_pair(pair))

        # --- visible-edge reconciliation --------------------------------- #
        to_account = self._to_account
        vis_removed: List[EdgeKey] = []
        vis_added: List[Edge] = []
        vis_replaced: List[Edge] = []
        for key in edited_keys:
            old = self._visible.get(key)
            now = (
                graph.edge(*key)
                if graph.has_edge(*key)
                and view.edge_state_table.get(key) is EdgeState.VISIBLE
                and key[0] in to_account
                and key[1] in to_account
                else None
            )
            if old is not None and now is None:
                del self._visible[key]
                vis_removed.append(key)
            elif old is None and now is not None:
                self._visible[key] = now
                vis_added.append(now)
            elif (
                old is not None
                and now is not None
                and (old.label != now.label or old.features != now.features)
            ):
                self._visible[key] = now
                vis_replaced.append(now)

        # --- surrogate-edge reconciliation ------------------------------- #
        changed_pairs = set(candidate_changes)
        changed_pairs.update(vis_removed)
        changed_pairs.update(edge.key for edge in vis_added)
        surr_add: List[Pair] = []
        surr_remove: List[Pair] = []
        for pair in changed_pairs:
            should = pair in self._candidate_counts and pair not in self._visible
            has = pair in self._surrogate_pairs
            if should and not has:
                self._surrogate_pairs.add(pair)
                surr_add.append(pair)
            elif not should and has:
                self._surrogate_pairs.discard(pair)
                surr_remove.append(pair)

        # --- apply the account-graph diff (removals before additions) ---- #
        # One batch: the whole diff commits as a single composite delta, so
        # the opacity-view cache clones and patches its simulation once per
        # commit instead of once per account edge.
        account = self.result.account
        account_graph = account.graph
        with account_graph.batch():
            self._apply_account_diff(
                account, surr_remove, vis_removed, vis_added, vis_replaced, surr_add
            )

        # --- original-graph score state ----------------------------------- #
        for added, edge in edited:
            if added:
                self._orig_comps.add_edge(edge.source, edge.target)
            else:
                self._orig_comps.remove_edge(edge.source, edge.target)
                self._hidden.discard(edge.key)
        for key in edited_keys:
            if graph.has_edge(*key):
                shown = key in self._visible or key in self._surrogate_pairs
                if shown:
                    self._hidden.discard(key)
                else:
                    self._hidden.add(key)
        return True

    def _apply_account_diff(
        self,
        account: ProtectedAccount,
        surr_remove: List[Pair],
        vis_removed: List[EdgeKey],
        vis_added: List[Edge],
        vis_replaced: List[Edge],
        surr_add: List[Pair],
    ) -> None:
        """Apply one commit's edge diff to the account graph in place."""
        to_account = self._to_account
        account_graph = account.graph
        for pair in surr_remove:
            account_key = (to_account[pair[0]], to_account[pair[1]])
            account_graph.remove_edge(*account_key)
            account.surrogate_edges.discard(account_key)
            self._acc_comps.remove_edge(*account_key)
            self._toggle_hidden(pair, shown=False)
        for key in vis_removed:
            account_key = (to_account[key[0]], to_account[key[1]])
            account_graph.remove_edge(*account_key)
            self._acc_comps.remove_edge(*account_key)
            self._toggle_hidden(key, shown=False)
        for edge in vis_added:
            account_key = (to_account[edge.source], to_account[edge.target])
            account_graph.add_edge(
                account_key[0],
                account_key[1],
                label=edge.label,
                features=dict(edge.features),
            )
            self._acc_comps.add_edge(*account_key)
            self._toggle_hidden(edge.key, shown=True)
        for edge in vis_replaced:
            account_key = (to_account[edge.source], to_account[edge.target])
            account_graph.add_edge(
                account_key[0],
                account_key[1],
                label=edge.label,
                features=dict(edge.features),
                replace=True,
            )
        for pair in surr_add:
            account_key = (to_account[pair[0]], to_account[pair[1]])
            account_graph.add_edge(
                account_key[0], account_key[1], label=SURROGATE_EDGE_LABEL
            )
            account.surrogate_edges.add(account_key)
            self._acc_comps.add_edge(*account_key)
            self._toggle_hidden(pair, shown=True)

    def _toggle_hidden(self, pair: Pair, *, shown: bool) -> None:
        """Keep the hidden-edge set in step with one account-pair change."""
        if not self._graph.has_edge(*pair):
            return
        if shown:
            self._hidden.discard(pair)
        else:
            self._hidden.add(pair)

    # ------------------------------------------------------------------ #
    # the per-edge / per-pair index
    # ------------------------------------------------------------------ #
    def _pending_for_edge(
        self, key: EdgeKey
    ) -> Tuple[FrozenSet[Pair], Tuple[WalkKey, ...]]:
        """One edge's anchor-pair contributions + the walks they depend on.

        Mirrors the per-edge block of
        :func:`repro.core.permitted.surrogate_edge_candidates` exactly.
        """
        view = self._view
        state = view.edge_state_table.get(key)
        if state is None or state is EdgeState.HIDDEN:
            return frozenset(), ()
        source, target = key
        anchors = self._anchors
        source_is_anchor = source in anchors
        target_is_anchor = target in anchors
        if state is EdgeState.VISIBLE and source_is_anchor and target_is_anchor:
            return frozenset(), ()
        deps: List[WalkKey] = []
        if view.marking(source, key) is Marking.VISIBLE and source_is_anchor:
            sources: Tuple[NodeId, ...] = (source,)
        else:
            sources = tuple(self._walks.backward(source))
            deps.append(("backward", source))
        if view.marking(target, key) is Marking.VISIBLE and target_is_anchor:
            targets: Tuple[NodeId, ...] = (target,)
        else:
            targets = tuple(self._walks.forward(target))
            deps.append(("forward", target))
        pairs = frozenset(
            (anchor_source, anchor_target)
            for anchor_source in sources
            for anchor_target in targets
        )
        return pairs, tuple(deps)

    def _resolve_pair(
        self, root: Pair
    ) -> Tuple[FrozenSet[Pair], FrozenSet[Pair], FrozenSet[WalkKey]]:
        """The candidate closure of one pending pair, with its dependencies.

        Mirrors the worklist of
        :func:`~repro.core.permitted.surrogate_edge_candidates`, run for a
        single root: blocked pairs (sensitive direct edge) expand outwards
        through the walks.  The union of closures over all pending pairs
        equals the global scan's result — per-root ``visited`` memoisation
        only dedupes work, it never changes the union.  ``visited`` doubles
        as the dependency set: every pair the closure *queried* (existence /
        state of its direct edge), so an edit of edge ``(u, v)`` dirties
        exactly the roots whose closure visited ``(u, v)``.
        """
        graph = self._graph
        view = self._view
        walks = self._walks
        privilege = self._privilege
        visited: Set[Pair] = set()
        candidates: Set[Pair] = set()
        walk_deps: Set[WalkKey] = set()
        work: deque = deque([root])
        while work:
            pair = work.popleft()
            if pair in visited:
                continue
            visited.add(pair)
            anchor_source, anchor_target = pair
            if anchor_source == anchor_target:
                continue
            if not direct_edge_allows_path(
                graph, view, privilege, anchor_source, anchor_target
            ):
                walk_deps.add(("backward", anchor_source))
                walk_deps.add(("forward", anchor_target))
                for farther_source in walks.backward(anchor_source):
                    work.append((farther_source, anchor_target))
                for farther_target in walks.forward(anchor_target):
                    work.append((anchor_source, farther_target))
                continue
            if (
                graph.has_edge(anchor_source, anchor_target)
                and view.edge_state((anchor_source, anchor_target))
                is EdgeState.VISIBLE
            ):
                continue
            candidates.add(pair)
        return frozenset(candidates), frozenset(visited), frozenset(walk_deps)

    def _index_edge(self, key: EdgeKey) -> List[Pair]:
        """Index one edge's pending contribution; returns pairs born alive."""
        pairs, deps = self._pending_for_edge(key)
        self._pending_by_edge[key] = pairs
        self._edge_deps[key] = deps
        for dep in deps:
            self._walk_edge_dependents.setdefault(dep, set()).add(key)
        born: List[Pair] = []
        counts = self._pending_counts
        for pair in pairs:
            counts[pair] += 1
            if counts[pair] == 1:
                born.append(pair)
        return born

    def _unindex_edge(self, key: EdgeKey) -> List[Pair]:
        """Withdraw one edge's contribution; returns pairs that lost support."""
        pairs = self._pending_by_edge.pop(key, frozenset())
        for dep in self._edge_deps.pop(key, ()):
            dependents = self._walk_edge_dependents.get(dep)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._walk_edge_dependents[dep]
        dead: List[Pair] = []
        counts = self._pending_counts
        for pair in pairs:
            counts[pair] -= 1
            if not counts[pair]:
                del counts[pair]
                dead.append(pair)
        return dead

    def _index_pair(self, pair: Pair) -> List[Pair]:
        """Resolve one pending pair; returns candidates born alive."""
        resolution = self._resolve_pair(pair)
        self._resolutions[pair] = resolution
        candidates, visited, walk_deps = resolution
        for visited_pair in visited:
            self._pair_dependents.setdefault(visited_pair, set()).add(pair)
        for walk_key in walk_deps:
            self._walk_resolution_dependents.setdefault(walk_key, set()).add(pair)
        born: List[Pair] = []
        counts = self._candidate_counts
        for candidate in candidates:
            counts[candidate] += 1
            if counts[candidate] == 1:
                born.append(candidate)
        return born

    def _unindex_pair(self, pair: Pair) -> List[Pair]:
        """Withdraw one pending pair's closure; returns candidates that died."""
        candidates, visited, walk_deps = self._resolutions.pop(pair)
        for visited_pair in visited:
            dependents = self._pair_dependents.get(visited_pair)
            if dependents is not None:
                dependents.discard(pair)
                if not dependents:
                    del self._pair_dependents[visited_pair]
        for walk_key in walk_deps:
            dependents = self._walk_resolution_dependents.get(walk_key)
            if dependents is not None:
                dependents.discard(pair)
                if not dependents:
                    del self._walk_resolution_dependents[walk_key]
        dead: List[Pair] = []
        counts = self._candidate_counts
        for candidate in candidates:
            counts[candidate] -= 1
            if not counts[candidate]:
                del counts[candidate]
                dead.append(candidate)
        return dead

    # ------------------------------------------------------------------ #
    # scoring off maintained state
    # ------------------------------------------------------------------ #
    def _score(
        self,
        account: ProtectedAccount,
        utility: Optional[UtilityReport] = None,
    ) -> ScoreCard:
        """The ScoreCard of the maintained account, float-exact vs a fresh one.

        Path Utility is read off the maintained component indexes in the
        same node order (and with the same integer ratios) as
        :func:`~repro.core.utility.path_percentages`; Node Utility cannot
        change under edge edits and is carried over; opacity re-scores every
        hidden edge off the patched compiled simulation, iterating in the
        same canonical order as :func:`~repro.core.opacity.hidden_edges` so
        even the float *sums* agree bit for bit.
        """
        graph = self._graph
        if utility is None:
            to_account = self._to_account
            orig_comps = self._orig_comps
            acc_comps = self._acc_comps
            percentages: Dict[NodeId, float] = {}
            for node_id in graph.node_ids():
                account_node = to_account.get(node_id)
                if account_node is None:
                    percentages[node_id] = 0.0
                    continue
                original_connected = orig_comps.connected_count(node_id)
                if original_connected == 0:
                    percentages[node_id] = 1.0
                    continue
                percentages[node_id] = (
                    acc_comps.connected_count(account_node) / original_connected
                )
            node_count = graph.node_count()
            path_value = (
                sum(percentages.values()) / node_count if node_count else 1.0
            )
            utility = UtilityReport(
                path_utility=path_value,
                node_utility=self._node_utility,
                path_percentages=percentages,
            )
        hidden = self._hidden
        ordered_hidden = [key for key in graph.edge_keys() if key in hidden]
        compile_ms = 0.0

        def view_factory():
            nonlocal compile_ms
            start = time.perf_counter()
            view = self._service._opacity_views.get_or_compile(
                account.graph, self._adversary
            )
            compile_ms += (time.perf_counter() - start) * 1000.0
            return view

        start = time.perf_counter()
        opacity = opacity_report(
            graph,
            account,
            ordered_hidden,
            adversary=self._adversary,
            normalize_focus=self._normalize_focus,
            view_factory=view_factory,
        )
        score_ms = (time.perf_counter() - start) * 1000.0 - compile_ms
        return ScoreCard(
            utility=utility,
            opacity=opacity,
            timings_ms={"opacity_compile": compile_ms, "opacity_score": score_ms},
        )


# ---------------------------------------------------------------------- #
# the JSON edit-script wire format (shared by the CLI and the HTTP server)
# ---------------------------------------------------------------------- #
#: Edit-script op -> (EditSession method, required JSON fields).  One entry
#: is one mutation: ``{"op": "add_edge", "source": ..., "target": ...}``.
SCRIPT_OPS = {
    "add_edge": ("add_edge", ("source", "target")),
    "remove_edge": ("remove_edge", ("source", "target")),
    "add_bidirectional_edge": ("add_bidirectional_edge", ("source", "target")),
    "add_node": ("add_node", ("node",)),
    "remove_node": ("remove_node", ("node",)),
    "set_node_features": ("set_node_features", ("node", "features")),
}


def apply_script_edit(session: "EditSession", entry: dict) -> None:
    """Apply one edit-script entry to a session (raises ``ValueError`` on a bad entry).

    This is the one decoder for the JSON edit wire format: the CLI ``edit``
    subcommand and the server's ``/v1/sessions`` endpoint both replay
    scripts through it, so an edit that works from a file works over HTTP.
    """
    if not isinstance(entry, dict) or "op" not in entry:
        raise ValueError(f"each edit must be an object with an 'op', got {entry!r}")
    op = entry["op"]
    if op not in SCRIPT_OPS:
        raise ValueError(f"unknown edit op {op!r}; expected one of {sorted(SCRIPT_OPS)}")
    method, required = SCRIPT_OPS[op]
    missing = [name for name in required if name not in entry]
    if missing:
        raise ValueError(f"edit op {op!r} is missing fields {missing}")
    if op in ("add_edge", "add_bidirectional_edge"):
        getattr(session, method)(
            entry["source"],
            entry["target"],
            label=entry.get("label"),
            features=entry.get("features"),
            create_nodes=bool(entry.get("create_nodes", False)),
        )
    elif op == "remove_edge":
        session.remove_edge(entry["source"], entry["target"])
    elif op == "add_node":
        session.add_node(
            entry["node"], kind=entry.get("kind"), features=entry.get("features")
        )
    elif op == "remove_node":
        session.remove_node(entry["node"])
    else:
        session.set_node_features(entry["node"], dict(entry["features"]))
