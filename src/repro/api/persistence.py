"""Persisting protected accounts through the embedded graph store.

A :class:`~repro.core.protected_account.ProtectedAccount` is more than its
graph: the correspondence map, the surrogate node/edge sets, the target
privilege and the strategy label are all needed to score or enforce the
account later.  The store itself only knows named graphs, so the account
graph is stored normally (``store.put_graph``) and the remaining metadata is
attached to the graph's catalog descriptor — plus, for durable stores, a
sidecar ``<name>.account.json`` file next to the graph snapshot so a
reopened store can rebuild the account.

The payload format mirrors :mod:`repro.graph.serialization`'s style::

    {
      "format_version": 1,
      "privilege": "High-2" | null,
      "strategy": "surrogate",
      "correspondence": [[account_node, original_node], ...],
      "surrogate_nodes": [...],
      "surrogate_edges": [[source, target], ...]
    }

except that the three row tables above are written as packed tab-joined
columns (:mod:`repro.api.columns`) when their fields are uniformly
strings — at protection density a surrogate edge set holds tens of
thousands of rows, and the packed shape is what keeps checkpoint restore
decode-bound rather than parse-bound.  Readers accept both shapes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.codec import (
    pack_id_list as _pack_id_list,
    pack_pair_table as _pack_pair_table,
    unpack_id_list as _unpack_id_list,
    unpack_pair_table as _unpack_pair_table,
)
from repro.core.protected_account import ProtectedAccount
from repro.core.privileges import PrivilegeLattice
from repro.exceptions import StoreError
from repro.graph.model import PropertyGraph
from repro.store.engine import GraphStore

ACCOUNT_FORMAT_VERSION = 1

#: Catalog-descriptor metadata key the account payload is stored under.
ACCOUNT_METADATA_KEY = "protected_account"

_SIDECAR_SUFFIX = ".account.json"


def account_metadata_to_dict(account: ProtectedAccount) -> Dict[str, Any]:
    """The non-graph parts of an account, as a JSON-compatible dict."""
    return {
        "format_version": ACCOUNT_FORMAT_VERSION,
        "graph_name": account.graph.name,
        "privilege": account.privilege.name if account.privilege is not None else None,
        "strategy": account.strategy,
        "correspondence": _pack_pair_table(account.correspondence.items()),
        "surrogate_nodes": _pack_id_list(account.surrogate_nodes),
        "surrogate_edges": _pack_pair_table(account.surrogate_edges),
    }


def account_from_metadata(
    graph: PropertyGraph,
    payload: Dict[str, Any],
    *,
    lattice: Optional[PrivilegeLattice] = None,
) -> ProtectedAccount:
    """Rebuild an account from a stored graph plus its metadata payload.

    The privilege is resolved through ``lattice`` when one is supplied and
    declares the recorded name; otherwise the account carries ``None`` (the
    name alone is not a :class:`~repro.core.privileges.Privilege`).
    """
    graph_name = payload.get("graph_name")
    if graph_name is not None and graph.name != graph_name:
        # The store renames graphs to their catalog key; the account keeps
        # its own name so a round trip is byte-identical.
        graph = graph.copy(name=graph_name)
    privilege = None
    privilege_name = payload.get("privilege")
    if privilege_name is not None and lattice is not None and privilege_name in lattice:
        privilege = lattice.get(privilege_name)
    return ProtectedAccount(
        graph=graph,
        correspondence=dict(_unpack_pair_table(payload.get("correspondence", []))),
        privilege=privilege,
        surrogate_nodes=set(_unpack_id_list(payload.get("surrogate_nodes", []))),
        surrogate_edges=set(_unpack_pair_table(payload.get("surrogate_edges", []))),
        strategy=payload.get("strategy", "custom"),
    )


def persist_account(store: GraphStore, account: ProtectedAccount, name: str) -> str:
    """Store an account's graph under ``name`` and attach its metadata.

    Returns the stored name.  On a durable store the metadata is also
    written to a sidecar file so :func:`load_account` works after reopening
    the directory.
    """
    stored_name = store.put_graph(account.graph, name=name)
    payload = account_metadata_to_dict(account)
    descriptor = store.storage.catalog.get(stored_name)
    descriptor.kind = "protected_account"
    descriptor.metadata[ACCOUNT_METADATA_KEY] = json.dumps(payload, default=str)
    if store.storage.durable:
        # Through the storage I/O seam: temp + fsync + atomic rename, so a
        # crash mid-persist leaves either the old sidecar or the new one —
        # never a torn half-file — and the fault-injection suite covers it.
        store.storage.io.atomic_write_text(
            _sidecar_path(store, stored_name),
            json.dumps(payload, indent=2, default=str),
        )
        # The kind/metadata mutations above must survive a reopen too.
        store.storage.save_catalog()
    return stored_name


def load_account(
    store: GraphStore,
    name: str,
    *,
    lattice: Optional[PrivilegeLattice] = None,
) -> ProtectedAccount:
    """Rebuild a persisted account from ``store``.

    The graph comes back as a copy (store reads always do), so the caller
    may score or mutate it freely.  Raises :class:`~repro.exceptions.StoreError`
    when ``name`` holds a plain graph with no account metadata.
    """
    graph = store.graph(name)
    payload: Optional[Dict[str, Any]] = None
    descriptor = store.storage.catalog.get(name)
    raw = descriptor.metadata.get(ACCOUNT_METADATA_KEY)
    if raw is not None:
        payload = json.loads(raw)
    elif store.storage.durable:
        sidecar = _sidecar_path(store, name)
        if sidecar.exists():
            payload = json.loads(sidecar.read_text(encoding="utf-8"))
    if payload is None:
        raise StoreError(
            f"graph {name!r} has no protected-account metadata; was it stored via persist_account()?"
        )
    return account_from_metadata(graph, payload, lattice=lattice)


def _sidecar_path(store: GraphStore, name: str) -> Path:
    directory = store.storage.directory
    assert directory is not None
    safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name)
    return directory / f"{safe}{_SIDECAR_SUFFIX}"
