"""The response side of the :class:`~repro.api.service.ProtectionService` API.

A :class:`ProtectionResult` bundles the generated account with its
:class:`ScoreCard` (the paper's utility and opacity measures), per-phase
timings and — when the request asked for persistence — the name the account
was stored under.  Both types serialise to plain dicts so the CLI's
``--json`` output and experiment reports share one shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.opacity import OpacityReport
from repro.core.protected_account import ProtectedAccount
from repro.core.utility import UtilityReport
from repro.api.requests import ProtectionRequest


@dataclass(frozen=True)
class ScoreCard:
    """Utility and opacity of one account, as one value.

    Wraps the full :class:`~repro.core.utility.UtilityReport` (both measures
    plus the per-node ``%P`` breakdown) and
    :class:`~repro.core.opacity.OpacityReport` (average plus per-edge
    opacity — whose ``view`` field keeps the compiled adversary simulation
    alive for cached replays) so callers can drill down, with flat
    properties for the four headline numbers.  ``timings_ms`` carries the
    scoring-phase breakdown (``opacity_compile`` — the adversary
    simulation, 0.0 when the view cache answered or nothing needed
    inference — and ``opacity_score`` — the O(1)-per-edge batch pass).
    The service folds these keys into
    :attr:`ProtectionResult.timings_ms` when it *generates* a result; an
    account-cache replay's ``timings_ms`` describes only the replay
    (``cache_lookup``), so read the scoring breakdown from
    ``result.scores.timings_ms``, which always carries the cost of the
    original computation.
    """

    utility: UtilityReport
    opacity: OpacityReport
    timings_ms: Mapping[str, float] = field(default_factory=dict, compare=False)

    @property
    def path_utility(self) -> float:
        """Path Utility: fraction of original connected pairs still connected."""
        return self.utility.path_utility

    @property
    def node_utility(self) -> float:
        """Node Utility: information retained across represented nodes."""
        return self.utility.node_utility

    @property
    def average_opacity(self) -> float:
        """Mean opacity over the scored edges (1.0 = nothing inferable)."""
        return self.opacity.average

    @property
    def min_opacity(self) -> float:
        """The worst-protected scored edge's opacity."""
        return self.opacity.minimum()

    def as_dict(self) -> Dict[str, object]:
        """The four headline numbers (the shape reports and ``--json`` use)."""
        merged: Dict[str, object] = {}
        merged.update(self.utility.as_dict())
        merged.update(self.opacity.as_dict())
        return merged


@dataclass
class ProtectionResult:
    """Everything one ``service.protect()`` call produced.

    Attributes
    ----------
    request:
        The request this result answers (privileges resolved to
        :class:`~repro.core.privileges.Privilege` objects).
    account:
        The generated :class:`~repro.core.protected_account.ProtectedAccount`.
    scores:
        The :class:`ScoreCard`, or ``None`` when the request set
        ``score=False``.
    timings_ms:
        Wall-clock milliseconds per phase (``generate``, ``score``,
        ``persist`` when applicable, and ``total``).
    stored_as:
        The store name the account was persisted under, or ``None``.
    """

    request: ProtectionRequest
    account: ProtectedAccount
    scores: Optional[ScoreCard] = None
    timings_ms: Dict[str, float] = field(default_factory=dict)
    stored_as: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly summary (used by ``repro.cli protect --json``)."""
        payload: Dict[str, object] = {
            "account": self.account.summary(),
            "privileges": [
                getattr(privilege, "name", str(privilege))
                for privilege in self.request.privileges
            ],
            "strategy": self.request.strategy,
            "timings_ms": {name: round(value, 3) for name, value in self.timings_ms.items()},
        }
        if self.scores is not None:
            payload["scores"] = self.scores.as_dict()
        if self.stored_as is not None:
            payload["stored_as"] = self.stored_as
        return payload
