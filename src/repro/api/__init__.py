"""The unified request/response API: protect → score → enforce, at scale.

:class:`ProtectionService` is the recommended entry point to the library.
It binds one graph and one release policy and turns the paper's whole
workflow into explicit values:

* :class:`ProtectionRequest` — privileges, strategy, edges to protect,
  repair mode, scoring and persistence options (and, in cross-graph
  batches, the target graph);
* :class:`ProtectionResult` — the generated account, a :class:`ScoreCard`
  (Path Utility, Node Utility, opacity), per-phase timings and cache
  hit/miss statistics;
* :meth:`ProtectionService.protect` / :meth:`ProtectionService.protect_many`
  / :meth:`ProtectionService.enforce` / :meth:`ProtectionService.persist`.

Serving heavy traffic is handled by two further pieces:

* :class:`AccountCache` — account-level result caching keyed by the graph's
  and policy's version counters (automatic invalidation, LRU bounds,
  per-tenant namespaces, hit/miss stats);
* :class:`ServiceRegistry` / :class:`TenantQuota` — multi-tenant serving
  with per-tenant store roots, cache namespaces and request/graph quotas.

Interactive editing rides on the delta pipeline
(:mod:`repro.graph.deltas`): :meth:`ProtectionService.edit` opens an
:class:`EditSession` whose mutate → re-protect → re-score loop patches
every compiled structure in O(affected) instead of recompiling — see
``timings_ms["delta_apply"]`` / ``timings_ms["recompile_fallback"]``.

Warm restarts ride on service checkpoints
(:mod:`repro.api.checkpoints`): :meth:`ProtectionService.checkpoint`
freezes the compiled views, the account (as a diff against the original
graph) and the ScoreCard next to the store; a restarted service calls
:meth:`ProtectionService.restore` and resumes from the checkpoint plus
write-log delta catch-up instead of recompiling O(V+E) state — with
:meth:`ProtectionService.health` reporting how the restore (and the rest
of the serving stack) fared.  See ``docs/reliability.md``.

The old free functions (``generate_protected_account``,
``generate_multi_privilege_account``) survive as deprecated shims that
delegate here.
"""

from repro.api.cache import AccountCache, CacheStats, DEFAULT_CACHE_CAPACITY, DEFAULT_TENANT
from repro.api.checkpoints import RestoreReport, restore_service, write_checkpoint
from repro.api.editing import EditSession
from repro.api.requests import ProtectionRequest, REQUEST_STRATEGIES
from repro.api.results import ProtectionResult, ScoreCard
from repro.api.service import ProtectionService
from repro.api.registry import ServiceRegistry, TenantQuota
from repro.api.persistence import (
    account_from_metadata,
    account_metadata_to_dict,
    load_account,
    persist_account,
)

__all__ = [
    "ProtectionService",
    "ProtectionRequest",
    "ProtectionResult",
    "ScoreCard",
    "EditSession",
    "AccountCache",
    "CacheStats",
    "ServiceRegistry",
    "TenantQuota",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_TENANT",
    "REQUEST_STRATEGIES",
    "persist_account",
    "load_account",
    "account_metadata_to_dict",
    "account_from_metadata",
    "RestoreReport",
    "write_checkpoint",
    "restore_service",
]
