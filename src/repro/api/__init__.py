"""The unified request/response API: protect → score → enforce, at scale.

:class:`ProtectionService` is the recommended entry point to the library.
It binds one graph and one release policy and turns the paper's whole
workflow into explicit values:

* :class:`ProtectionRequest` — privileges, strategy, edges to protect,
  repair mode, scoring and persistence options (and, in cross-graph
  batches, the target graph);
* :class:`ProtectionResult` — the generated account, a :class:`ScoreCard`
  (Path Utility, Node Utility, opacity), per-phase timings and cache
  hit/miss statistics;
* :meth:`ProtectionService.protect` / :meth:`ProtectionService.protect_many`
  / :meth:`ProtectionService.enforce` / :meth:`ProtectionService.persist`.

Serving heavy traffic is handled by two further pieces:

* :class:`AccountCache` — account-level result caching keyed by the graph's
  and policy's version counters (automatic invalidation, LRU bounds,
  per-tenant namespaces, hit/miss stats);
* :class:`ServiceRegistry` / :class:`TenantQuota` — multi-tenant serving
  with per-tenant store roots, cache namespaces and request/graph quotas.

Interactive editing rides on the delta pipeline
(:mod:`repro.graph.deltas`): :meth:`ProtectionService.edit` opens an
:class:`EditSession` whose mutate → re-protect → re-score loop patches
every compiled structure in O(affected) instead of recompiling — see
``timings_ms["delta_apply"]`` / ``timings_ms["recompile_fallback"]``.

The old free functions (``generate_protected_account``,
``generate_multi_privilege_account``) survive as deprecated shims that
delegate here.
"""

from repro.api.cache import AccountCache, CacheStats, DEFAULT_CACHE_CAPACITY, DEFAULT_TENANT
from repro.api.editing import EditSession
from repro.api.requests import ProtectionRequest, REQUEST_STRATEGIES
from repro.api.results import ProtectionResult, ScoreCard
from repro.api.service import ProtectionService
from repro.api.registry import ServiceRegistry, TenantQuota
from repro.api.persistence import (
    account_from_metadata,
    account_metadata_to_dict,
    load_account,
    persist_account,
)

__all__ = [
    "ProtectionService",
    "ProtectionRequest",
    "ProtectionResult",
    "ScoreCard",
    "EditSession",
    "AccountCache",
    "CacheStats",
    "ServiceRegistry",
    "TenantQuota",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_TENANT",
    "REQUEST_STRATEGIES",
    "persist_account",
    "load_account",
    "account_metadata_to_dict",
    "account_from_metadata",
]
