"""Summary statistics over property graphs.

These are the numbers the synthetic-graph experiments report on (connected
pairs, degree distribution, component structure) and the numbers EXPERIMENTS.md
records about each generated workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.model import NodeId, PropertyGraph
from repro.graph.traversal import average_connected_pairs, weakly_connected_components


@dataclass(frozen=True)
class GraphSummary:
    """A compact, comparable summary of one graph."""

    name: str
    node_count: int
    edge_count: int
    component_count: int
    largest_component: int
    average_degree: float
    max_degree: int
    isolated_nodes: int
    average_connected_pairs: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (useful for tabular reports and JSON)."""
        return {
            "name": self.name,
            "nodes": self.node_count,
            "edges": self.edge_count,
            "components": self.component_count,
            "largest_component": self.largest_component,
            "avg_degree": round(self.average_degree, 3),
            "max_degree": self.max_degree,
            "isolated": self.isolated_nodes,
            "avg_connected_pairs": round(self.average_connected_pairs, 3),
        }


def degree_histogram(graph: PropertyGraph) -> Dict[int, int]:
    """Map from total degree to the number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for node_id in graph.node_ids():
        degree = graph.degree(node_id)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def degrees(graph: PropertyGraph) -> Dict[NodeId, int]:
    """Total degree per node."""
    return {node_id: graph.degree(node_id) for node_id in graph.node_ids()}


def average_degree(graph: PropertyGraph) -> float:
    """Mean total degree (0.0 for an empty graph)."""
    if graph.node_count() == 0:
        return 0.0
    return sum(degrees(graph).values()) / graph.node_count()


def summarize(graph: PropertyGraph) -> GraphSummary:
    """Build a :class:`GraphSummary` for ``graph``."""
    components: List[set] = weakly_connected_components(graph)
    all_degrees = degrees(graph)
    return GraphSummary(
        name=graph.name or "<unnamed>",
        node_count=graph.node_count(),
        edge_count=graph.edge_count(),
        component_count=len(components),
        largest_component=max((len(component) for component in components), default=0),
        average_degree=average_degree(graph),
        max_degree=max(all_degrees.values(), default=0),
        isolated_nodes=len(graph.isolated_nodes()),
        average_connected_pairs=average_connected_pairs(graph),
    )
