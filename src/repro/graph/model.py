"""The property-graph container used throughout the library.

A :class:`PropertyGraph` is a simple directed graph (at most one edge per
ordered node pair, matching the paper's model in Section 2) whose nodes and
edges carry *features* — attribute-value pairs.  Bi-directional
relationships are modelled as two directed edges, exactly as the paper
prescribes.

Design notes
------------
* Node ids are arbitrary hashable values (strings in all of the paper's
  examples).
* Adjacency is indexed in both directions so that predecessor and successor
  queries — the backbone of provenance path traversal — are O(out-degree) /
  O(in-degree).  The indexes are insertion-ordered dicts, so every iteration
  order is deterministic without per-call sorting.
* Mutating operations keep the indexes consistent; the container never hands
  out internal dicts (nodes and edges are returned as lightweight value
  objects).  Hot traversal loops can use the ``iter_*`` adjacency methods,
  which iterate the internal indexes without copying — callers must not
  mutate the graph while consuming them.
* Every logical mutation bumps :attr:`PropertyGraph.version` exactly once —
  :meth:`remove_node` counts as one mutation however many incident edges it
  drops, and a :meth:`batch` block commits as one — which caching layers
  (e.g. the compiled marking views in :mod:`repro.core.markings`) use to
  detect staleness without hashing the graph.
* Every mutation additionally describes itself as a typed
  :class:`~repro.graph.deltas.GraphDelta` delivered to subscribers and (when
  enabled) a bounded delta log, so compiled views and caches can maintain
  themselves incrementally instead of recompiling per version bump.  Event
  construction is skipped entirely while nobody is listening.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
)
from repro.graph.deltas import DeltaKind, GraphDelta
from repro.graph.features import normalize_features

#: Default bound on the per-graph delta log (see
#: :meth:`PropertyGraph.enable_delta_log`).  256 single-edge edits is far
#: more than any interactive editing burst between two view reads; a log
#: that overflows simply makes stale views recompile once.
DELTA_LOG_LIMIT = 256

NodeId = Hashable
EdgeKey = Tuple[NodeId, NodeId]

#: Shared empty adjacency index returned by the zero-copy iterators for
#: edge-less nodes, so the no-edge case allocates nothing either.
_EMPTY_ADJACENCY: Dict[NodeId, None] = {}


@dataclass(frozen=True)
class Node:
    """A node value object: an id, a ``kind`` tag and its features.

    ``kind`` is free-form ("person", "data", "process", ...); the provenance
    substrate uses it to distinguish data from process nodes, the social
    examples use it for entity types.  It never affects protection logic.
    """

    node_id: NodeId
    kind: Optional[str] = None
    features: Mapping[str, Any] = field(default_factory=dict)

    def feature(self, name: str, default: Any = None) -> Any:
        """Return one feature value (or ``default``)."""
        return self.features.get(name, default)

    def with_features(self, features: Mapping[str, Any]) -> "Node":
        """Return a copy of this node with ``features`` replacing the old ones."""
        return Node(node_id=self.node_id, kind=self.kind, features=dict(features))


@dataclass(frozen=True)
class Edge:
    """A directed edge value object with an optional ``label`` and features."""

    source: NodeId
    target: NodeId
    label: Optional[str] = None
    features: Mapping[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> EdgeKey:
        """The ``(source, target)`` pair identifying this edge."""
        return (self.source, self.target)

    def reversed(self) -> "Edge":
        """Return the same edge pointing the other way (used for bi-directional links)."""
        return Edge(source=self.target, target=self.source, label=self.label, features=dict(self.features))


class PropertyGraph:
    """A mutable directed property graph.

    Example
    -------
    >>> g = PropertyGraph(name="demo")
    >>> g.add_node("a", kind="person", features={"name": "Alice"})
    Node(node_id='a', kind='person', features={'name': 'Alice'})
    >>> g.add_node("b")
    Node(node_id='b', kind=None, features={})
    >>> g.add_edge("a", "b", label="knows")
    Edge(source='a', target='b', label='knows', features={})
    >>> sorted(g.successors("a"))
    ['b']
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name
        self._nodes: Dict[NodeId, Node] = {}
        self._edges: Dict[EdgeKey, Edge] = {}
        # Adjacency as insertion-ordered dicts (values unused): membership is
        # O(1) like a set, iteration order is edge-insertion order.
        self._succ: Dict[NodeId, Dict[NodeId, None]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, None]] = {}
        #: Monotonically increasing mutation counter for cache invalidation.
        self._version = 0
        # Delta machinery, all lazily allocated: observers (subscription
        # token -> listener or weak method), the bounded delta log, and the
        # in-flight batch sub-delta list.  ``None`` everywhere means "nobody
        # is listening" and mutators skip event construction.
        self._observers: Optional[Dict[int, object]] = None
        self._next_token = 0
        self._delta_log: Optional[List[GraphDelta]] = None
        self._delta_log_limit = 0
        self._batch: Optional[List[GraphDelta]] = None
        self._batch_dirty = False
        self._batch_tainted = False

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever nodes or edges are added/removed."""
        return self._version

    @property
    def in_batch(self) -> bool:
        """True while a :meth:`batch` block is open (version bump pending)."""
        return self._batch is not None

    # ------------------------------------------------------------------ #
    # delta emission
    # ------------------------------------------------------------------ #
    def enable_delta_log(self, limit: int = DELTA_LOG_LIMIT) -> None:
        """Start recording mutations into a bounded delta log.

        The log is what lets stale compiled views *catch up*: a view built
        at version ``v`` asks :meth:`deltas_since` for the chain of events
        from ``v`` to the present and patches itself in O(affected) instead
        of recompiling.  Idempotent; a smaller ``limit`` trims the existing
        log.
        """
        if limit < 1:
            raise ValueError(f"delta log limit must be positive, got {limit}")
        if self._delta_log is None:
            self._delta_log = []
        self._delta_log_limit = limit
        del self._delta_log[:-limit]

    @property
    def delta_log_enabled(self) -> bool:
        """True once :meth:`enable_delta_log` (or a bus attach) has run."""
        return self._delta_log is not None

    def subscribe(self, listener: object) -> int:
        """Register a mutation listener called as ``listener(graph, delta)``.

        Bound methods are held weakly (the owning object — typically a
        :class:`~repro.graph.deltas.DeltaBus` — can be garbage-collected
        without unsubscribing first); plain functions are held strongly.
        Returns a token for :meth:`unsubscribe`.
        """
        if self._observers is None:
            self._observers = {}
        token = self._next_token
        self._next_token += 1
        try:
            stored: object = weakref.WeakMethod(listener)  # type: ignore[arg-type]
        except TypeError:
            stored = listener
        self._observers[token] = stored
        return token

    def unsubscribe(self, token: int) -> None:
        """Drop one listener (unknown tokens are ignored)."""
        if self._observers is not None:
            self._observers.pop(token, None)

    def deltas_since(self, version: int) -> Optional[List[GraphDelta]]:
        """The contiguous delta chain from ``version`` to the present.

        Returns ``[]`` when ``version`` is current, the ordered chain when
        the log still reaches back that far, and ``None`` when it cannot be
        reconstructed (logging disabled, the log overflowed, or ``version``
        never existed) — in which case the caller must fall back to a full
        recompile.
        """
        if version == self._version:
            return []
        log = self._delta_log
        if log is None or version > self._version:
            return None
        for index, delta in enumerate(log):
            if delta.pre_version == version:
                chain = log[index:]
                # Defensive contiguity check: a hole (e.g. a batch whose
                # composite could not be recorded) must never be bridged.
                expected = version
                for entry in chain:
                    if entry.pre_version != expected:
                        return None
                    expected = entry.post_version
                if expected != self._version:
                    return None
                return chain
        return None

    def _commit(self, kind: DeltaKind, **payload: object) -> None:
        """Record one mutation: version bump + delta emission (or batch defer)."""
        if self._batch is not None:
            self._batch_dirty = True
            if self._delta_log is not None or self._observers:
                self._batch.append(
                    GraphDelta(
                        kind=kind,
                        pre_version=self._version,
                        post_version=self._version,
                        **payload,  # type: ignore[arg-type]
                    )
                )
            else:
                # Nobody was listening when this mutation happened.  If a
                # listener (or the log) appears before the batch commits,
                # the composite would be missing this sub-delta — publishing
                # it would let stale views "catch up" incompletely and be
                # served as current.  Taint the batch instead: the version
                # still bumps, nothing is published, and deltas_since()
                # reports an unbridgeable gap, forcing the sound recompile.
                self._batch_tainted = True
            return
        pre = self._version
        self._version = pre + 1
        if self._delta_log is not None or self._observers:
            self._publish(
                GraphDelta(kind=kind, pre_version=pre, post_version=pre + 1, **payload)  # type: ignore[arg-type]
            )

    def _publish(self, delta: GraphDelta) -> None:
        """Append one committed delta to the log and notify subscribers."""
        log = self._delta_log
        if log is not None:
            log.append(delta)
            if len(log) > self._delta_log_limit:
                del log[: len(log) - self._delta_log_limit]
        if self._observers:
            for token, stored in list(self._observers.items()):
                listener = stored() if isinstance(stored, weakref.WeakMethod) else stored
                if listener is None:
                    self._observers.pop(token, None)
                    continue
                listener(self, delta)

    @contextmanager
    def batch(self) -> Iterator["PropertyGraph"]:
        """Coalesce several mutations into one version bump and one delta.

        Within the block every mutator applies its structural change
        immediately but defers the version bump; on exit the graph commits
        **one** version bump and publishes **one** composite
        :class:`~repro.graph.deltas.GraphDelta` (kind ``BATCH``) carrying
        the sub-deltas — so symmetric inserts like
        :meth:`add_bidirectional_edge` cause a single invalidation instead
        of two.  Nested ``batch()`` blocks join the outermost one.

        Two caveats, both consequences of the single deferred bump: derived
        state (compiled views, caches) must not be *read* from inside the
        block — :attr:`version` only changes at exit — and there is no
        rollback: if the block raises, mutations already applied stay
        applied and the commit still runs, so caches cannot go stale.
        """
        if self._batch is not None:
            yield self
            return
        self._batch = []
        self._batch_dirty = False
        self._batch_tainted = False
        try:
            yield self
        finally:
            subs = tuple(self._batch)
            dirty = self._batch_dirty
            tainted = self._batch_tainted
            self._batch = None
            self._batch_dirty = False
            self._batch_tainted = False
            if dirty:
                pre = self._version
                self._version = pre + 1
                if tainted:
                    # The composite is incomplete; clear the log so no
                    # earlier entry can bridge across the hole either.
                    if self._delta_log is not None:
                        self._delta_log.clear()
                elif self._delta_log is not None or self._observers:
                    self._publish(
                        GraphDelta(
                            kind=DeltaKind.BATCH,
                            pre_version=pre,
                            post_version=pre + 1,
                            deltas=subs,
                        )
                    )

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<PropertyGraph{label} nodes={self.node_count()} edges={self.edge_count()}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # ------------------------------------------------------------------ #
    # node operations
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_id: NodeId,
        *,
        kind: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
        replace: bool = False,
    ) -> Node:
        """Add a node and return it.

        Adding an existing id raises :class:`DuplicateNodeError` unless
        ``replace=True``, in which case the node's kind/features are replaced
        while its incident edges are preserved.
        """
        existing = self._nodes.get(node_id)
        if existing is not None and not replace:
            raise DuplicateNodeError(node_id)
        node = Node(node_id=node_id, kind=kind, features=normalize_features(features))
        self._nodes[node_id] = node
        self._succ.setdefault(node_id, {})
        self._pred.setdefault(node_id, {})
        if existing is not None:
            self._commit(DeltaKind.REPLACE_NODE, node=node, old_node=existing)
        else:
            self._commit(DeltaKind.ADD_NODE, node=node)
        return node

    def ensure_node(self, node_id: NodeId, **kwargs: Any) -> Node:
        """Return the existing node or add it if missing (never raises on duplicates)."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        return self.add_node(node_id, **kwargs)

    def node(self, node_id: NodeId) -> Node:
        """Return the :class:`Node` for ``node_id`` (raises :class:`NodeNotFoundError`)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def has_node(self, node_id: NodeId) -> bool:
        """True when ``node_id`` is in the graph."""
        return node_id in self._nodes

    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    def node_ids(self) -> List[NodeId]:
        """All node ids, in insertion order."""
        return list(self._nodes.keys())

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def remove_node(self, node_id: NodeId) -> Node:
        """Remove a node and every incident edge; return the removed node.

        One logical mutation: a single version bump and a single
        ``REMOVE_NODE`` delta carrying every dropped incident edge.
        """
        node = self.node(node_id)
        removed: List[Edge] = []
        for successor in list(self._succ.get(node_id, ())):
            removed.append(self._pop_edge(node_id, successor))
        for predecessor in list(self._pred.get(node_id, ())):
            removed.append(self._pop_edge(predecessor, node_id))
        self._succ.pop(node_id, None)
        self._pred.pop(node_id, None)
        del self._nodes[node_id]
        self._commit(DeltaKind.REMOVE_NODE, old_node=node, removed_edges=tuple(removed))
        return node

    def set_node_features(self, node_id: NodeId, features: Mapping[str, Any]) -> Node:
        """Replace a node's features, keeping its edges; return the new node object."""
        node = self.node(node_id)
        updated = node.with_features(features)
        self._nodes[node_id] = updated
        self._commit(DeltaKind.SET_NODE_FEATURES, node=updated, old_node=node)
        return updated

    # ------------------------------------------------------------------ #
    # edge operations
    # ------------------------------------------------------------------ #
    def add_edge(
        self,
        source: NodeId,
        target: NodeId,
        *,
        label: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
        create_nodes: bool = False,
        replace: bool = False,
    ) -> Edge:
        """Add a directed edge ``source -> target`` and return it.

        With ``create_nodes=True`` missing endpoints are created on the fly
        (handy in builders and workload generators); otherwise missing
        endpoints raise :class:`NodeNotFoundError`.
        """
        if source == target:
            raise ValueError(f"self-loops are not supported (node {source!r})")
        if create_nodes:
            self.ensure_node(source)
            self.ensure_node(target)
        else:
            if source not in self._nodes:
                raise NodeNotFoundError(source)
            if target not in self._nodes:
                raise NodeNotFoundError(target)
        key = (source, target)
        existing = self._edges.get(key)
        if existing is not None and not replace:
            raise DuplicateEdgeError(source, target)
        edge = Edge(source=source, target=target, label=label, features=normalize_features(features))
        self._edges[key] = edge
        self._succ[source][target] = None
        self._pred[target][source] = None
        if existing is not None:
            self._commit(DeltaKind.REPLACE_EDGE, edge=edge, old_edge=existing)
        else:
            self._commit(DeltaKind.ADD_EDGE, edge=edge)
        return edge

    def add_bidirectional_edge(
        self,
        left: NodeId,
        right: NodeId,
        *,
        label: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
        create_nodes: bool = False,
    ) -> Tuple[Edge, Edge]:
        """Add both directions of an undirected relationship (paper, Section 2).

        The two inserts commit as one :meth:`batch`: a single version bump
        and a single composite delta, so caches invalidate (or patch) once
        per symmetric insert instead of twice.
        """
        with self.batch():
            forward = self.add_edge(left, right, label=label, features=features, create_nodes=create_nodes)
            backward = self.add_edge(right, left, label=label, features=features, create_nodes=create_nodes)
        return forward, backward

    def edge(self, source: NodeId, target: NodeId) -> Edge:
        """Return the edge ``source -> target`` (raises :class:`EdgeNotFoundError`)."""
        try:
            return self._edges[(source, target)]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """True when the directed edge ``source -> target`` exists."""
        return (source, target) in self._edges

    def has_link(self, left: NodeId, right: NodeId) -> bool:
        """True when an edge exists in either direction between the two nodes."""
        return self.has_edge(left, right) or self.has_edge(right, left)

    def edges(self) -> List[Edge]:
        """All edges, in insertion order."""
        return list(self._edges.values())

    def edge_keys(self) -> List[EdgeKey]:
        """All ``(source, target)`` pairs, in insertion order."""
        return list(self._edges.keys())

    def edge_count(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    def remove_edge(self, source: NodeId, target: NodeId) -> Edge:
        """Remove the edge ``source -> target`` and return it."""
        if (source, target) not in self._edges:
            raise EdgeNotFoundError(source, target)
        return self._drop_edge(source, target)

    def _drop_edge(self, source: NodeId, target: NodeId) -> Edge:
        edge = self._pop_edge(source, target)
        self._commit(DeltaKind.REMOVE_EDGE, old_edge=edge)
        return edge

    def _pop_edge(self, source: NodeId, target: NodeId) -> Edge:
        """Structure-only edge removal (no version bump, no delta)."""
        edge = self._edges.pop((source, target))
        self._succ[source].pop(target, None)
        self._pred[target].pop(source, None)
        return edge

    # ------------------------------------------------------------------ #
    # adjacency queries
    # ------------------------------------------------------------------ #
    def successors(self, node_id: NodeId) -> Set[NodeId]:
        """Targets of out-edges of ``node_id`` (a fresh, mutation-safe set)."""
        self.node(node_id)
        return set(self._succ.get(node_id, ()))

    def predecessors(self, node_id: NodeId) -> Set[NodeId]:
        """Sources of in-edges of ``node_id`` (a fresh, mutation-safe set)."""
        self.node(node_id)
        return set(self._pred.get(node_id, ()))

    def neighbors(self, node_id: NodeId) -> Set[NodeId]:
        """Union of predecessors and successors (ignoring direction)."""
        self.node(node_id)
        return set(self._succ.get(node_id, ())) | set(self._pred.get(node_id, ()))

    def iter_successors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Zero-copy view of out-neighbours, in edge-insertion order.

        Unlike :meth:`successors` no set is allocated; the returned view
        reads the internal index directly, so the graph must not be mutated
        while it is being consumed.  This is the traversal-hot-path API.
        """
        self.node(node_id)
        return self._succ.get(node_id, _EMPTY_ADJACENCY).keys()

    def iter_predecessors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Zero-copy view of in-neighbours, in edge-insertion order."""
        self.node(node_id)
        return self._pred.get(node_id, _EMPTY_ADJACENCY).keys()

    def iter_neighbors(self, node_id: NodeId) -> Iterator[NodeId]:
        """Distinct neighbours ignoring direction, successors first, no copies."""
        self.node(node_id)
        succ = self._succ.get(node_id, _EMPTY_ADJACENCY)
        yield from succ
        for predecessor in self._pred.get(node_id, _EMPTY_ADJACENCY):
            if predecessor not in succ:
                yield predecessor

    def out_edges(self, node_id: NodeId) -> List[Edge]:
        """Edges leaving ``node_id``, in edge-insertion order."""
        self.node(node_id)
        return [self._edges[(node_id, target)] for target in self._succ.get(node_id, ())]

    def in_edges(self, node_id: NodeId) -> List[Edge]:
        """Edges entering ``node_id``, in edge-insertion order."""
        self.node(node_id)
        return [self._edges[(source, node_id)] for source in self._pred.get(node_id, ())]

    def incident_edges(self, node_id: NodeId) -> List[Edge]:
        """All edges touching ``node_id`` (in either direction)."""
        return self.out_edges(node_id) + self.in_edges(node_id)

    def out_degree(self, node_id: NodeId) -> int:
        """Number of out-edges."""
        self.node(node_id)
        return len(self._succ.get(node_id, ()))

    def in_degree(self, node_id: NodeId) -> int:
        """Number of in-edges."""
        self.node(node_id)
        return len(self._pred.get(node_id, ()))

    def degree(self, node_id: NodeId) -> int:
        """Total degree (in + out).  A node linked both ways to the same peer counts twice."""
        return self.in_degree(node_id) + self.out_degree(node_id)

    def neighbor_count(self, node_id: NodeId) -> int:
        """Number of *distinct* neighbouring nodes, ignoring direction.

        This is the "connected nodes" count the paper's advanced-adversary
        focus probability is defined over (Figure 5: "0-1 connected nodes").
        """
        return len(self.neighbors(node_id))

    def same_neighborhood(self, other: "PropertyGraph", node_id: NodeId) -> bool:
        """True when ``node_id`` has identical in/out neighbour sets in both graphs.

        Used by derived-view maintenance (e.g.
        :meth:`repro.core.opacity.CompiledOpacityView.derive_for`) to find
        the nodes whose structural weights can differ between two related
        graphs without walking either edge list twice.
        """
        return (
            self._succ.get(node_id, _EMPTY_ADJACENCY).keys()
            == other._succ.get(node_id, _EMPTY_ADJACENCY).keys()
            and self._pred.get(node_id, _EMPTY_ADJACENCY).keys()
            == other._pred.get(node_id, _EMPTY_ADJACENCY).keys()
        )

    def isolated_nodes(self) -> List[NodeId]:
        """Ids of nodes with no incident edges."""
        return [node_id for node_id in self._nodes if not self._succ[node_id] and not self._pred[node_id]]

    # ------------------------------------------------------------------ #
    # whole-graph operations
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "PropertyGraph":
        """Deep-enough copy: new container, new feature dicts."""
        clone = PropertyGraph(name=name if name is not None else self.name)
        for node in self._nodes.values():
            clone.add_node(node.node_id, kind=node.kind, features=dict(node.features))
        for edge in self._edges.values():
            clone.add_edge(edge.source, edge.target, label=edge.label, features=dict(edge.features))
        return clone

    def subgraph(self, node_ids: Iterable[NodeId], name: Optional[str] = None) -> "PropertyGraph":
        """The induced subgraph over ``node_ids`` (unknown ids are ignored)."""
        keep = {node_id for node_id in node_ids if node_id in self._nodes}
        result = PropertyGraph(name=name)
        for node_id in self._nodes:
            if node_id in keep:
                node = self._nodes[node_id]
                result.add_node(node.node_id, kind=node.kind, features=dict(node.features))
        for (source, target), edge in self._edges.items():
            if source in keep and target in keep:
                result.add_edge(source, target, label=edge.label, features=dict(edge.features))
        return result

    def reverse(self, name: Optional[str] = None) -> "PropertyGraph":
        """A copy of the graph with every edge reversed."""
        result = PropertyGraph(name=name if name is not None else self.name)
        for node in self._nodes.values():
            result.add_node(node.node_id, kind=node.kind, features=dict(node.features))
        for edge in self._edges.values():
            result.add_edge(edge.target, edge.source, label=edge.label, features=dict(edge.features))
        return result
