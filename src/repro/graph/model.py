"""The property-graph container used throughout the library.

A :class:`PropertyGraph` is a simple directed graph (at most one edge per
ordered node pair, matching the paper's model in Section 2) whose nodes and
edges carry *features* — attribute-value pairs.  Bi-directional
relationships are modelled as two directed edges, exactly as the paper
prescribes.

Design notes
------------
* Node ids are arbitrary hashable values (strings in all of the paper's
  examples).
* Adjacency is indexed in both directions so that predecessor and successor
  queries — the backbone of provenance path traversal — are O(out-degree) /
  O(in-degree).  The indexes are insertion-ordered dicts, so every iteration
  order is deterministic without per-call sorting.
* Mutating operations keep the indexes consistent; the container never hands
  out internal dicts (nodes and edges are returned as lightweight value
  objects).  Hot traversal loops can use the ``iter_*`` adjacency methods,
  which iterate the internal indexes without copying — callers must not
  mutate the graph while consuming them.
* Every mutation bumps :attr:`PropertyGraph.version`, which caching layers
  (e.g. the compiled marking views in :mod:`repro.core.markings`) use to
  detect staleness without hashing the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
)
from repro.graph.features import normalize_features

NodeId = Hashable
EdgeKey = Tuple[NodeId, NodeId]

#: Shared empty adjacency index returned by the zero-copy iterators for
#: edge-less nodes, so the no-edge case allocates nothing either.
_EMPTY_ADJACENCY: Dict[NodeId, None] = {}


@dataclass(frozen=True)
class Node:
    """A node value object: an id, a ``kind`` tag and its features.

    ``kind`` is free-form ("person", "data", "process", ...); the provenance
    substrate uses it to distinguish data from process nodes, the social
    examples use it for entity types.  It never affects protection logic.
    """

    node_id: NodeId
    kind: Optional[str] = None
    features: Mapping[str, Any] = field(default_factory=dict)

    def feature(self, name: str, default: Any = None) -> Any:
        """Return one feature value (or ``default``)."""
        return self.features.get(name, default)

    def with_features(self, features: Mapping[str, Any]) -> "Node":
        """Return a copy of this node with ``features`` replacing the old ones."""
        return Node(node_id=self.node_id, kind=self.kind, features=dict(features))


@dataclass(frozen=True)
class Edge:
    """A directed edge value object with an optional ``label`` and features."""

    source: NodeId
    target: NodeId
    label: Optional[str] = None
    features: Mapping[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> EdgeKey:
        """The ``(source, target)`` pair identifying this edge."""
        return (self.source, self.target)

    def reversed(self) -> "Edge":
        """Return the same edge pointing the other way (used for bi-directional links)."""
        return Edge(source=self.target, target=self.source, label=self.label, features=dict(self.features))


class PropertyGraph:
    """A mutable directed property graph.

    Example
    -------
    >>> g = PropertyGraph(name="demo")
    >>> g.add_node("a", kind="person", features={"name": "Alice"})
    Node(node_id='a', kind='person', features={'name': 'Alice'})
    >>> g.add_node("b")
    Node(node_id='b', kind=None, features={})
    >>> g.add_edge("a", "b", label="knows")
    Edge(source='a', target='b', label='knows', features={})
    >>> sorted(g.successors("a"))
    ['b']
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name
        self._nodes: Dict[NodeId, Node] = {}
        self._edges: Dict[EdgeKey, Edge] = {}
        # Adjacency as insertion-ordered dicts (values unused): membership is
        # O(1) like a set, iteration order is edge-insertion order.
        self._succ: Dict[NodeId, Dict[NodeId, None]] = {}
        self._pred: Dict[NodeId, Dict[NodeId, None]] = {}
        #: Monotonically increasing mutation counter for cache invalidation.
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever nodes or edges are added/removed."""
        return self._version

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<PropertyGraph{label} nodes={self.node_count()} edges={self.edge_count()}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # ------------------------------------------------------------------ #
    # node operations
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_id: NodeId,
        *,
        kind: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
        replace: bool = False,
    ) -> Node:
        """Add a node and return it.

        Adding an existing id raises :class:`DuplicateNodeError` unless
        ``replace=True``, in which case the node's kind/features are replaced
        while its incident edges are preserved.
        """
        if node_id in self._nodes and not replace:
            raise DuplicateNodeError(node_id)
        node = Node(node_id=node_id, kind=kind, features=normalize_features(features))
        self._nodes[node_id] = node
        self._succ.setdefault(node_id, {})
        self._pred.setdefault(node_id, {})
        self._version += 1
        return node

    def ensure_node(self, node_id: NodeId, **kwargs: Any) -> Node:
        """Return the existing node or add it if missing (never raises on duplicates)."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        return self.add_node(node_id, **kwargs)

    def node(self, node_id: NodeId) -> Node:
        """Return the :class:`Node` for ``node_id`` (raises :class:`NodeNotFoundError`)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def has_node(self, node_id: NodeId) -> bool:
        """True when ``node_id`` is in the graph."""
        return node_id in self._nodes

    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    def node_ids(self) -> List[NodeId]:
        """All node ids, in insertion order."""
        return list(self._nodes.keys())

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def remove_node(self, node_id: NodeId) -> Node:
        """Remove a node and every incident edge; return the removed node."""
        node = self.node(node_id)
        for successor in list(self._succ.get(node_id, ())):
            self._drop_edge(node_id, successor)
        for predecessor in list(self._pred.get(node_id, ())):
            self._drop_edge(predecessor, node_id)
        self._succ.pop(node_id, None)
        self._pred.pop(node_id, None)
        del self._nodes[node_id]
        self._version += 1
        return node

    def set_node_features(self, node_id: NodeId, features: Mapping[str, Any]) -> Node:
        """Replace a node's features, keeping its edges; return the new node object."""
        node = self.node(node_id)
        updated = node.with_features(features)
        self._nodes[node_id] = updated
        self._version += 1
        return updated

    # ------------------------------------------------------------------ #
    # edge operations
    # ------------------------------------------------------------------ #
    def add_edge(
        self,
        source: NodeId,
        target: NodeId,
        *,
        label: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
        create_nodes: bool = False,
        replace: bool = False,
    ) -> Edge:
        """Add a directed edge ``source -> target`` and return it.

        With ``create_nodes=True`` missing endpoints are created on the fly
        (handy in builders and workload generators); otherwise missing
        endpoints raise :class:`NodeNotFoundError`.
        """
        if source == target:
            raise ValueError(f"self-loops are not supported (node {source!r})")
        if create_nodes:
            self.ensure_node(source)
            self.ensure_node(target)
        else:
            if source not in self._nodes:
                raise NodeNotFoundError(source)
            if target not in self._nodes:
                raise NodeNotFoundError(target)
        key = (source, target)
        if key in self._edges and not replace:
            raise DuplicateEdgeError(source, target)
        edge = Edge(source=source, target=target, label=label, features=normalize_features(features))
        self._edges[key] = edge
        self._succ[source][target] = None
        self._pred[target][source] = None
        self._version += 1
        return edge

    def add_bidirectional_edge(
        self,
        left: NodeId,
        right: NodeId,
        *,
        label: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
        create_nodes: bool = False,
    ) -> Tuple[Edge, Edge]:
        """Add both directions of an undirected relationship (paper, Section 2)."""
        forward = self.add_edge(left, right, label=label, features=features, create_nodes=create_nodes)
        backward = self.add_edge(right, left, label=label, features=features, create_nodes=create_nodes)
        return forward, backward

    def edge(self, source: NodeId, target: NodeId) -> Edge:
        """Return the edge ``source -> target`` (raises :class:`EdgeNotFoundError`)."""
        try:
            return self._edges[(source, target)]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """True when the directed edge ``source -> target`` exists."""
        return (source, target) in self._edges

    def has_link(self, left: NodeId, right: NodeId) -> bool:
        """True when an edge exists in either direction between the two nodes."""
        return self.has_edge(left, right) or self.has_edge(right, left)

    def edges(self) -> List[Edge]:
        """All edges, in insertion order."""
        return list(self._edges.values())

    def edge_keys(self) -> List[EdgeKey]:
        """All ``(source, target)`` pairs, in insertion order."""
        return list(self._edges.keys())

    def edge_count(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    def remove_edge(self, source: NodeId, target: NodeId) -> Edge:
        """Remove the edge ``source -> target`` and return it."""
        if (source, target) not in self._edges:
            raise EdgeNotFoundError(source, target)
        return self._drop_edge(source, target)

    def _drop_edge(self, source: NodeId, target: NodeId) -> Edge:
        edge = self._edges.pop((source, target))
        self._succ[source].pop(target, None)
        self._pred[target].pop(source, None)
        self._version += 1
        return edge

    # ------------------------------------------------------------------ #
    # adjacency queries
    # ------------------------------------------------------------------ #
    def successors(self, node_id: NodeId) -> Set[NodeId]:
        """Targets of out-edges of ``node_id`` (a fresh, mutation-safe set)."""
        self.node(node_id)
        return set(self._succ.get(node_id, ()))

    def predecessors(self, node_id: NodeId) -> Set[NodeId]:
        """Sources of in-edges of ``node_id`` (a fresh, mutation-safe set)."""
        self.node(node_id)
        return set(self._pred.get(node_id, ()))

    def neighbors(self, node_id: NodeId) -> Set[NodeId]:
        """Union of predecessors and successors (ignoring direction)."""
        self.node(node_id)
        return set(self._succ.get(node_id, ())) | set(self._pred.get(node_id, ()))

    def iter_successors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Zero-copy view of out-neighbours, in edge-insertion order.

        Unlike :meth:`successors` no set is allocated; the returned view
        reads the internal index directly, so the graph must not be mutated
        while it is being consumed.  This is the traversal-hot-path API.
        """
        self.node(node_id)
        return self._succ.get(node_id, _EMPTY_ADJACENCY).keys()

    def iter_predecessors(self, node_id: NodeId) -> Iterable[NodeId]:
        """Zero-copy view of in-neighbours, in edge-insertion order."""
        self.node(node_id)
        return self._pred.get(node_id, _EMPTY_ADJACENCY).keys()

    def iter_neighbors(self, node_id: NodeId) -> Iterator[NodeId]:
        """Distinct neighbours ignoring direction, successors first, no copies."""
        self.node(node_id)
        succ = self._succ.get(node_id, _EMPTY_ADJACENCY)
        yield from succ
        for predecessor in self._pred.get(node_id, _EMPTY_ADJACENCY):
            if predecessor not in succ:
                yield predecessor

    def out_edges(self, node_id: NodeId) -> List[Edge]:
        """Edges leaving ``node_id``, in edge-insertion order."""
        self.node(node_id)
        return [self._edges[(node_id, target)] for target in self._succ.get(node_id, ())]

    def in_edges(self, node_id: NodeId) -> List[Edge]:
        """Edges entering ``node_id``, in edge-insertion order."""
        self.node(node_id)
        return [self._edges[(source, node_id)] for source in self._pred.get(node_id, ())]

    def incident_edges(self, node_id: NodeId) -> List[Edge]:
        """All edges touching ``node_id`` (in either direction)."""
        return self.out_edges(node_id) + self.in_edges(node_id)

    def out_degree(self, node_id: NodeId) -> int:
        """Number of out-edges."""
        self.node(node_id)
        return len(self._succ.get(node_id, ()))

    def in_degree(self, node_id: NodeId) -> int:
        """Number of in-edges."""
        self.node(node_id)
        return len(self._pred.get(node_id, ()))

    def degree(self, node_id: NodeId) -> int:
        """Total degree (in + out).  A node linked both ways to the same peer counts twice."""
        return self.in_degree(node_id) + self.out_degree(node_id)

    def neighbor_count(self, node_id: NodeId) -> int:
        """Number of *distinct* neighbouring nodes, ignoring direction.

        This is the "connected nodes" count the paper's advanced-adversary
        focus probability is defined over (Figure 5: "0-1 connected nodes").
        """
        return len(self.neighbors(node_id))

    def isolated_nodes(self) -> List[NodeId]:
        """Ids of nodes with no incident edges."""
        return [node_id for node_id in self._nodes if not self._succ[node_id] and not self._pred[node_id]]

    # ------------------------------------------------------------------ #
    # whole-graph operations
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "PropertyGraph":
        """Deep-enough copy: new container, new feature dicts."""
        clone = PropertyGraph(name=name if name is not None else self.name)
        for node in self._nodes.values():
            clone.add_node(node.node_id, kind=node.kind, features=dict(node.features))
        for edge in self._edges.values():
            clone.add_edge(edge.source, edge.target, label=edge.label, features=dict(edge.features))
        return clone

    def subgraph(self, node_ids: Iterable[NodeId], name: Optional[str] = None) -> "PropertyGraph":
        """The induced subgraph over ``node_ids`` (unknown ids are ignored)."""
        keep = {node_id for node_id in node_ids if node_id in self._nodes}
        result = PropertyGraph(name=name)
        for node_id in self._nodes:
            if node_id in keep:
                node = self._nodes[node_id]
                result.add_node(node.node_id, kind=node.kind, features=dict(node.features))
        for (source, target), edge in self._edges.items():
            if source in keep and target in keep:
                result.add_edge(source, target, label=edge.label, features=dict(edge.features))
        return result

    def reverse(self, name: Optional[str] = None) -> "PropertyGraph":
        """A copy of the graph with every edge reversed."""
        result = PropertyGraph(name=name if name is not None else self.name)
        for node in self._nodes.values():
            result.add_node(node.node_id, kind=node.kind, features=dict(node.features))
        for edge in self._edges.values():
            result.add_edge(edge.target, edge.source, label=edge.label, features=dict(edge.features))
        return result
