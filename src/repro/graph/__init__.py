"""Property-graph substrate used by every other subsystem.

The paper models a graph as a set of nodes carrying *features*
(attribute-value pairs) connected by directed edges (Section 2).  This
package provides that model plus the traversal, path and statistics helpers
the protection algorithms and metrics need.

Public surface:

* :class:`repro.graph.model.PropertyGraph` — the graph container.
* :class:`repro.graph.model.Node` / :class:`repro.graph.model.Edge` —
  value objects returned by the container.
* :mod:`repro.graph.traversal` — reachability, connected components,
  connected pairs.
* :mod:`repro.graph.paths` — shortest paths and constrained path search.
* :mod:`repro.graph.builders` — fluent construction helpers.
* :mod:`repro.graph.serialization` — dict/JSON round-tripping.
* :mod:`repro.graph.algorithms` — DAG checks, topological sort, networkx
  interop.
* :mod:`repro.graph.statistics` — degree/connectivity summaries.
* :mod:`repro.graph.deltas` — typed mutation events (:class:`GraphDelta`),
  the :class:`DeltaBus` fan-out and the view-maintenance counters behind
  incremental view maintenance.
"""

from repro.graph.deltas import (
    DeltaBus,
    DeltaKind,
    GraphDelta,
    reset_view_maintenance_stats,
    view_maintenance_stats,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.graph.builders import GraphBuilder, graph_from_edges
from repro.graph.traversal import (
    ancestors,
    connected_pairs,
    descendants,
    is_weakly_connected,
    weakly_connected_components,
    weakly_reachable,
)
from repro.graph.paths import has_path, shortest_path, shortest_path_length
from repro.graph.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    load_graph,
    save_graph,
)

__all__ = [
    "PropertyGraph",
    "Node",
    "Edge",
    "GraphDelta",
    "DeltaKind",
    "DeltaBus",
    "view_maintenance_stats",
    "reset_view_maintenance_stats",
    "GraphBuilder",
    "graph_from_edges",
    "ancestors",
    "descendants",
    "weakly_reachable",
    "weakly_connected_components",
    "is_weakly_connected",
    "connected_pairs",
    "has_path",
    "shortest_path",
    "shortest_path_length",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "save_graph",
    "load_graph",
]
