"""Dict / JSON serialization for property graphs.

The embedded store (:mod:`repro.store`) persists graphs through these
functions; the CLI and examples use them to read and write graph files.
The format is intentionally boring and stable::

    {
      "name": "...",
      "nodes": [{"id": ..., "kind": ..., "features": {...}}, ...],
      "edges": [{"source": ..., "target": ..., "label": ..., "features": {...}}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import GraphError
from repro.graph.model import PropertyGraph

FORMAT_VERSION = 1


def graph_to_dict(graph: PropertyGraph) -> Dict[str, Any]:
    """Serialise a graph to a plain dict (JSON-compatible if ids/features are)."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {"id": node.node_id, "kind": node.kind, "features": dict(node.features)}
            for node in graph.nodes()
        ],
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "features": dict(edge.features),
            }
            for edge in graph.edges()
        ],
    }


def graph_from_dict(payload: Dict[str, Any]) -> PropertyGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if not isinstance(payload, dict) or "nodes" not in payload or "edges" not in payload:
        raise GraphError("payload is not a serialised PropertyGraph (missing 'nodes'/'edges')")
    graph = PropertyGraph(name=payload.get("name"))
    for node in payload["nodes"]:
        graph.add_node(node["id"], kind=node.get("kind"), features=node.get("features") or {})
    for edge in payload["edges"]:
        graph.add_edge(
            edge["source"],
            edge["target"],
            label=edge.get("label"),
            features=edge.get("features") or {},
        )
    return graph


def graph_to_json(graph: PropertyGraph, *, indent: int = 2) -> str:
    """Serialise a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=False, default=str)


def graph_from_json(text: str) -> PropertyGraph:
    """Rebuild a graph from :func:`graph_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid graph JSON: {exc}") from exc
    return graph_from_dict(payload)


def save_graph(graph: PropertyGraph, path: Union[str, Path]) -> Path:
    """Write a graph to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(graph_to_json(graph), encoding="utf-8")
    return path


def load_graph(path: Union[str, Path]) -> PropertyGraph:
    """Read a graph from a JSON file written by :func:`save_graph`."""
    path = Path(path)
    return graph_from_json(path.read_text(encoding="utf-8"))
