"""Fluent construction helpers for :class:`~repro.graph.model.PropertyGraph`.

Workload generators, tests and examples all build many small graphs; the
helpers here keep that construction declarative and uniform.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.graph.model import Edge, Node, NodeId, PropertyGraph

EdgeSpec = Union[Tuple[NodeId, NodeId], Tuple[NodeId, NodeId, str]]


class GraphBuilder:
    """Chainable builder for property graphs.

    Example
    -------
    >>> graph = (
    ...     GraphBuilder("triangle")
    ...     .node("a", kind="person")
    ...     .node("b")
    ...     .node("c")
    ...     .edge("a", "b")
    ...     .edge("b", "c")
    ...     .edge("a", "c")
    ...     .build()
    ... )
    >>> graph.edge_count()
    3
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._graph = PropertyGraph(name=name)

    def node(
        self,
        node_id: NodeId,
        *,
        kind: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
    ) -> "GraphBuilder":
        """Add one node (idempotent only if the node does not already exist)."""
        self._graph.add_node(node_id, kind=kind, features=features)
        return self

    def nodes(self, node_ids: Iterable[NodeId], *, kind: Optional[str] = None) -> "GraphBuilder":
        """Add many featureless nodes of one kind."""
        for node_id in node_ids:
            self._graph.add_node(node_id, kind=kind)
        return self

    def edge(
        self,
        source: NodeId,
        target: NodeId,
        *,
        label: Optional[str] = None,
        features: Optional[Mapping[str, Any]] = None,
    ) -> "GraphBuilder":
        """Add one directed edge, creating missing endpoints on the fly."""
        self._graph.add_edge(source, target, label=label, features=features, create_nodes=True)
        return self

    def edges(self, specs: Iterable[EdgeSpec]) -> "GraphBuilder":
        """Add many edges from ``(source, target)`` or ``(source, target, label)`` tuples."""
        for spec in specs:
            if len(spec) == 2:
                source, target = spec  # type: ignore[misc]
                label = None
            else:
                source, target, label = spec  # type: ignore[misc]
            self.edge(source, target, label=label)
        return self

    def chain(self, node_ids: Sequence[NodeId], *, label: Optional[str] = None) -> "GraphBuilder":
        """Add the path ``node_ids[0] -> node_ids[1] -> ...``."""
        for source, target in zip(node_ids, node_ids[1:]):
            self.edge(source, target, label=label)
        return self

    def star(self, center: NodeId, leaves: Sequence[NodeId], *, outward: bool = True) -> "GraphBuilder":
        """Add a star: edges from ``center`` to each leaf (or inward when ``outward=False``)."""
        for leaf in leaves:
            if outward:
                self.edge(center, leaf)
            else:
                self.edge(leaf, center)
        return self

    def build(self) -> PropertyGraph:
        """Return the constructed graph (the builder should not be reused afterwards)."""
        return self._graph


def graph_from_edges(
    edges: Iterable[EdgeSpec],
    *,
    nodes: Optional[Iterable[NodeId]] = None,
    name: Optional[str] = None,
) -> PropertyGraph:
    """Build a graph from an edge list (plus optional isolated ``nodes``)."""
    builder = GraphBuilder(name)
    if nodes is not None:
        for node_id in nodes:
            builder.node(node_id)
    builder.edges(edges)
    return builder.build()


def complete_dag(node_ids: Sequence[NodeId], *, name: Optional[str] = None) -> PropertyGraph:
    """A DAG with an edge from every earlier node to every later node (by position)."""
    graph = PropertyGraph(name=name)
    for node_id in node_ids:
        graph.add_node(node_id)
    for i, source in enumerate(node_ids):
        for target in node_ids[i + 1 :]:
            graph.add_edge(source, target)
    return graph


def layered_graph(
    layers: Sequence[Sequence[NodeId]],
    *,
    dense: bool = True,
    name: Optional[str] = None,
) -> PropertyGraph:
    """A layered DAG with edges from each layer to the next.

    With ``dense=True`` every node connects to every node of the next layer;
    otherwise node ``i`` connects to node ``i % len(next_layer)``.
    """
    graph = PropertyGraph(name=name)
    for layer in layers:
        for node_id in layer:
            graph.add_node(node_id)
    for upper, lower in zip(layers, layers[1:]):
        if dense:
            for source in upper:
                for target in lower:
                    graph.add_edge(source, target)
        else:
            for index, source in enumerate(upper):
                graph.add_edge(source, lower[index % len(lower)])
    return graph
