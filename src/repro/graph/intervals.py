"""Pre/post-order interval encoding of a graph's DFS forest.

The XPath-accelerator technique: number every node with its preorder rank
``pre``, its postorder rank ``post`` and its DFS depth ``level``.  Within
the DFS *forest* those two ranks characterise ancestry as a pure range
predicate::

    u is a forest ancestor of v   iff   u.pre < v.pre  and  v.post < u.post

which a database can answer with an indexed range scan instead of a graph
walk.  A general digraph is not a forest, so the encoding also keeps the
**extra edges** — every edge the DFS did not use as a tree edge (forward,
back and cross edges).  Exact reachability then becomes a small fixpoint
over *intervals*: start from the source node's ``(pre, post)`` interval and
repeatedly add the interval of every extra edge whose source lies inside an
already-reached interval; the answer is the union of the reached intervals.
The fixpoint touches one interval per extra-edge expansion — usually a
handful — while the range predicate does the heavy lifting, so the SQLite
engine (:mod:`repro.store.sqlite`) can serve ancestor/descendant closures
as recursive-CTE range scans over ``(pre, post)`` columns without loading
the graph into Python at all.

Ancestor queries use a second encoding of the *reversed* graph (``rpre``,
``rpost``, ``rlevel``), because "ancestors of n" is "descendants of n over
reversed edges".

Delta maintenance
-----------------
:class:`IntervalIndex` subscribes to :class:`~repro.graph.deltas.GraphDelta`
events (see :meth:`IntervalIndex.apply_delta`): feature-only deltas carry
the encoding forward unchanged — re-labelling a node cannot change
reachability — while structural deltas mark it dirty so the next query
re-encodes lazily.  That mirrors how the compiled views maintain themselves
and is what keeps `EditSession` edit loops from re-encoding on every
feature tweak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.graph.deltas import DeltaKind, GraphDelta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.model import NodeId, PropertyGraph

#: Delta kinds that cannot change reachability: the encoding survives them.
_FEATURE_ONLY_KINDS = frozenset(
    {DeltaKind.SET_NODE_FEATURES, DeltaKind.REPLACE_NODE, DeltaKind.REPLACE_EDGE}
)


@dataclass
class IntervalForest:
    """One direction's encoding: ranks per node plus the non-tree edges."""

    pre: Dict["NodeId", int] = field(default_factory=dict)
    post: Dict["NodeId", int] = field(default_factory=dict)
    level: Dict["NodeId", int] = field(default_factory=dict)
    #: Edges the DFS skipped because the head was already discovered, in
    #: walk direction (forward/back/cross edges of the DFS forest).
    extra_edges: List[Tuple["NodeId", "NodeId"]] = field(default_factory=list)

    def contains(self, ancestor: "NodeId", node: "NodeId") -> bool:
        """Forest ancestor-or-self test via the range predicate."""
        return (
            self.pre[ancestor] <= self.pre[node]
            and self.post[node] <= self.post[ancestor]
        )

    def reachable(self, start: "NodeId") -> Set["NodeId"]:
        """Exact reachable-from closure (excluding ``start``) via intervals.

        This is the pure-Python mirror of the SQL recursive CTE the SQLite
        engine runs; the differential suite pins both against the BFS in
        :mod:`repro.graph.traversal`.
        """
        if start not in self.pre:
            return set()
        reached: List[Tuple[int, int]] = [(self.pre[start], self.post[start])]
        seen_intervals = {reached[0]}
        frontier = [reached[0]]
        while frontier:
            lo, hi = frontier.pop()
            for source, target in self.extra_edges:
                if lo <= self.pre[source] and self.post[source] <= hi:
                    interval = (self.pre[target], self.post[target])
                    if interval not in seen_intervals:
                        seen_intervals.add(interval)
                        reached.append(interval)
                        frontier.append(interval)
        out: Set["NodeId"] = set()
        for node, rank in self.pre.items():
            node_post = self.post[node]
            for lo, hi in reached:
                if lo <= rank and node_post <= hi:
                    out.add(node)
                    break
        out.discard(start)
        return out


def encode_forest(graph: "PropertyGraph", *, reverse: bool = False) -> IntervalForest:
    """DFS-forest interval encoding of ``graph`` (or its reverse).

    Roots are taken in node insertion order and children are scanned in
    adjacency insertion order, so the encoding is deterministic for a given
    graph construction history.
    """
    forest = IntervalForest()
    neighbors = graph.iter_predecessors if reverse else graph.iter_successors
    pre_counter = 0
    post_counter = 0
    for root in graph:
        if root in forest.pre:
            continue
        forest.pre[root] = pre_counter
        pre_counter += 1
        forest.level[root] = 0
        stack: List[Tuple["NodeId", int, object]] = [
            (root, 0, iter(list(neighbors(root))))
        ]
        while stack:
            node, depth, scan = stack[-1]
            descended = False
            for child in scan:  # type: ignore[attr-defined]
                if child not in forest.pre:
                    forest.pre[child] = pre_counter
                    pre_counter += 1
                    forest.level[child] = depth + 1
                    stack.append((child, depth + 1, iter(list(neighbors(child)))))
                    descended = True
                    break
                forest.extra_edges.append((node, child))
            if not descended:
                forest.post[node] = post_counter
                post_counter += 1
                stack.pop()
    return forest


class IntervalIndex:
    """Forward + reverse interval encodings of one graph, delta-maintained.

    The owner (the SQLite storage engine, or anything else that wants
    range-scan reachability) builds one index per graph and feeds it the
    graph's deltas; :meth:`refresh` re-encodes only when a structural delta
    invalidated the ranks or when the version drifted outside the delta
    stream (e.g. mutations made before the index subscribed).
    """

    __slots__ = ("forward", "reverse", "version", "revision", "encodes", "_dirty")

    def __init__(self, graph: "PropertyGraph") -> None:
        self.forward = encode_forest(graph)
        self.reverse = encode_forest(graph, reverse=True)
        self.version = graph.version
        #: Bumped on every re-encode; storage layers key persisted interval
        #: rows on it to know when the tables need rewriting.
        self.revision = 0
        #: Total full re-encodes this index has paid (both directions count
        #: as one), including the one in this constructor.  The batching
        #: regression test asserts a burst of edits costs one, not N.
        self.encodes = 1
        self._dirty = False

    @property
    def dirty(self) -> bool:
        """True when a structural delta invalidated the current ranks."""
        return self._dirty

    def stale_for(self, graph: "PropertyGraph") -> bool:
        """True when :meth:`refresh` against ``graph`` would re-encode."""
        return self._dirty or self.version != graph.version

    def apply_delta(self, delta: GraphDelta) -> bool:
        """Advance the index over one delta; False when it went stale.

        Feature-only deltas (including batches of them) keep the encoding
        valid — only the version stamp moves.  Anything that adds or removes
        nodes or edges marks the index dirty; the next :meth:`refresh`
        re-encodes.  ``REPLACE_EDGE`` keeps both endpoints, so it is
        feature-only for reachability purposes.
        """
        kinds = {sub.kind for sub in delta.flatten()} or {delta.kind}
        if kinds <= _FEATURE_ONLY_KINDS:
            self.version = delta.post_version
            return not self._dirty
        self._dirty = True
        self.version = delta.post_version
        return False

    def refresh(self, graph: "PropertyGraph") -> bool:
        """Re-encode if needed; returns True when a re-encode happened.

        While a ``graph.batch()`` is open this is a deliberate no-op even
        when stale: the batch commits as one composite delta, and refreshing
        mid-batch would re-encode once per sub-edit — exactly the burst
        behaviour the batching is there to coalesce.  The index stays dirty
        and the first refresh after the batch closes pays one encode.
        """
        if not self._dirty and self.version == graph.version:
            return False
        if graph.in_batch:
            return False
        self.forward = encode_forest(graph)
        self.reverse = encode_forest(graph, reverse=True)
        self.version = graph.version
        self.revision += 1
        self.encodes += 1
        self._dirty = False
        return True

    def descendants(self, node: "NodeId") -> Set["NodeId"]:
        """Reachable-from closure (excluding ``node``) via forward intervals."""
        return self.forward.reachable(node)

    def ancestors(self, node: "NodeId") -> Set["NodeId"]:
        """Reaching-to closure (excluding ``node``) via reverse intervals."""
        return self.reverse.reachable(node)


def attach_interval_maintenance(
    graph: "PropertyGraph", index: IntervalIndex
) -> Optional[int]:
    """Subscribe ``index`` to ``graph``'s deltas; returns the token.

    A convenience for owners that hold the graph and the index together
    (the SQLite engine). The subscription is a bound method, which the
    graph holds weakly — dropping the index unsubscribes it naturally.
    """

    def _listen(_graph: "PropertyGraph", delta: GraphDelta) -> None:
        index.apply_delta(delta)

    # Closures are held strongly by the graph; keep a reference on the
    # index so unsubscribing remains possible via the returned token.
    return graph.subscribe(_listen)
