"""Shortest paths and constrained path search.

The Surrogate Generation Algorithm needs more than vanilla shortest paths:
an *HW-permitted* path (paper Definition 8) constrains the markings of the
first and last node-edge incidences and forbids Hide markings anywhere on
the path.  The generic machinery here exposes hooks for those constraints so
:mod:`repro.core.generation` can stay focused on policy, not BFS plumbing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.model import NodeId, PropertyGraph

#: A filter deciding whether traversal may use edge (source, target).
EdgeFilter = Callable[[NodeId, NodeId], bool]


def _check_nodes(graph: PropertyGraph, *node_ids: NodeId) -> None:
    for node_id in node_ids:
        if not graph.has_node(node_id):
            raise NodeNotFoundError(node_id)


def has_path(
    graph: PropertyGraph,
    source: NodeId,
    target: NodeId,
    *,
    directed: bool = True,
    edge_filter: Optional[EdgeFilter] = None,
) -> bool:
    """True when a (possibly constrained) path exists from ``source`` to ``target``."""
    return shortest_path(graph, source, target, directed=directed, edge_filter=edge_filter) is not None


def shortest_path_length(
    graph: PropertyGraph,
    source: NodeId,
    target: NodeId,
    *,
    directed: bool = True,
    edge_filter: Optional[EdgeFilter] = None,
) -> Optional[int]:
    """Length (edge count) of the shortest path, or ``None`` when unreachable."""
    path = shortest_path(graph, source, target, directed=directed, edge_filter=edge_filter)
    if path is None:
        return None
    return len(path) - 1


def shortest_path(
    graph: PropertyGraph,
    source: NodeId,
    target: NodeId,
    *,
    directed: bool = True,
    edge_filter: Optional[EdgeFilter] = None,
) -> Optional[List[NodeId]]:
    """One shortest path from ``source`` to ``target`` as a node list, or ``None``.

    ``edge_filter(u, v)`` may veto individual directed edges; for undirected
    search the filter is consulted with the edge's stored orientation.
    """
    _check_nodes(graph, source, target)
    if source == target:
        return [source]
    parents: Dict[NodeId, NodeId] = {}
    seen: Set[NodeId] = {source}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbor in _steps(graph, current, directed, edge_filter):
            if neighbor in seen:
                continue
            seen.add(neighbor)
            parents[neighbor] = current
            if neighbor == target:
                return _reconstruct(parents, source, target)
            frontier.append(neighbor)
    return None


def single_source_shortest_lengths(
    graph: PropertyGraph,
    source: NodeId,
    *,
    directed: bool = True,
    edge_filter: Optional[EdgeFilter] = None,
) -> Dict[NodeId, int]:
    """Shortest-path length from ``source`` to every reachable node (including itself: 0)."""
    _check_nodes(graph, source)
    lengths: Dict[NodeId, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        for neighbor in _steps(graph, current, directed, edge_filter):
            if neighbor not in lengths:
                lengths[neighbor] = lengths[current] + 1
                frontier.append(neighbor)
    return lengths


def all_shortest_paths(
    graph: PropertyGraph,
    source: NodeId,
    target: NodeId,
    *,
    directed: bool = True,
    edge_filter: Optional[EdgeFilter] = None,
    limit: int = 1000,
) -> List[List[NodeId]]:
    """Every shortest path between two nodes (up to ``limit`` paths)."""
    _check_nodes(graph, source, target)
    if source == target:
        return [[source]]
    # BFS recording all shortest-parents, then reconstruct by backtracking.
    level: Dict[NodeId, int] = {source: 0}
    parents: Dict[NodeId, List[NodeId]] = {source: []}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        if target in level and level[current] >= level[target]:
            continue
        for neighbor in _steps(graph, current, directed, edge_filter):
            if neighbor not in level:
                level[neighbor] = level[current] + 1
                parents[neighbor] = [current]
                frontier.append(neighbor)
            elif level[neighbor] == level[current] + 1:
                parents[neighbor].append(current)
    if target not in level:
        return []
    paths: List[List[NodeId]] = []
    stack: List[Tuple[NodeId, List[NodeId]]] = [(target, [target])]
    while stack and len(paths) < limit:
        node, suffix = stack.pop()
        if node == source:
            paths.append(list(reversed(suffix)))
            continue
        for parent in parents[node]:
            stack.append((parent, suffix + [parent]))
    return paths


def simple_paths(
    graph: PropertyGraph,
    source: NodeId,
    target: NodeId,
    *,
    directed: bool = True,
    edge_filter: Optional[EdgeFilter] = None,
    max_length: Optional[int] = None,
    limit: int = 10000,
) -> List[List[NodeId]]:
    """All simple paths from ``source`` to ``target`` (bounded by ``max_length`` edges).

    Exponential in the worst case; intended for the paper-scale graphs used
    in tests and the motif experiments, with ``limit`` as a safety valve.
    """
    _check_nodes(graph, source, target)
    results: List[List[NodeId]] = []
    path: List[NodeId] = [source]
    on_path: Set[NodeId] = {source}

    def _extend(current: NodeId) -> None:
        if len(results) >= limit:
            return
        if current == target:
            results.append(list(path))
            return
        if max_length is not None and len(path) - 1 >= max_length:
            return
        for neighbor in _steps(graph, current, directed, edge_filter):
            if neighbor in on_path:
                continue
            path.append(neighbor)
            on_path.add(neighbor)
            _extend(neighbor)
            on_path.discard(neighbor)
            path.pop()

    if source == target:
        return [[source]]
    _extend(source)
    return results


def path_exists_for_pairs(
    graph: PropertyGraph,
    pairs: Sequence[Tuple[NodeId, NodeId]],
    *,
    directed: bool = True,
) -> Dict[Tuple[NodeId, NodeId], bool]:
    """Vectorised :func:`has_path` over many (source, target) pairs."""
    cache: Dict[NodeId, Set[NodeId]] = {}
    results: Dict[Tuple[NodeId, NodeId], bool] = {}
    for source, target in pairs:
        if source not in cache:
            cache[source] = set(single_source_shortest_lengths(graph, source, directed=directed))
        results[(source, target)] = target in cache[source]
    return results


def _steps(
    graph: PropertyGraph,
    current: NodeId,
    directed: bool,
    edge_filter: Optional[EdgeFilter],
) -> List[NodeId]:
    """Neighbours reachable in one step, respecting direction and the edge filter."""
    candidates: List[Tuple[NodeId, NodeId, NodeId]] = []
    for successor in graph.iter_successors(current):
        candidates.append((current, successor, successor))
    if not directed:
        for predecessor in graph.iter_predecessors(current):
            candidates.append((predecessor, current, predecessor))
    steps: List[NodeId] = []
    for edge_source, edge_target, next_node in candidates:
        if edge_filter is not None and not edge_filter(edge_source, edge_target):
            continue
        steps.append(next_node)
    return steps


def _reconstruct(parents: Dict[NodeId, NodeId], source: NodeId, target: NodeId) -> List[NodeId]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path
