"""Reachability and connectivity primitives.

The Path Utility Measure (paper Section 4.1) counts, for each node, how many
other nodes it is *connected to by a path of any length*.  The paper's worked
example (Figure 1c: ``%P(b') = 1/10``, ``%P(h') = 3/10``, overall utility
0.13) is only consistent with connectivity that ignores edge direction, so
:func:`weakly_reachable` / :func:`connected_pairs` are the measure's
backbone.  Directed reachability (:func:`descendants` / :func:`ancestors`)
backs the provenance lineage queries.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set

from repro.graph.model import NodeId, PropertyGraph


def descendants(graph: PropertyGraph, node_id: NodeId) -> Set[NodeId]:
    """All nodes reachable from ``node_id`` following edge direction (excluding itself)."""
    return _directed_reach(graph, node_id, graph.iter_successors)


def ancestors(graph: PropertyGraph, node_id: NodeId) -> Set[NodeId]:
    """All nodes that can reach ``node_id`` following edge direction (excluding itself)."""
    return _directed_reach(graph, node_id, graph.iter_predecessors)


def _directed_reach(
    graph: PropertyGraph, node_id: NodeId, step: Callable[[NodeId], Iterable[NodeId]]
) -> Set[NodeId]:
    graph.node(node_id)
    seen: Set[NodeId] = set()
    frontier = deque([node_id])
    while frontier:
        current = frontier.popleft()
        for neighbor in step(current):
            if neighbor not in seen and neighbor != node_id:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def weakly_reachable(graph: PropertyGraph, node_id: NodeId) -> Set[NodeId]:
    """All nodes connected to ``node_id`` by a path of any length, ignoring direction.

    Excludes ``node_id`` itself: this is exactly the numerator/denominator
    population of the paper's ``%P`` path percentage.
    """
    graph.node(node_id)
    seen: Set[NodeId] = {node_id}
    frontier = deque([node_id])
    while frontier:
        current = frontier.popleft()
        for neighbor in graph.iter_neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    seen.discard(node_id)
    return seen


def weakly_connected_components(graph: PropertyGraph) -> List[Set[NodeId]]:
    """The weakly connected components, each as a set of node ids.

    A single O(V + E) sweep in node-insertion order; each node is visited
    exactly once.  This is the backbone of the component-based Path Utility
    computation in :mod:`repro.core.utility`.
    """
    assigned: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for start in graph.node_ids():
        if start in assigned:
            continue
        component: Set[NodeId] = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for neighbor in graph.iter_neighbors(current):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        assigned |= component
        components.append(component)
    return components


def is_weakly_connected(graph: PropertyGraph) -> bool:
    """True when the graph has at most one weakly connected component."""
    if graph.node_count() <= 1:
        return True
    return len(weakly_connected_components(graph)) == 1


def connected_pairs(graph: PropertyGraph) -> Dict[NodeId, int]:
    """For each node, the number of other nodes in its weak component.

    The synthetic-graph experiment (Section 6.1.2) characterises graphs by
    the average number of *connected pairs* per node; this function provides
    that statistic and is also the vectorised form of ``%P``'s counts.
    """
    counts: Dict[NodeId, int] = {}
    for component in weakly_connected_components(graph):
        size = len(component) - 1
        for node_id in component:
            counts[node_id] = size
    return counts


def average_connected_pairs(graph: PropertyGraph) -> float:
    """Mean number of connected pairs per node (0.0 for the empty graph)."""
    counts = connected_pairs(graph)
    if not counts:
        return 0.0
    return sum(counts.values()) / len(counts)


def component_of(graph: PropertyGraph, node_id: NodeId) -> FrozenSet[NodeId]:
    """The weak component containing ``node_id`` (including the node itself)."""
    return frozenset(weakly_reachable(graph, node_id) | {node_id})


def bfs_layers(graph: PropertyGraph, start: NodeId, *, directed: bool = True) -> List[Set[NodeId]]:
    """Breadth-first layers from ``start`` (layer 0 is ``{start}``).

    With ``directed=False`` the traversal ignores edge direction.  Used by
    workload generators and by tests that cross-check shortest-path code.
    """
    graph.node(start)
    step = graph.iter_successors if directed else graph.iter_neighbors
    layers: List[Set[NodeId]] = [{start}]
    seen: Set[NodeId] = {start}
    while True:
        next_layer: Set[NodeId] = set()
        for node_id in layers[-1]:
            for neighbor in step(node_id):
                if neighbor not in seen:
                    next_layer.add(neighbor)
                    seen.add(neighbor)
        if not next_layer:
            break
        layers.append(next_layer)
    return layers


def reachable_subgraph(
    graph: PropertyGraph,
    roots: Iterable[NodeId],
    *,
    direction: str = "forward",
    name: Optional[str] = None,
) -> PropertyGraph:
    """The induced subgraph over everything reachable from ``roots``.

    ``direction`` is ``"forward"`` (descendants), ``"backward"`` (ancestors)
    or ``"both"`` (weak reachability).  The roots themselves are always
    included.  This is the shape of a provenance lineage query result.
    """
    if direction not in {"forward", "backward", "both"}:
        raise ValueError(f"direction must be 'forward', 'backward' or 'both', got {direction!r}")
    keep: Set[NodeId] = set()
    for root in roots:
        keep.add(root)
        if direction == "forward":
            keep |= descendants(graph, root)
        elif direction == "backward":
            keep |= ancestors(graph, root)
        else:
            keep |= weakly_reachable(graph, root)
    return graph.subgraph(keep, name=name)
