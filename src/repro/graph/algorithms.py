"""Whole-graph algorithms: DAG checks, topological order and networkx interop.

Provenance graphs are DAGs ("annotated causality graph, which is a directed
acyclic graph" — paper footnote 1), so the provenance substrate validates
acyclicity with :func:`is_acyclic`.  ``networkx`` is optional and only used
for cross-checking and export; the library never requires it at runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.exceptions import GraphError
from repro.graph.model import NodeId, PropertyGraph


def is_acyclic(graph: PropertyGraph) -> bool:
    """True when the directed graph contains no cycle."""
    return topological_sort(graph, strict=False) is not None


def topological_sort(graph: PropertyGraph, *, strict: bool = True) -> Optional[List[NodeId]]:
    """Kahn's algorithm.

    Returns a topological order of the node ids.  On a cyclic graph, raises
    :class:`GraphError` when ``strict`` (the default) or returns ``None``
    otherwise.
    """
    in_degree: Dict[NodeId, int] = {node_id: graph.in_degree(node_id) for node_id in graph.node_ids()}
    ready = [node_id for node_id, degree in in_degree.items() if degree == 0]
    order: List[NodeId] = []
    while ready:
        current = ready.pop()
        order.append(current)
        for successor in graph.successors(current):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != graph.node_count():
        if strict:
            raise GraphError("graph contains a cycle; topological sort is undefined")
        return None
    return order


def find_cycle(graph: PropertyGraph) -> Optional[List[NodeId]]:
    """Return one directed cycle as a node list (first == last), or ``None``."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[NodeId, int] = {node_id: WHITE for node_id in graph.node_ids()}
    parent: Dict[NodeId, Optional[NodeId]] = {}

    for root in graph.node_ids():
        if color[root] != WHITE:
            continue
        stack: List[tuple] = [(root, iter(sorted(graph.successors(root), key=repr)))]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if color[successor] == WHITE:
                    color[successor] = GRAY
                    parent[successor] = node
                    stack.append((successor, iter(sorted(graph.successors(successor), key=repr))))
                    advanced = True
                    break
                if color[successor] == GRAY:
                    # Found a back edge node -> successor: rebuild the cycle.
                    cycle = [node]
                    while cycle[-1] != successor:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def density(graph: PropertyGraph) -> float:
    """Directed density: edges / (n * (n - 1)).  Zero for graphs with < 2 nodes."""
    n = graph.node_count()
    if n < 2:
        return 0.0
    return graph.edge_count() / (n * (n - 1))


def roots(graph: PropertyGraph) -> Set[NodeId]:
    """Nodes with no incoming edges."""
    return {node_id for node_id in graph.node_ids() if graph.in_degree(node_id) == 0}


def leaves(graph: PropertyGraph) -> Set[NodeId]:
    """Nodes with no outgoing edges."""
    return {node_id for node_id in graph.node_ids() if graph.out_degree(node_id) == 0}


def to_networkx(graph: PropertyGraph):
    """Export to a ``networkx.DiGraph`` (requires networkx to be installed)."""
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - exercised only without networkx
        raise GraphError("networkx is not installed; install repro[networkx]") from exc
    digraph = nx.DiGraph(name=graph.name or "")
    for node in graph.nodes():
        digraph.add_node(node.node_id, kind=node.kind, **dict(node.features))
    for edge in graph.edges():
        digraph.add_edge(edge.source, edge.target, label=edge.label, **dict(edge.features))
    return digraph


def from_networkx(digraph, *, name: Optional[str] = None) -> PropertyGraph:
    """Import from a ``networkx.DiGraph`` (node/edge attributes become features)."""
    graph = PropertyGraph(name=name)
    for node_id, data in digraph.nodes(data=True):
        attributes = dict(data)
        kind = attributes.pop("kind", None)
        graph.add_node(node_id, kind=kind, features=attributes)
    for source, target, data in digraph.edges(data=True):
        attributes = dict(data)
        label = attributes.pop("label", None)
        graph.add_edge(source, target, label=label, features=attributes)
    return graph
