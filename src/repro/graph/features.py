"""Node and edge features (attribute-value pairs).

Section 2 of the paper: "Nodes have features, such as timestamp, author,
etc., modeled as attribute-value pairs."  Features are plain mappings from
attribute name to value; this module adds the small amount of behaviour the
rest of the library needs on top of a dict:

* defensive copying so graphs cannot be mutated through shared dicts,
* similarity scoring between an original node's features and a surrogate's
  features, which backs the default ``infoScore`` (Section 4.1),
* redaction helpers used when deriving surrogates programmatically.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional


def normalize_features(features: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Return a fresh ``dict`` copy of ``features`` (empty dict for ``None``).

    Raises ``TypeError`` when a non-mapping is supplied so that mistakes such
    as ``add_node("a", ["x"])`` fail loudly instead of producing a corrupt
    graph.
    """
    if features is None:
        return {}
    if not isinstance(features, Mapping):
        raise TypeError(
            f"features must be a mapping of attribute name to value, got {type(features).__name__}"
        )
    return dict(features)


def features_equal(left: Mapping[str, Any], right: Mapping[str, Any]) -> bool:
    """True when both feature mappings contain exactly the same items."""
    return dict(left) == dict(right)


def feature_overlap(original: Mapping[str, Any], candidate: Mapping[str, Any]) -> float:
    """Fraction of the original node's features preserved exactly by ``candidate``.

    This is the library's default ``infoScore`` heuristic (the paper leaves
    ``infoScore`` provider-defined and suggests defaults based on
    completeness): a surrogate that keeps 2 of 4 original attribute-value
    pairs scores 0.5.  An original node compared with itself scores 1.0, and
    a node with no features is considered fully preserved by any candidate
    (score 1.0) because there is nothing to lose.
    """
    original = dict(original)
    candidate = dict(candidate)
    if not original:
        return 1.0
    preserved = sum(
        1 for name, value in original.items() if name in candidate and candidate[name] == value
    )
    return preserved / len(original)


def redact_features(
    features: Mapping[str, Any],
    *,
    keep: Optional[Iterable[str]] = None,
    drop: Optional[Iterable[str]] = None,
    replacements: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Derive a less-detailed feature mapping for a surrogate node.

    Parameters
    ----------
    features:
        The original node's features.
    keep:
        If given, only these attribute names survive.
    drop:
        Attribute names removed after the ``keep`` filter.
    replacements:
        Attribute values overridden (e.g. ``{"substance": "illegal substance"}``
        replacing ``"heroin"``), mirroring the paper's example of a coarser
        surrogate value.
    """
    result = dict(features)
    if keep is not None:
        keep_set = set(keep)
        result = {name: value for name, value in result.items() if name in keep_set}
    if drop is not None:
        for name in drop:
            result.pop(name, None)
    if replacements:
        for name, value in replacements.items():
            if name in result or keep is None:
                result[name] = value
    return result


def merge_features(base: Mapping[str, Any], extra: Mapping[str, Any]) -> Dict[str, Any]:
    """Return a new mapping with ``extra`` overriding ``base``."""
    merged = dict(base)
    merged.update(extra)
    return merged
