"""Typed graph mutation events and the fan-out bus caches subscribe to.

Every mutator of :class:`~repro.graph.model.PropertyGraph` describes itself
as a :class:`GraphDelta` — *which* node or edge changed, the pre/post values,
and the graph version the change took the graph from and to.  Deltas are the
contract the incremental-maintenance layer is built on:

* compiled views (:class:`~repro.core.markings.CompiledMarkingView`,
  :class:`~repro.core.opacity.CompiledOpacityView`) patch themselves in
  O(affected) via their ``apply_delta`` methods instead of recompiling O(V)
  state on every version bump;
* :class:`~repro.core.permitted.VisibleWalkCache` evicts only the walks
  whose traversal region a delta can intersect;
* serving caches (:class:`~repro.api.cache.AccountCache`,
  :class:`~repro.core.opacity.OpacityViewCache`) subscribe through a shared
  :class:`DeltaBus` and perform delta-scoped eviction / re-keying.

Delta emission is *opt-in* per graph: until someone subscribes or enables
the delta log, mutators skip event construction entirely, so throwaway
graphs (protected-account graphs built once and never edited, workload
generators, ``copy()`` targets) pay nothing.  Call
:meth:`~repro.graph.model.PropertyGraph.enable_delta_log` — or let a
:class:`DeltaBus` attach — to start recording.  Note that a
:class:`~repro.api.service.ProtectionService` attaches every graph it
serves (bound or per-request), so served graphs are tracked from first use
on; that is the price of delta-scoped cache invalidation and it is
deliberate.

Maintenance accounting
----------------------
Every maintainer records which path served it — a delta patch or a full
recompile — in a process-wide counter table read through
:func:`view_maintenance_stats`.  Benchmarks and tests use it to prove the
delta path actually ran (and the differential suite uses it to prove the
fallback ran where it must).
"""

from __future__ import annotations

import enum
import threading
import weakref
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.graph.model import Edge, Node, PropertyGraph


class DeltaKind(enum.Enum):
    """What one :class:`GraphDelta` did to the graph."""

    ADD_NODE = "add_node"
    REPLACE_NODE = "replace_node"
    REMOVE_NODE = "remove_node"
    SET_NODE_FEATURES = "set_node_features"
    ADD_EDGE = "add_edge"
    REPLACE_EDGE = "replace_edge"
    REMOVE_EDGE = "remove_edge"
    BATCH = "batch"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class GraphDelta:
    """One typed mutation event, with pre/post graph versions.

    Attributes
    ----------
    kind:
        The :class:`DeltaKind` of the mutation.
    pre_version / post_version:
        The graph's version counter immediately before and after the
        mutation.  Top-level deltas form a contiguous chain (``post`` of one
        equals ``pre`` of the next), which is what lets a stale view decide
        whether a sequence of deltas can carry it to the present.  Sub-deltas
        inside a :attr:`DeltaKind.BATCH` carry the batch's ``pre_version``
        in both fields — the batch commits as one version bump.
    node / old_node:
        Post- and pre-state :class:`~repro.graph.model.Node` values for
        node-level kinds (``old_node`` is the removed/replaced node).
    edge / old_edge:
        Post- and pre-state :class:`~repro.graph.model.Edge` values for
        edge-level kinds.
    removed_edges:
        For ``REMOVE_NODE``: every incident edge dropped with the node, in
        removal order (out-edges first).
    deltas:
        For ``BATCH``: the coalesced sub-deltas, in application order.
    """

    kind: DeltaKind
    pre_version: int
    post_version: int
    node: Optional["Node"] = None
    old_node: Optional["Node"] = None
    edge: Optional["Edge"] = None
    old_edge: Optional["Edge"] = None
    removed_edges: Tuple["Edge", ...] = ()
    deltas: Tuple["GraphDelta", ...] = field(default=())

    def flatten(self) -> Iterator["GraphDelta"]:
        """This delta's primitive events, recursing through batches."""
        if self.kind is DeltaKind.BATCH:
            for sub in self.deltas:
                yield from sub.flatten()
        else:
            yield self

    def edge_changes(self) -> Iterator[Tuple[bool, "Edge"]]:
        """Every ``(added, edge)`` structural edge change, batches flattened.

        ``REPLACE_EDGE`` yields a removal of the old edge followed by an
        addition of the new one; ``REMOVE_NODE`` yields one removal per
        dropped incident edge.  Node-only deltas yield nothing.
        """
        for delta in self.flatten():
            if delta.kind is DeltaKind.ADD_EDGE:
                yield True, delta.edge
            elif delta.kind is DeltaKind.REMOVE_EDGE:
                yield False, delta.old_edge
            elif delta.kind is DeltaKind.REPLACE_EDGE:
                yield False, delta.old_edge
                yield True, delta.edge
            elif delta.kind is DeltaKind.REMOVE_NODE:
                for edge in delta.removed_edges:
                    yield False, edge

    def touches_nodes_structurally(self) -> bool:
        """True when the delta adds or removes nodes (not just edges/features)."""
        return any(
            delta.kind in (DeltaKind.ADD_NODE, DeltaKind.REMOVE_NODE)
            for delta in self.flatten()
        )


#: Signature of a delta subscriber: ``listener(graph, delta)``.
DeltaListener = Callable[["PropertyGraph", GraphDelta], None]


class DeltaBus:
    """Fans one graph's deltas out to many cache maintainers.

    A bus sits between graphs and the caches that maintain derived state
    over them: the owner (typically a
    :class:`~repro.api.service.ProtectionService`) registers its caches as
    listeners once, then :meth:`attach`\\ es every graph it serves.  Each
    mutation reaches every listener exactly once, as
    ``listener(graph, delta)``.

    Graphs hold their subscription to the bus weakly (see
    :meth:`~repro.graph.model.PropertyGraph.subscribe`), so a bus — and the
    service caches behind it — can be garbage-collected even while
    long-lived graphs it once attached are still alive.
    """

    def __init__(self) -> None:
        self._listeners: Dict[int, DeltaListener] = {}
        self._next_token = 0
        self._lock = threading.Lock()
        self._journal: Optional[Deque[Tuple[int, object, GraphDelta]]] = None
        self._journal_seq = 0
        self._journal_dropped = 0

    def subscribe(self, listener: DeltaListener) -> int:
        """Register a listener; returns a token for :meth:`unsubscribe`."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._listeners[token] = listener
            return token

    def unsubscribe(self, token: int) -> None:
        """Drop one listener (unknown tokens are ignored)."""
        with self._lock:
            self._listeners.pop(token, None)

    def dispatch(self, graph: "PropertyGraph", delta: GraphDelta) -> None:
        """Deliver one delta to every listener (the graph calls this)."""
        with self._lock:
            listeners = list(self._listeners.values())
            if self._journal is not None:
                self._journal_seq += 1
                if (
                    self._journal.maxlen is not None
                    and len(self._journal) == self._journal.maxlen
                ):
                    self._journal_dropped += 1
                self._journal.append((self._journal_seq, weakref.ref(graph), delta))
        for listener in listeners:
            listener(graph, delta)

    # ------------------------------------------------------------------ #
    # journal (the seq-stamped delta log service checkpoints record)
    # ------------------------------------------------------------------ #
    def enable_journal(self, capacity: Optional[int] = 4096) -> None:
        """Start journalling dispatched deltas (bounded to ``capacity``).

        Every delta the bus dispatches after this call is stamped with a
        monotonically increasing sequence number and kept (graph held
        weakly).  Service checkpoints record the stamp current at
        checkpoint time; a warm restart calls :meth:`deltas_since` with it
        to catch restored views up — or, when the journal cannot prove
        continuity, falls back to a full recompile.
        """
        with self._lock:
            if self._journal is None:
                self._journal = deque(maxlen=capacity)

    @property
    def journal_seq(self) -> int:
        """The stamp of the most recently journalled delta (0 when none)."""
        return self._journal_seq

    def deltas_since(self, seq: int) -> Optional[List[Tuple[int, Optional["PropertyGraph"], GraphDelta]]]:
        """Journalled ``(seq, graph, delta)`` entries after ``seq``, in order.

        Returns ``None`` when the journal cannot *prove* it holds the
        complete suffix — it is disabled, ``seq`` is from the future, or
        eviction dropped entries in the requested range.  Callers must
        treat ``None`` as "recompile from scratch", never as "no changes".
        Entries whose graph has been garbage-collected carry ``None`` in
        the graph slot.
        """
        with self._lock:
            if self._journal is None or seq > self._journal_seq:
                return None
            entries = list(self._journal)
        out: List[Tuple[int, Optional["PropertyGraph"], GraphDelta]] = []
        expected = seq + 1
        for entry_seq, graph_ref, delta in entries:
            if entry_seq <= seq:
                continue
            if entry_seq != expected:  # eviction opened a gap
                return None
            expected += 1
            out.append((entry_seq, graph_ref(), delta))  # type: ignore[operator]
        if not out and seq < self._journal_seq:
            return None  # everything after ``seq`` was evicted
        return out

    def journal_stats(self) -> Dict[str, object]:
        """Journal health for ``service.health()``."""
        with self._lock:
            return {
                "enabled": self._journal is not None,
                "seq": self._journal_seq,
                "entries": len(self._journal) if self._journal is not None else 0,
                "dropped": self._journal_dropped,
                "capacity": self._journal.maxlen if self._journal is not None else None,
            }

    def attach(self, graph: "PropertyGraph") -> int:
        """Subscribe this bus to ``graph`` (enabling its delta log) and
        return the graph-side subscription token."""
        graph.enable_delta_log()
        return graph.subscribe(self.dispatch)

    def detach(self, graph: "PropertyGraph", token: int) -> None:
        """Undo one :meth:`attach`."""
        graph.unsubscribe(token)

    def __len__(self) -> int:
        with self._lock:
            return len(self._listeners)


# --------------------------------------------------------------------------- #
# maintenance accounting
# --------------------------------------------------------------------------- #
_MAINTENANCE_LOCK = threading.Lock()
_MAINTENANCE: Dict[str, Counter] = {}


def record_maintenance(component: str, event: str, count: int = 1) -> None:
    """Count one maintenance event (``delta_applied``, ``recompiled``, ...)."""
    with _MAINTENANCE_LOCK:
        counter = _MAINTENANCE.get(component)
        if counter is None:
            counter = Counter()
            _MAINTENANCE[component] = counter
        counter[event] += count


def view_maintenance_stats() -> Dict[str, Dict[str, int]]:
    """A snapshot of every maintainer's path counters.

    Keys are maintainer components (``"marking_view"``, ``"opacity_view"``,
    ``"walk_cache"``, ``"account_cache"``, ``"edit_session"``); values map
    event names to counts.  The interesting pair everywhere is
    ``delta_applied`` (the incremental path ran) vs ``recompiled`` /
    ``rebuilt`` (the fallback ran).  Counters are process-wide and
    monotonic; tests snapshot around an operation and compare.
    """
    with _MAINTENANCE_LOCK:
        return {component: dict(counter) for component, counter in _MAINTENANCE.items()}


def reset_view_maintenance_stats() -> None:
    """Zero every counter (benchmark/test isolation helper)."""
    with _MAINTENANCE_LOCK:
        _MAINTENANCE.clear()
