"""Surrogate nodes and the surrogate registry (paper Section 3.1).

A *surrogate* is a less-sensitive stand-in for a node: it omits or coarsens
features of the original and is releasable at a lower (or at least
non-dominating) privilege.  The provider registers surrogates in a
:class:`SurrogateRegistry`; protected-account generation asks the registry
for the best surrogate visible to a given consumer class.

Two constraints from the paper are enforced:

* ``lowest(n')`` must **not** dominate ``lowest(n)`` — a surrogate may not
  demand more privilege than the original (it may be incomparable).
* ``infoScore`` is monotone in privilege: when two surrogates of the same
  node are comparable, the one requiring the more dominant privilege has the
  greater (or equal) ``infoScore``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.exceptions import SurrogateError
from repro.core.privileges import Privilege, PrivilegeLattice
from repro.graph.features import feature_overlap, normalize_features
from repro.graph.model import Node, NodeId

#: Feature marker used on generated null surrogates so they are recognisable.
NULL_SURROGATE = "<null>"


@dataclass(frozen=True)
class Surrogate:
    """One surrogate version of one original node.

    Attributes
    ----------
    original_id:
        Id of the node in ``G`` this surrogate stands in for.
    surrogate_id:
        Id the surrogate node will carry in the protected account (must be
        unique within the account).
    lowest:
        The lowest privilege-predicate through which the surrogate is
        visible (``lowest(n')`` in the paper).
    features:
        The surrogate's (reduced) features.
    kind:
        Optional node kind carried into the protected account.
    info_score:
        Optional provider-assigned ``infoScore`` in ``[0, 1]``.  When absent
        the default completeness heuristic of
        :func:`repro.graph.features.feature_overlap` is used at measurement
        time.
    """

    original_id: NodeId
    surrogate_id: NodeId
    lowest: Privilege
    features: Mapping[str, Any] = field(default_factory=dict)
    kind: Optional[str] = None
    info_score: Optional[float] = None

    def __post_init__(self) -> None:
        if self.info_score is not None and not 0.0 <= self.info_score <= 1.0:
            raise SurrogateError(
                f"infoScore must be in [0, 1], got {self.info_score!r} for surrogate {self.surrogate_id!r}"
            )

    def is_null(self) -> bool:
        """True when this is a featureless (``<null>``) surrogate."""
        return not self.features

    def as_node(self) -> Node:
        """Materialise the surrogate as a graph node for a protected account."""
        return Node(node_id=self.surrogate_id, kind=self.kind, features=dict(self.features))


def null_surrogate(
    original_id: NodeId,
    lowest: Privilege,
    *,
    surrogate_id: Optional[NodeId] = None,
    kind: Optional[str] = None,
) -> Surrogate:
    """Build the default ``<null>`` surrogate for a node (paper Section 3.1).

    The null surrogate carries no features; its ``infoScore`` is 0 unless
    the original node itself has no features.
    """
    return Surrogate(
        original_id=original_id,
        surrogate_id=surrogate_id if surrogate_id is not None else f"{original_id}{NULL_SURROGATE}",
        lowest=lowest,
        features={},
        kind=kind,
        info_score=0.0,
    )


class SurrogateRegistry:
    """Provider-maintained catalogue of surrogates, keyed by original node.

    The registry is deliberately independent of any particular graph object:
    the same registry can protect many accounts of the same data set.
    """

    def __init__(self, lattice: PrivilegeLattice) -> None:
        self.lattice = lattice
        self._by_original: Dict[NodeId, List[Surrogate]] = {}
        #: Mutation counter: registering a surrogate changes which accounts
        #: the generation algorithm produces, so result caches key on this.
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every successful registration (cache-invalidation hook)."""
        return self._version

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        surrogate: Surrogate,
        *,
        original_lowest: Optional[Privilege] = None,
    ) -> Surrogate:
        """Register a surrogate.

        When ``original_lowest`` is given, the paper's constraint that the
        surrogate's lowest privilege must not dominate the original's is
        checked immediately; otherwise the check happens when the surrogate
        is used by :class:`~repro.core.policy.ReleasePolicy`.
        """
        surrogate = Surrogate(
            original_id=surrogate.original_id,
            surrogate_id=surrogate.surrogate_id,
            lowest=self.lattice.get(surrogate.lowest),
            features=normalize_features(surrogate.features),
            kind=surrogate.kind,
            info_score=surrogate.info_score,
        )
        if original_lowest is not None:
            self.check_lowest_constraint(surrogate, original_lowest)
        siblings = self._by_original.setdefault(surrogate.original_id, [])
        for existing in siblings:
            if existing.surrogate_id == surrogate.surrogate_id:
                raise SurrogateError(
                    f"surrogate id {surrogate.surrogate_id!r} already registered for node "
                    f"{surrogate.original_id!r}"
                )
        self._check_info_score_monotonicity(surrogate, siblings)
        siblings.append(surrogate)
        self._version += 1
        return surrogate

    def add(
        self,
        original_id: NodeId,
        lowest: object,
        *,
        surrogate_id: Optional[NodeId] = None,
        features: Optional[Mapping[str, Any]] = None,
        kind: Optional[str] = None,
        info_score: Optional[float] = None,
        original_lowest: Optional[Privilege] = None,
    ) -> Surrogate:
        """Convenience wrapper building and registering a :class:`Surrogate`."""
        surrogate = Surrogate(
            original_id=original_id,
            surrogate_id=surrogate_id if surrogate_id is not None else f"{original_id}'",
            lowest=self.lattice.get(lowest),
            features=normalize_features(features),
            kind=kind,
            info_score=info_score,
        )
        return self.register(surrogate, original_lowest=original_lowest)

    def add_null(
        self,
        original_id: NodeId,
        lowest: object,
        *,
        surrogate_id: Optional[NodeId] = None,
        kind: Optional[str] = None,
    ) -> Surrogate:
        """Register a ``<null>`` surrogate for ``original_id``."""
        return self.register(
            null_surrogate(
                original_id,
                self.lattice.get(lowest),
                surrogate_id=surrogate_id,
                kind=kind,
            )
        )

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def surrogates_for(self, original_id: NodeId) -> List[Surrogate]:
        """Every registered surrogate of ``original_id`` (possibly empty)."""
        return list(self._by_original.get(original_id, ()))

    def has_surrogate(self, original_id: NodeId) -> bool:
        """True when at least one surrogate is registered for the node."""
        return bool(self._by_original.get(original_id))

    def originals(self) -> List[NodeId]:
        """Ids of every original node that has at least one surrogate."""
        return list(self._by_original.keys())

    def visible_surrogates(self, original_id: NodeId, privilege: object) -> List[Surrogate]:
        """Surrogates of ``original_id`` visible via ``privilege``.

        A surrogate ``n'`` is visible via ``p`` when ``p`` dominates
        ``lowest(n')`` (Definition 1).
        """
        privilege = self.lattice.get(privilege)
        return [
            surrogate
            for surrogate in self.surrogates_for(original_id)
            if self.lattice.dominates(privilege, surrogate.lowest)
        ]

    def best_surrogate(
        self,
        original_id: NodeId,
        privilege: object,
        *,
        original_features: Optional[Mapping[str, Any]] = None,
    ) -> Optional[Surrogate]:
        """The most informative surrogate visible via ``privilege``, if any.

        Following the paper's *dominant surrogacy* property, the surrogate
        whose ``lowest`` is most dominant (while still dominated by the
        consumer's privilege) is preferred; ties are broken by ``infoScore``
        (explicit or the completeness default) and then by id for
        determinism.
        """
        candidates = self.visible_surrogates(original_id, privilege)
        if not candidates:
            return None
        maximal_lowests = self.lattice.maximal([candidate.lowest for candidate in candidates])
        dominant = [candidate for candidate in candidates if candidate.lowest in maximal_lowests]

        def score(candidate: Surrogate) -> float:
            if candidate.info_score is not None:
                return candidate.info_score
            if original_features is None:
                return 0.0 if candidate.is_null() else 0.5
            return feature_overlap(original_features, candidate.features)

        dominant.sort(key=lambda candidate: (-score(candidate), str(candidate.surrogate_id)))
        return dominant[0]

    # ------------------------------------------------------------------ #
    # constraint checks
    # ------------------------------------------------------------------ #
    def check_lowest_constraint(self, surrogate: Surrogate, original_lowest: object) -> None:
        """Raise when ``lowest(n')`` dominates ``lowest(n)`` (forbidden, Section 3.1)."""
        original_lowest = self.lattice.get(original_lowest)
        if self.lattice.strictly_dominates(surrogate.lowest, original_lowest) or (
            surrogate.lowest == original_lowest
        ):
            raise SurrogateError(
                f"surrogate {surrogate.surrogate_id!r} would require privilege "
                f"{surrogate.lowest.name!r}, which dominates the original's lowest privilege "
                f"{original_lowest.name!r}; surrogates must be releasable more broadly"
            )

    def validate_against(self, node_lowest: Mapping[NodeId, Privilege]) -> None:
        """Check every registered surrogate against a node → lowest mapping."""
        for original_id, surrogates in self._by_original.items():
            if original_id not in node_lowest:
                continue
            for surrogate in surrogates:
                self.check_lowest_constraint(surrogate, node_lowest[original_id])

    def _check_info_score_monotonicity(
        self, incoming: Surrogate, siblings: Iterable[Surrogate]
    ) -> None:
        """Enforce: more restrictive surrogates never have lower explicit infoScores.

        Incremental form: every already-registered sibling passed this check
        against the others when it was registered, so only the ``incoming``
        surrogate needs comparing against its siblings — O(k) per register
        instead of re-scanning all O(k²) pairs.  Runs *before* the incoming
        surrogate is stored, so a rejected surrogate never pollutes the
        registry.
        """
        if incoming.info_score is None:
            return
        for sibling in siblings:
            if sibling.info_score is None:
                continue
            first = second = None
            if (
                self.lattice.strictly_dominates(incoming.lowest, sibling.lowest)
                and incoming.info_score < sibling.info_score
            ):
                first, second = incoming, sibling
            elif (
                self.lattice.strictly_dominates(sibling.lowest, incoming.lowest)
                and sibling.info_score < incoming.info_score
            ):
                first, second = sibling, incoming
            if first is not None:
                raise SurrogateError(
                    f"surrogate {first.surrogate_id!r} (lowest={first.lowest.name}) has "
                    f"infoScore {first.info_score} < {second.info_score} of the less "
                    f"restrictive surrogate {second.surrogate_id!r}; infoScore must be "
                    "monotone in privilege (paper Section 4.1)"
                )

    def __len__(self) -> int:
        return sum(len(surrogates) for surrogates in self._by_original.values())

    def __iter__(self) -> Iterable[Surrogate]:
        for surrogates in self._by_original.values():
            yield from surrogates
