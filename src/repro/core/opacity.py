"""The opacity measure, its attacker models and the compiled opacity engine.

Opacity (paper Section 4.2, Figures 4–5) quantifies how hard it is for an
attacker, who sees only the protected account ``G'``, to infer the existence
of an original edge ``e = (n1 -> n2)`` of ``G`` that the account does not
show:

* opacity is **0** when the account shows an edge between the nodes
  corresponding to ``n1`` and ``n2`` (nothing left to infer),
* opacity is **1** when either endpoint has no corresponding node in the
  account (the attacker cannot even name the endpoints),
* otherwise opacity is ``1 - I`` where ``I`` is the attacker's inference
  likelihood, built from two ingredients the paper calls ``FP`` and ``IP``:

  - ``FP(v)`` — how strongly the attacker's attention is drawn to account
    node ``v`` (Figure 5: 0.8 for "loner" nodes with at most one connected
    node, 0.2 otherwise),
  - ``IP(v)`` — how plausible ``v`` looks as the hidden endpoint of a
    missing edge (Figure 5: 0.8 when its degree is at most one, 0.2
    otherwise).

  The published formula in Figure 4 is partially illegible in the available
  scan, so this implementation uses the most direct reading of its
  description: ``I`` adds, for each endpoint of the hidden edge, the
  probability that the attacker focuses on that endpoint (its raw ``FP``)
  times the probability that, having focused there, it names the other
  endpoint (that endpoint's ``IP`` normalised over all candidate far
  endpoints); the sum is clamped to ``[0, 1]``.  The default adversary adds
  a third tier above the paper's Figure-5 constants: completely isolated
  nodes draw even more attention than degree-1 "loners", which is exactly
  the signal the paper says surrogate edges remove ("lowering the suspicion
  of a node without edges").  The resulting measure reproduces every
  qualitative ordering the paper reports (Table 1, Figures 7–9); absolute
  third-decimal values can differ from the paper's because the original
  constants-to-formula wiring is under-specified.  ``normalize_focus=True``
  switches to a normalised-focus reading (the attacker's attention is a
  probability distribution over account nodes);
  :meth:`AdvancedAdversary.figure5` gives the paper's literal two-tier
  constants.

The compiled engine
-------------------
Evaluating the formula naively costs O(V) per edge: the attacker's focus and
inference weight vectors are a function of the *account graph alone*, yet the
per-edge reading rebuilds them — and the O(V) "guess" denominator — for every
hidden edge, making ``opacity_report`` O(E·V).  :class:`CompiledOpacityView`
runs the adversary simulation **once** per (account graph, adversary): it
compiles the focus-weight vector, the inference-weight vector, both totals
and every node's leave-one-out guess denominator in O(V), after which each
edge's opacity is O(1).  :func:`opacity_many` (and the batch-rewritten
:func:`opacity_profile` / :func:`average_opacity` / :func:`opacity_report`)
share one compiled view across all scored edges; :class:`OpacityViewCache`
lets serving layers reuse views across calls so repeated scoring of the same
account never re-simulates the adversary.

The compiled path is *bit-identical* to the paper-literal per-edge reference
(:mod:`repro.core.reference.opacity_reference`): the reference evaluates
every weight total with :func:`math.fsum` (the correctly-rounded float sum,
independent of summation order) and the compiled view computes the same
totals through exact :class:`fractions.Fraction` arithmetic rounded once at
the end — two routes to the same correctly-rounded double.  The differential
property suite (``tests/property/test_opacity_equivalence.py``) pins the two
paths equal with exact float equality on every workload generator.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Protocol, Tuple

from repro.core.protected_account import ProtectedAccount
from repro.graph.deltas import DeltaKind, GraphDelta, record_maintenance
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


class AttackerModel(Protocol):
    """The two ingredients of the opacity formula, per account node."""

    def focus_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        """Relative weight with which the attacker's attention lands on ``node_id``."""

    def inference_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        """Relative plausibility of ``node_id`` as the far endpoint of a hidden edge."""


def adversary_supports_deltas(adversary: AttackerModel) -> bool:
    """True when a node's weights depend only on its own neighbourhood.

    Incremental view maintenance (:meth:`CompiledOpacityView.apply_delta`,
    :meth:`CompiledOpacityView.derive_for`) recomputes weights only for the
    nodes an edit structurally touched — which is sound exactly when the
    attacker model is *delta-local*: ``focus_probability(g, n)`` and
    ``inference_probability(g, n)`` may read ``n``'s adjacency but nothing
    else of the graph.  The built-in adversaries declare this with a
    ``LOCAL_WEIGHTS = True`` class attribute; custom models that satisfy the
    contract can opt in the same way, and everything else falls back to a
    full recompile (counted, never silently wrong).
    """
    return bool(getattr(adversary, "LOCAL_WEIGHTS", False))


@dataclass(frozen=True)
class NaiveAdversary:
    """An attacker with no knowledge of typical graph structure.

    The paper's naive attacker does not even notice that a protected account
    has been redacted, so it never infers hidden edges: every hidden edge
    with both endpoints represented has opacity 1 under this model.
    """

    #: Weights are constant, hence trivially delta-local.
    LOCAL_WEIGHTS = True

    def focus_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        return 0.0

    def inference_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        return 0.0


@dataclass(frozen=True)
class AdvancedAdversary:
    """The advanced adversary of Figure 5 (with an extra tier for isolated nodes).

    Expecting a well-connected graph, the attacker focuses on "loner" nodes
    (at most ``loner_threshold`` connected nodes) with weight
    ``loner_focus`` and on everything else with weight ``other_focus``;
    symmetric constants drive the edge-endpoint plausibility ``IP``.
    Completely isolated nodes are an even stronger redaction signal than
    degree-1 loners ("there are no disconnected subgraphs" is part of the
    assumed background knowledge), so they get the ``isolated_*`` weights;
    set them equal to the loner weights — or use :meth:`figure5` — to obtain
    the paper's literal two-tier constants.
    """

    #: Weights read only the node's own connected-node count: delta-local.
    LOCAL_WEIGHTS = True

    loner_focus: float = 0.8
    other_focus: float = 0.2
    loner_inference: float = 0.8
    other_inference: float = 0.2
    loner_threshold: int = 1
    isolated_focus: float = 0.9
    isolated_inference: float = 0.9

    @classmethod
    def figure5(cls) -> "AdvancedAdversary":
        """The exact two-tier constants printed in the paper's Figure 5."""
        return cls(isolated_focus=0.8, isolated_inference=0.8)

    def focus_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        connected = account_graph.neighbor_count(node_id)
        if connected == 0:
            return self.isolated_focus
        if connected <= self.loner_threshold:
            return self.loner_focus
        return self.other_focus

    def inference_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        connected = account_graph.neighbor_count(node_id)
        if connected == 0:
            return self.isolated_inference
        if connected <= self.loner_threshold:
            return self.loner_inference
        return self.other_inference


#: The default adversary used by the evaluation (Figure 5's constants).
DEFAULT_ADVERSARY = AdvancedAdversary()


def adversary_fingerprint(adversary: AttackerModel) -> Hashable:
    """A hashable identity for an attacker model (view-cache key ingredient).

    The built-in adversaries are frozen dataclasses, so they fingerprint by
    *value*: two equal configurations share compiled views (and the
    :class:`~repro.api.cache.AccountCache` can key entries on the adversary
    alongside :func:`~repro.core.generation.account_cache_token`).
    Unhashable custom models fall back to object identity — still correct,
    just never shared across distinct instances.
    """
    try:
        hash(adversary)
    except TypeError:
        return ("unhashable-adversary", id(adversary))
    return adversary


def _checked_weight(kind: str, node_id: NodeId, weight: float) -> float:
    """Clamp one adversary weight to ``[0, ∞)`` after rejecting non-finite values.

    Both the compiled engine and the paper-literal reference run every raw
    weight through this contract, so a misbehaving custom
    :class:`AttackerModel` fails loudly and identically on both paths
    instead of poisoning totals with ``inf``/``nan``.
    """
    if not math.isfinite(weight):
        raise ValueError(
            f"adversary returned a non-finite {kind} weight {weight!r} for node {node_id!r}"
        )
    return max(0.0, weight)


#: Process-wide count of adversary simulations (view compilations) run so
#: far.  Monotonic; read through :func:`opacity_simulations_run`.  The
#: increment is a read-modify-write, so it takes the lock below — compiles
#: may happen from concurrent service threads.
_SIMULATIONS_COMPILED = 0
_SIMULATIONS_LOCK = threading.Lock()


def opacity_simulations_run() -> int:
    """How many adversary simulations (view compilations) have run in-process.

    The counter is monotonic and increments exactly once per
    :meth:`CompiledOpacityView.compile` call.  Tests snapshot it around
    cached paths (repeated ``score()`` calls, account-cache ``protect()``
    replays) to assert that **zero** additional simulations happened.
    """
    return _SIMULATIONS_COMPILED


@dataclass
class CompiledOpacityView:
    """One adversary simulation over one account graph, compiled for O(1) reads.

    The view captures everything the Figure-4 formula needs that does not
    depend on the particular hidden edge:

    * ``focus_weights`` / ``inference_weights`` — the clamped ``FP`` / ``IP``
      vectors over the account's nodes,
    * ``total_focus`` — the correctly-rounded sum of the focus vector (the
      ``normalize_focus`` denominator),
    * ``total_inference`` — the correctly-rounded sum of the inference
      vector (zero iff every guess has zero mass),
    * ``guess_denominators`` — for every node ``u``, the correctly-rounded
      leave-one-out sum ``Σ_{v ≠ u} IP(v)`` that normalises the attacker's
      guess from ``u``.

    Setup is O(V); :meth:`inference_likelihood` is then O(1) per edge.  The
    leave-one-out denominators are derived from one exact
    :class:`~fractions.Fraction` total (``float(total - w_u)``, deduplicated
    by weight value), which makes them bit-identical to the reference's
    :func:`math.fsum` over the same V−1 weights — both are the correctly
    rounded value of the same exact real sum.  Stale views are detected via
    :meth:`is_current_for` (graph identity + version + adversary
    fingerprint), never silently served.
    """

    graph_version: int
    node_count: int
    focus_weights: Dict[NodeId, float]
    inference_weights: Dict[NodeId, float]
    total_focus: float
    total_inference: float
    guess_denominators: Dict[NodeId, float]
    adversary_key: Hashable
    _graph_ref: "weakref.ref[PropertyGraph]" = field(repr=False)
    # Exact-arithmetic state kept for incremental maintenance: the rational
    # totals the floats are rounded from, and the multiset of inference
    # weight values (whose distinct values parameterise the leave-one-out
    # denominators).  ``_denominators_stale`` defers the O(V) denominator
    # rebuild until the next read after a patch.
    _total_focus_exact: Fraction = field(default=Fraction(0), repr=False, compare=False)
    _total_inference_exact: Fraction = field(default=Fraction(0), repr=False, compare=False)
    _inference_value_counts: Counter = field(default_factory=Counter, repr=False, compare=False)
    _denominators_stale: bool = field(default=False, repr=False, compare=False)

    @classmethod
    def compile(
        cls, account_graph: PropertyGraph, adversary: AttackerModel
    ) -> "CompiledOpacityView":
        """Run the adversary simulation once and freeze its vectors (O(V)).

        Raises :class:`ValueError` if the adversary emits a non-finite
        weight (``inf``/``nan``): an attacker model is a relative-weight
        assignment, and a non-finite weight would poison every total (the
        reference path rejects them identically, keeping the differential
        contract intact).
        """
        global _SIMULATIONS_COMPILED
        with _SIMULATIONS_LOCK:
            _SIMULATIONS_COMPILED += 1
        record_maintenance("opacity_view", "compiled")
        node_ids = account_graph.node_ids()
        focus_weights = {
            node_id: _checked_weight(
                "focus", node_id, adversary.focus_probability(account_graph, node_id)
            )
            for node_id in node_ids
        }
        inference_weights = {
            node_id: _checked_weight(
                "inference", node_id, adversary.inference_probability(account_graph, node_id)
            )
            for node_id in node_ids
        }
        # Exact rational totals, rounded once: float(Fraction) is the
        # correctly-rounded double of the exact sum, i.e. exactly what
        # math.fsum over the same weights returns in the reference path.
        # Tiered adversaries emit only a handful of distinct weight values,
        # so the exact arithmetic runs per distinct value, not per node.
        focus_counts = Counter(focus_weights.values())
        inference_counts = Counter(inference_weights.values())
        total_focus_exact = sum(
            (count * Fraction(weight) for weight, count in focus_counts.items()),
            Fraction(0),
        )
        total_inference_exact = sum(
            (count * Fraction(weight) for weight, count in inference_counts.items()),
            Fraction(0),
        )
        # Leave-one-out denominators depend only on the *value* removed, so
        # one exact subtraction per distinct weight covers every node.
        loo_by_value = {
            weight: float(total_inference_exact - Fraction(weight))
            for weight in inference_counts
        }
        return cls(
            graph_version=account_graph.version,
            node_count=len(node_ids),
            focus_weights=focus_weights,
            inference_weights=inference_weights,
            total_focus=float(total_focus_exact),
            total_inference=float(total_inference_exact),
            guess_denominators={
                node_id: loo_by_value[weight]
                for node_id, weight in inference_weights.items()
            },
            adversary_key=adversary_fingerprint(adversary),
            _graph_ref=weakref.ref(account_graph),
            _total_focus_exact=total_focus_exact,
            _total_inference_exact=total_inference_exact,
            _inference_value_counts=Counter(inference_counts),
        )

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta: GraphDelta, adversary: AttackerModel) -> bool:
        """Patch the simulation in place for one delta of its graph.

        O(affected): only nodes the delta structurally touched — added or
        removed nodes and the endpoints of added/removed edges — get their
        ``FP``/``IP`` weights re-evaluated; the exact
        :class:`~fractions.Fraction` totals are updated by exact
        subtraction/addition, so the rounded floats stay *identical* to a
        fresh compile's (exact arithmetic has no order sensitivity).  The
        leave-one-out denominators are marked stale and rebuilt lazily on
        the next read.

        Returns ``False`` — leaving the view untouched — when the patch
        would be unsound: the adversary is not the view's, is not
        delta-local (:func:`adversary_supports_deltas`), the delta does not
        start at the view's version, or the graph is gone/mid-batch.
        Feature-only deltas are free (structural weights cannot change).
        """
        if delta.pre_version != self.graph_version:
            return False
        if self.adversary_key != adversary_fingerprint(adversary):
            return False
        if not adversary_supports_deltas(adversary):
            return False
        graph = self._graph_ref()
        if graph is None or graph.in_batch:
            return False
        affected = set()
        for primitive in delta.flatten():
            kind = primitive.kind
            if kind is DeltaKind.ADD_NODE:
                affected.add(primitive.node.node_id)
            elif kind is DeltaKind.REMOVE_NODE:
                affected.add(primitive.old_node.node_id)
                for edge in primitive.removed_edges:
                    affected.add(edge.source)
                    affected.add(edge.target)
            elif kind is DeltaKind.ADD_EDGE or kind is DeltaKind.REMOVE_EDGE:
                edge = primitive.edge if kind is DeltaKind.ADD_EDGE else primitive.old_edge
                affected.add(edge.source)
                affected.add(edge.target)
            # REPLACE_NODE / REPLACE_EDGE / SET_NODE_FEATURES change no
            # structure: delta-local weights cannot move.
        if affected:
            self._reweigh(graph, adversary, affected)
        self.graph_version = delta.post_version
        record_maintenance("opacity_view", "delta_applied")
        return True

    def patched_copy(
        self, delta: GraphDelta, adversary: AttackerModel
    ) -> Optional["CompiledOpacityView"]:
        """A *new* view with ``delta`` applied; this view is left untouched.

        The copy-on-patch form of :meth:`apply_delta`, for owners whose
        views may be read concurrently (the
        :class:`OpacityViewCache`): readers holding the old object keep a
        consistent — merely stale — snapshot whose :meth:`is_current_for`
        fails, instead of observing a view mutating under them.  Returns
        ``None`` under exactly :meth:`apply_delta`'s fallback conditions.
        """
        if delta.pre_version != self.graph_version:
            return None
        clone = CompiledOpacityView(
            graph_version=self.graph_version,
            node_count=self.node_count,
            focus_weights=dict(self.focus_weights),
            inference_weights=dict(self.inference_weights),
            total_focus=self.total_focus,
            total_inference=self.total_inference,
            # Not copied: the patch (or the first read) rebuilds the
            # leave-one-out table from the exact total anyway.
            guess_denominators={},
            adversary_key=self.adversary_key,
            _graph_ref=self._graph_ref,
            _total_focus_exact=self._total_focus_exact,
            _total_inference_exact=self._total_inference_exact,
            _inference_value_counts=Counter(self._inference_value_counts),
            _denominators_stale=True,
        )
        if not clone.apply_delta(delta, adversary):
            return None
        return clone

    def derive_for(
        self, account_graph: PropertyGraph, adversary: AttackerModel
    ) -> Optional["CompiledOpacityView"]:
        """A view for a *different* graph, derived without a new simulation.

        Sub-accounts of a merged multi-privilege account share most of
        their structure; instead of running one O(V) adversary simulation
        per sub-account, the first compiled view in the family seeds the
        rest: nodes present in only one graph, plus common nodes whose
        neighbourhoods differ, are re-weighed against the target graph and
        the exact totals adjusted — everything else is carried over.  The
        result is bit-identical to a fresh compile (same exact-Fraction
        construction) but does **not** increment
        :func:`opacity_simulations_run`; it records a ``derived`` event in
        :func:`~repro.graph.deltas.view_maintenance_stats` instead.

        Returns ``None`` when derivation is unavailable: non-local or
        mismatched adversary, the source graph is gone, or the target is
        mid-batch.
        """
        if self.adversary_key != adversary_fingerprint(adversary):
            return None
        if not adversary_supports_deltas(adversary):
            return None
        source = self._graph_ref()
        if source is None or source is account_graph or account_graph.in_batch:
            return None
        derived = CompiledOpacityView(
            graph_version=account_graph.version,
            node_count=self.node_count,
            focus_weights=dict(self.focus_weights),
            inference_weights=dict(self.inference_weights),
            total_focus=self.total_focus,
            total_inference=self.total_inference,
            guess_denominators={},
            adversary_key=self.adversary_key,
            _graph_ref=weakref.ref(account_graph),
            _total_focus_exact=self._total_focus_exact,
            _total_inference_exact=self._total_inference_exact,
            _inference_value_counts=Counter(self._inference_value_counts),
            _denominators_stale=True,
        )
        affected = set()
        for node_id in self.focus_weights:
            if not account_graph.has_node(node_id):
                affected.add(node_id)
        for node_id in account_graph.node_ids():
            if node_id not in self.focus_weights or not account_graph.same_neighborhood(
                source, node_id
            ):
                affected.add(node_id)
        derived._reweigh(account_graph, adversary, affected)
        record_maintenance("opacity_view", "derived")
        return derived

    def _reweigh(
        self, graph: PropertyGraph, adversary: AttackerModel, affected: Iterable[NodeId]
    ) -> None:
        """Re-evaluate the weights of ``affected`` nodes against ``graph``.

        Handles appearance and disappearance uniformly: a node's old
        contribution (if any) is subtracted exactly, its new contribution
        (if it is still in the graph) added exactly.
        """
        focus_weights = self.focus_weights
        inference_weights = self.inference_weights
        value_counts = self._inference_value_counts
        total_focus = self._total_focus_exact
        total_inference = self._total_inference_exact
        for node_id in affected:
            old_focus = focus_weights.pop(node_id, None)
            if old_focus is not None:
                total_focus -= Fraction(old_focus)
                old_inference = inference_weights.pop(node_id)
                total_inference -= Fraction(old_inference)
                value_counts[old_inference] -= 1
                if not value_counts[old_inference]:
                    del value_counts[old_inference]
            if graph.has_node(node_id):
                new_focus = _checked_weight(
                    "focus", node_id, adversary.focus_probability(graph, node_id)
                )
                new_inference = _checked_weight(
                    "inference", node_id, adversary.inference_probability(graph, node_id)
                )
                focus_weights[node_id] = new_focus
                inference_weights[node_id] = new_inference
                total_focus += Fraction(new_focus)
                total_inference += Fraction(new_inference)
                value_counts[new_inference] += 1
        self._total_focus_exact = total_focus
        self._total_inference_exact = total_inference
        self.total_focus = float(total_focus)
        self.total_inference = float(total_inference)
        self.node_count = len(focus_weights)
        self._denominators_stale = True

    def _refresh_denominators(self) -> None:
        """Rebuild the leave-one-out denominators from the exact total."""
        total = self._total_inference_exact
        loo_by_value = {
            weight: float(total - Fraction(weight))
            for weight in self._inference_value_counts
        }
        self.guess_denominators = {
            node_id: loo_by_value[weight]
            for node_id, weight in self.inference_weights.items()
        }
        self._denominators_stale = False

    def denominators(self) -> Dict[NodeId, float]:
        """The per-node leave-one-out guess denominators (refreshed if stale)."""
        if self._denominators_stale:
            self._refresh_denominators()
        return self.guess_denominators

    def is_current_for(
        self, account_graph: PropertyGraph, adversary: AttackerModel
    ) -> bool:
        """True when this view was compiled against exactly this simulation.

        Checks graph *identity* (weakref — a recycled ``id()`` can never
        alias a dead graph), the graph's mutation counter and the
        adversary's fingerprint.
        """
        return (
            self._graph_ref() is account_graph
            and self.graph_version == account_graph.version
            and self.adversary_key == adversary_fingerprint(adversary)
        )

    # ------------------------------------------------------------------ #
    # the Figure-4 formula, O(1) per edge
    # ------------------------------------------------------------------ #
    def inference_likelihood(
        self,
        account_source: NodeId,
        account_target: NodeId,
        *,
        normalize_focus: bool = False,
    ) -> float:
        """``I`` — probability the attacker names the hidden edge from either endpoint.

        Each edge case has an explicit branch (pinned by dedicated unit
        tests in ``tests/core/test_opacity.py``) rather than relying on the
        arithmetic falling through to zero.
        """
        if self._denominators_stale:
            self._refresh_denominators()
        if self.node_count < 2:
            # A single-node account graph offers no far endpoint to name.
            return 0.0
        if self.total_inference == 0.0:
            # All-zero inference weights: every guess has zero mass.
            return 0.0
        if normalize_focus and self.total_focus <= 0.0:
            # Normalised focus over zero total attention is no attention.
            return 0.0
        likelihood = self._focus(account_source, normalize_focus) * self._guess(
            account_source, account_target
        ) + self._focus(account_target, normalize_focus) * self._guess(
            account_target, account_source
        )
        return max(0.0, min(1.0, likelihood))

    def _focus(self, node_id: NodeId, normalize_focus: bool) -> float:
        """``FP`` of one node — raw, or normalised to a distribution."""
        weight = self.focus_weights[node_id]
        if not normalize_focus:
            return weight
        return weight / self.total_focus if self.total_focus > 0 else 0.0

    def _guess(self, from_node: NodeId, to_node: NodeId) -> float:
        """P(attacker focused on ``from_node`` names ``to_node`` as the other endpoint)."""
        denominator = self.guess_denominators[from_node]
        if denominator <= 0:
            return 0.0
        return self.inference_weights[to_node] / denominator


class OpacityViewCache:
    """A bounded LRU of compiled opacity views, keyed by (graph, adversary).

    Serving layers (:meth:`ProtectionService.score
    <repro.api.service.ProtectionService.score>`) keep one of these so
    repeated scoring of the same account graph — including accounts replayed
    from the :class:`~repro.api.cache.AccountCache` — reuses the compiled
    simulation instead of re-running it.  Keys embed the graph's ``id()``
    and version plus the adversary fingerprint; hits additionally prove
    graph identity through the view's weakref, so a recycled ``id()`` can
    never alias a dead graph.  All map operations take the cache's lock, so
    a shared :class:`~repro.api.service.ProtectionService` may score from
    concurrent threads (the O(V) compile itself runs outside the lock; two
    racing threads may both simulate, but neither can corrupt the LRU).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"view cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, CompiledOpacityView]" = OrderedDict()

    def get_or_compile(
        self,
        account_graph: PropertyGraph,
        adversary: AttackerModel,
        derive_from: Tuple[PropertyGraph, ...] = (),
    ) -> CompiledOpacityView:
        """The cached view for this simulation, compiling (and storing) on miss.

        ``derive_from`` names related graphs (e.g. the sub-accounts and
        merged account of one multi-privilege family) whose cached views may
        seed this one through :meth:`CompiledOpacityView.derive_for` — a
        derivation is exact and runs **zero** new adversary simulations.
        """
        key = (
            id(account_graph),
            account_graph.version,
            adversary_fingerprint(adversary),
        )
        with self._lock:
            view = self._entries.get(key)
            if view is not None and view.is_current_for(account_graph, adversary):
                self._entries.move_to_end(key)
                return view
            if view is not None:
                del self._entries[key]
            seeds = [
                seed_view
                for seed in derive_from
                if seed is not account_graph
                for seed_view in (
                    self._entries.get(
                        (id(seed), seed.version, adversary_fingerprint(adversary))
                    ),
                )
                if seed_view is not None and seed_view.is_current_for(seed, adversary)
            ]
        view = None
        for seed_view in seeds:
            view = seed_view.derive_for(account_graph, adversary)
            if view is not None:
                break
        if view is None:
            view = CompiledOpacityView.compile(account_graph, adversary)
        with self._lock:
            self._entries.pop(key, None)
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            self._entries[key] = view
        return view

    def peek(
        self,
        account_graph: PropertyGraph,
        adversary: AttackerModel,
    ) -> Optional[CompiledOpacityView]:
        """The cached current view, or ``None`` — no LRU touch, no compile.

        Parallel warm-up (:meth:`ProtectionService.warm_opacity_views
        <repro.api.service.ProtectionService.warm_opacity_views>`) peeks
        before fanning simulations out to worker processes, so already
        warm graphs are never re-shipped.
        """
        key = (
            id(account_graph),
            account_graph.version,
            adversary_fingerprint(adversary),
        )
        with self._lock:
            view = self._entries.get(key)
            if view is not None and view.is_current_for(account_graph, adversary):
                return view
            return None

    def seed(
        self,
        account_graph: PropertyGraph,
        adversary: AttackerModel,
        view: CompiledOpacityView,
    ) -> None:
        """Insert an externally rebuilt view (warm-restart checkpoint restore).

        The view must already be current for ``(account_graph, adversary)``;
        stale or mismatched seeds are ignored rather than poisoning the
        cache — :meth:`get_or_compile` would reject them on lookup anyway.
        """
        if not view.is_current_for(account_graph, adversary):
            return
        key = (
            id(account_graph),
            account_graph.version,
            adversary_fingerprint(adversary),
        )
        with self._lock:
            self._entries.pop(key, None)
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            self._entries[key] = view

    def on_delta(self, graph: PropertyGraph, delta: "GraphDelta") -> None:
        """Delta-scoped maintenance: patch this graph's views, drop corpses.

        Called through the service's :class:`~repro.graph.deltas.DeltaBus`.
        Views of ``graph`` sitting exactly at the delta's pre-version are
        replaced by a patched *copy* (when their adversary is recoverable
        and delta-local) keyed under the new version, so the next
        ``score()`` still hits; anything else of this graph is stale by
        definition and evicted immediately instead of lingering until LRU
        pressure finds it.  Copy-on-patch keeps views immutable once handed
        out: a concurrent reader holding the old object sees a consistent
        stale snapshot (which :meth:`~CompiledOpacityView.is_current_for`
        rejects), never a view mutating underneath it.
        """
        with self._lock:
            candidates = []
            for key in list(self._entries):
                view = self._entries[key]
                if view._graph_ref() is not graph:
                    continue
                del self._entries[key]
                if view.graph_version == delta.pre_version and hasattr(
                    view.adversary_key, "focus_probability"
                ):
                    candidates.append(view)
        # Patch outside the lock: the copy is O(V) and runs adversary
        # callbacks (user code); concurrent score() traffic must not queue
        # behind it, and a callback that re-enters the cache must not
        # deadlock.
        for view in candidates:
            patched = view.patched_copy(delta, view.adversary_key)
            if patched is not None:
                with self._lock:
                    while len(self._entries) >= self.capacity:
                        self._entries.popitem(last=False)
                    self._entries[
                        (id(graph), patched.graph_version, patched.adversary_key)
                    ] = patched

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def opacity(
    original: PropertyGraph,
    account: ProtectedAccount,
    edge: EdgeKey,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
    view: Optional[CompiledOpacityView] = None,
) -> float:
    """Opacity of one original edge with respect to a protected account (Figure 4).

    Pass ``view`` (a current :class:`CompiledOpacityView`) to skip the O(V)
    setup; callers scoring many edges should prefer :func:`opacity_many`,
    which compiles at most one view for the whole batch.  This is exactly
    the one-edge case of that batch core, so the two can never diverge.
    """
    values, _ = _batch_opacity(
        original, account, [edge], adversary, normalize_focus, view
    )
    return values[tuple(edge)]


def hidden_edges(original: PropertyGraph, account: ProtectedAccount) -> List[EdgeKey]:
    """Original edges that the account does not show between corresponding nodes."""
    return [
        edge.key
        for edge in original.edges()
        if not account.contains_original_edge(edge.source, edge.target)
    ]


def _batch_opacity(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Iterable[EdgeKey],
    adversary: Optional[AttackerModel],
    normalize_focus: bool,
    view: Optional[CompiledOpacityView],
    view_factory: Optional[Callable[[], CompiledOpacityView]] = None,
) -> Tuple[Dict[EdgeKey, float], Optional[CompiledOpacityView]]:
    """Shared batch core: per-edge opacity plus the view that scored it.

    The view is compiled lazily — an account that shows (or cannot name) every
    scored edge never pays for a simulation — and validated once per batch.
    ``view_factory`` (when given) supplies the view at that first point of
    need instead of a direct compile; serving layers pass their
    :class:`OpacityViewCache` through it.  A stale view from either source
    is recompiled, never trusted.
    """
    adversary = adversary if adversary is not None else DEFAULT_ADVERSARY
    values: Dict[EdgeKey, float] = {}
    view_checked = False
    for edge in edges:
        source, target = edge
        key = (source, target)
        if account.contains_original_edge(source, target):
            values[key] = 0.0
            continue
        account_source = account.account_node_of(source)
        account_target = account.account_node_of(target)
        if account_source is None or account_target is None:
            values[key] = 1.0
            continue
        if not view_checked:
            if view is None or not view.is_current_for(account.graph, adversary):
                if view_factory is not None:
                    view = view_factory()
                if view is None or not view.is_current_for(account.graph, adversary):
                    view = CompiledOpacityView.compile(account.graph, adversary)
            view_checked = True
        inference = view.inference_likelihood(
            account_source, account_target, normalize_focus=normalize_focus
        )
        values[key] = max(0.0, min(1.0, 1.0 - inference))
    return values, view


def opacity_many(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Iterable[EdgeKey],
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
    view: Optional[CompiledOpacityView] = None,
) -> Dict[EdgeKey, float]:
    """Per-edge opacity for many edges off **one** adversary simulation.

    O(V + k) for k edges — the batch entry point every aggregate
    (:func:`opacity_profile`, :func:`average_opacity`,
    :func:`opacity_report`) and the serving stack build on.  ``view``
    optionally supplies an already-compiled simulation (it is revalidated,
    and recompiled if stale).
    """
    values, _ = _batch_opacity(original, account, edges, adversary, normalize_focus, view)
    return values


def opacity_profile(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
    view: Optional[CompiledOpacityView] = None,
) -> Dict[EdgeKey, float]:
    """Per-edge opacity for a set of original edges (default: every hidden edge)."""
    if edges is None:
        edges = hidden_edges(original, account)
    return opacity_many(
        original,
        account,
        edges,
        adversary=adversary,
        normalize_focus=normalize_focus,
        view=view,
    )


def average_opacity(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
    view: Optional[CompiledOpacityView] = None,
) -> float:
    """Average opacity over a set of original edges.

    The default edge set is every original edge the account hides; Section
    4.2 notes this average is how an administrator evaluates whole-account
    trade-offs.  Returns 1.0 when there is nothing hidden (nothing can be
    inferred).
    """
    profile = opacity_profile(
        original,
        account,
        edges,
        adversary=adversary,
        normalize_focus=normalize_focus,
        view=view,
    )
    if not profile:
        return 1.0
    return sum(profile.values()) / len(profile)


@dataclass(frozen=True)
class OpacityReport:
    """Average and per-edge opacity for one account (used by experiment drivers).

    ``view`` carries the compiled adversary simulation that scored the
    report (when one was needed), so cached results — e.g.
    :class:`~repro.api.cache.AccountCache` entries, whose ScoreCards embed
    their reports — keep the simulation alive for replay without re-running
    it.  It is excluded from comparison and from :meth:`as_dict`.
    """

    average: float
    per_edge: Dict[EdgeKey, float]
    view: Optional[CompiledOpacityView] = field(default=None, compare=False, repr=False)

    def minimum(self) -> float:
        """The least-protected hidden edge's opacity (1.0 when nothing is hidden)."""
        return min(self.per_edge.values(), default=1.0)

    def as_dict(self) -> Dict[str, object]:
        """The two headline numbers (the shape reports and ``--json`` use)."""
        return {"average_opacity": round(self.average, 6), "min_opacity": round(self.minimum(), 6)}


def opacity_report(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
    view: Optional[CompiledOpacityView] = None,
    view_factory: Optional[Callable[[], CompiledOpacityView]] = None,
) -> OpacityReport:
    """Build an :class:`OpacityReport` for a set of edges (default: all hidden).

    One compiled view scores every edge; the view used (if any) rides along
    on the report so callers can reuse it for later batches.  The view is
    obtained lazily — from ``view``, else ``view_factory`` (how
    :meth:`ProtectionService.score
    <repro.api.service.ProtectionService.score>` threads its
    :class:`OpacityViewCache` in), else a direct compile — and only when
    some scored edge actually needs inference.
    """
    if edges is None:
        edges = hidden_edges(original, account)
    profile, used_view = _batch_opacity(
        original, account, edges, adversary, normalize_focus, view, view_factory
    )
    average = sum(profile.values()) / len(profile) if profile else 1.0
    return OpacityReport(average=average, per_edge=profile, view=used_view)
