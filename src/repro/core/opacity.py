"""The opacity measure and its attacker models (paper Section 4.2, Figures 4–5).

Opacity quantifies how hard it is for an attacker, who sees only the
protected account ``G'``, to infer the existence of an original edge
``e = (n1 -> n2)`` of ``G`` that the account does not show:

* opacity is **0** when the account shows an edge between the nodes
  corresponding to ``n1`` and ``n2`` (nothing left to infer),
* opacity is **1** when either endpoint has no corresponding node in the
  account (the attacker cannot even name the endpoints),
* otherwise opacity is ``1 - I`` where ``I`` is the attacker's inference
  likelihood, built from two ingredients the paper calls ``FP`` and ``IP``:

  - ``FP(v)`` — how strongly the attacker's attention is drawn to account
    node ``v`` (Figure 5: 0.8 for "loner" nodes with at most one connected
    node, 0.2 otherwise),
  - ``IP(v)`` — how plausible ``v`` looks as the hidden endpoint of a
    missing edge (Figure 5: 0.8 when its degree is at most one, 0.2
    otherwise).

  The published formula in Figure 4 is partially illegible in the available
  scan, so this implementation uses the most direct reading of its
  description: ``I`` adds, for each endpoint of the hidden edge, the
  probability that the attacker focuses on that endpoint (its raw ``FP``)
  times the probability that, having focused there, it names the other
  endpoint (that endpoint's ``IP`` normalised over all candidate far
  endpoints); the sum is clamped to ``[0, 1]``.  The default adversary adds
  a third tier above the paper's Figure-5 constants: completely isolated
  nodes draw even more attention than degree-1 "loners", which is exactly
  the signal the paper says surrogate edges remove ("lowering the suspicion
  of a node without edges").  The resulting measure reproduces every
  qualitative ordering the paper reports (Table 1, Figures 7–9); absolute
  third-decimal values can differ from the paper's because the original
  constants-to-formula wiring is under-specified.  ``normalize_focus=True``
  switches to a normalised-focus reading (the attacker's attention is a
  probability distribution over account nodes);
  :meth:`AdvancedAdversary.figure5` gives the paper's literal two-tier
  constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from repro.core.protected_account import ProtectedAccount
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


class AttackerModel(Protocol):
    """The two ingredients of the opacity formula, per account node."""

    def focus_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        """Relative weight with which the attacker's attention lands on ``node_id``."""

    def inference_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        """Relative plausibility of ``node_id`` as the far endpoint of a hidden edge."""


@dataclass(frozen=True)
class NaiveAdversary:
    """An attacker with no knowledge of typical graph structure.

    The paper's naive attacker does not even notice that a protected account
    has been redacted, so it never infers hidden edges: every hidden edge
    with both endpoints represented has opacity 1 under this model.
    """

    def focus_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        return 0.0

    def inference_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        return 0.0


@dataclass(frozen=True)
class AdvancedAdversary:
    """The advanced adversary of Figure 5 (with an extra tier for isolated nodes).

    Expecting a well-connected graph, the attacker focuses on "loner" nodes
    (at most ``loner_threshold`` connected nodes) with weight
    ``loner_focus`` and on everything else with weight ``other_focus``;
    symmetric constants drive the edge-endpoint plausibility ``IP``.
    Completely isolated nodes are an even stronger redaction signal than
    degree-1 loners ("there are no disconnected subgraphs" is part of the
    assumed background knowledge), so they get the ``isolated_*`` weights;
    set them equal to the loner weights — or use :meth:`figure5` — to obtain
    the paper's literal two-tier constants.
    """

    loner_focus: float = 0.8
    other_focus: float = 0.2
    loner_inference: float = 0.8
    other_inference: float = 0.2
    loner_threshold: int = 1
    isolated_focus: float = 0.9
    isolated_inference: float = 0.9

    @classmethod
    def figure5(cls) -> "AdvancedAdversary":
        """The exact two-tier constants printed in the paper's Figure 5."""
        return cls(isolated_focus=0.8, isolated_inference=0.8)

    def focus_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        connected = account_graph.neighbor_count(node_id)
        if connected == 0:
            return self.isolated_focus
        if connected <= self.loner_threshold:
            return self.loner_focus
        return self.other_focus

    def inference_probability(self, account_graph: PropertyGraph, node_id: NodeId) -> float:
        connected = account_graph.neighbor_count(node_id)
        if connected == 0:
            return self.isolated_inference
        if connected <= self.loner_threshold:
            return self.loner_inference
        return self.other_inference


#: The default adversary used by the evaluation (Figure 5's constants).
DEFAULT_ADVERSARY = AdvancedAdversary()


def opacity(
    original: PropertyGraph,
    account: ProtectedAccount,
    edge: EdgeKey,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
) -> float:
    """Opacity of one original edge with respect to a protected account (Figure 4)."""
    adversary = adversary if adversary is not None else DEFAULT_ADVERSARY
    source, target = edge
    if account.contains_original_edge(source, target):
        return 0.0
    account_source = account.account_node_of(source)
    account_target = account.account_node_of(target)
    if account_source is None or account_target is None:
        return 1.0
    inference = _inference_likelihood(
        account.graph,
        account_source,
        account_target,
        adversary,
        normalize_focus=normalize_focus,
    )
    return max(0.0, min(1.0, 1.0 - inference))


def _inference_likelihood(
    account_graph: PropertyGraph,
    account_source: NodeId,
    account_target: NodeId,
    adversary: AttackerModel,
    *,
    normalize_focus: bool,
) -> float:
    """``I`` — probability the attacker names the hidden edge from either endpoint."""
    node_ids = account_graph.node_ids()
    if len(node_ids) < 2:
        return 0.0
    focus_weights = {
        node_id: max(0.0, adversary.focus_probability(account_graph, node_id)) for node_id in node_ids
    }
    inference_weights = {
        node_id: max(0.0, adversary.inference_probability(account_graph, node_id))
        for node_id in node_ids
    }
    total_focus = sum(focus_weights.values())

    def focus(node_id: NodeId) -> float:
        weight = focus_weights[node_id]
        if not normalize_focus:
            return weight
        return weight / total_focus if total_focus > 0 else 0.0

    def guess(from_node: NodeId, to_node: NodeId) -> float:
        """P(attacker focused on ``from_node`` names ``to_node`` as the other endpoint)."""
        denominator = sum(
            weight for node_id, weight in inference_weights.items() if node_id != from_node
        )
        if denominator <= 0:
            return 0.0
        return inference_weights[to_node] / denominator

    likelihood = focus(account_source) * guess(account_source, account_target) + focus(
        account_target
    ) * guess(account_target, account_source)
    return max(0.0, min(1.0, likelihood))


def hidden_edges(original: PropertyGraph, account: ProtectedAccount) -> List[EdgeKey]:
    """Original edges that the account does not show between corresponding nodes."""
    return [
        edge.key
        for edge in original.edges()
        if not account.contains_original_edge(edge.source, edge.target)
    ]


def opacity_profile(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
) -> Dict[EdgeKey, float]:
    """Per-edge opacity for a set of original edges (default: every hidden edge)."""
    if edges is None:
        edges = hidden_edges(original, account)
    return {
        tuple(edge): opacity(
            original, account, tuple(edge), adversary=adversary, normalize_focus=normalize_focus
        )
        for edge in edges
    }


def average_opacity(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
) -> float:
    """Average opacity over a set of original edges.

    The default edge set is every original edge the account hides; Section
    4.2 notes this average is how an administrator evaluates whole-account
    trade-offs.  Returns 1.0 when there is nothing hidden (nothing can be
    inferred).
    """
    profile = opacity_profile(
        original, account, edges, adversary=adversary, normalize_focus=normalize_focus
    )
    if not profile:
        return 1.0
    return sum(profile.values()) / len(profile)


@dataclass(frozen=True)
class OpacityReport:
    """Average and per-edge opacity for one account (used by experiment drivers)."""

    average: float
    per_edge: Dict[EdgeKey, float]

    def minimum(self) -> float:
        """The least-protected hidden edge's opacity (1.0 when nothing is hidden)."""
        return min(self.per_edge.values(), default=1.0)

    def as_dict(self) -> Dict[str, object]:
        return {"average_opacity": round(self.average, 6), "min_opacity": round(self.minimum(), 6)}


def opacity_report(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
) -> OpacityReport:
    """Build an :class:`OpacityReport` for a set of edges (default: all hidden)."""
    profile = opacity_profile(
        original, account, edges, adversary=adversary, normalize_focus=normalize_focus
    )
    average = sum(profile.values()) / len(profile) if profile else 1.0
    return OpacityReport(average=average, per_edge=profile)
