"""Release policies: everything a provider publishes about one data set.

A :class:`ReleasePolicy` bundles the four ingredients the protection
algorithms need:

* the privilege lattice,
* the ``lowest()`` privilege of each node (Definition 3),
* the per-incidence edge markings (Definition 7),
* the surrogate registry (Section 3.1).

It also offers the convenience operations the evaluation uses constantly:
"protect this edge by hiding" / "protect this edge by surrogating"
(Section 6's two strategies) and "compute this graph's high-water set".
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.core.markings import Marking, MarkingPolicy
from repro.core.privileges import HighWaterSet, Privilege, PrivilegeLattice
from repro.core.surrogates import Surrogate, SurrogateRegistry
from repro.exceptions import PolicyError
from repro.graph.model import EdgeKey, NodeId, PropertyGraph

#: The two edge-protection strategies compared throughout the evaluation.
STRATEGY_HIDE = "hide"
STRATEGY_SURROGATE = "surrogate"
STRATEGIES = (STRATEGY_HIDE, STRATEGY_SURROGATE)


class ReleasePolicy:
    """The provider-specified release policy for one data set.

    Example
    -------
    >>> from repro.core.privileges import figure1_lattice
    >>> lattice, privileges = figure1_lattice()
    >>> policy = ReleasePolicy(lattice)
    >>> policy.set_lowest("f", privileges["High-1"])
    >>> policy.visible("f", privileges["High-2"])
    False
    """

    def __init__(
        self,
        lattice: Optional[PrivilegeLattice] = None,
        *,
        default_lowest: Optional[Privilege] = None,
        default_protected_marking: Marking = Marking.HIDE,
        use_null_surrogates: bool = False,
    ) -> None:
        self.lattice = lattice if lattice is not None else PrivilegeLattice()
        self.default_lowest = (
            self.lattice.get(default_lowest) if default_lowest is not None else self.lattice.public
        )
        self._lowest: Dict[NodeId, Privilege] = {}
        #: Order-independent content fingerprint of ``_lowest`` (mod-2^32 sum
        #: of per-assignment CRCs), maintained by :meth:`set_lowest` so
        #: checkpoint drift checks read it in O(1).
        self._lowest_crc = 0
        self.markings = MarkingPolicy(
            self.lattice,
            lowest_of=self.lowest,
            default_protected_marking=default_protected_marking,
        )
        self.surrogates = SurrogateRegistry(self.lattice)
        #: When True, nodes with no registered surrogate and no visibility are
        #: represented by an auto-generated ``<null>`` surrogate instead of
        #: being omitted from the protected account.
        self.use_null_surrogates = use_null_surrogates

    # ------------------------------------------------------------------ #
    # lowest() assignments
    # ------------------------------------------------------------------ #
    def set_lowest(self, node_id: NodeId, privilege: object) -> None:
        """Declare the lowest privilege required to see ``node_id``."""
        privilege = self.lattice.get(privilege)
        old = self._lowest.get(node_id)
        crc = self._lowest_crc
        if old is not None:
            crc -= zlib.crc32(f"{node_id!r}\x1f{old.name}".encode("utf-8"))
        self._lowest[node_id] = privilege
        self._lowest_crc = (
            crc + zlib.crc32(f"{node_id!r}\x1f{privilege.name}".encode("utf-8"))
        ) & 0xFFFFFFFF
        # Default incidence markings read lowest() through the bound callable,
        # so compiled marking views must be invalidated explicitly.
        self.markings.touch()

    def set_lowest_bulk(self, assignments: Mapping[NodeId, object]) -> None:
        """Declare many ``lowest()`` assignments at once."""
        for node_id, privilege in assignments.items():
            self.set_lowest(node_id, privilege)

    def lowest(self, node_id: NodeId) -> Privilege:
        """The lowest privilege required to see ``node_id`` (default: Public)."""
        return self._lowest.get(node_id, self.default_lowest)

    def lowest_assignments(self) -> Dict[NodeId, Privilege]:
        """A copy of every explicit ``lowest()`` assignment."""
        return dict(self._lowest)

    def visible(self, node_id: NodeId, privilege: object) -> bool:
        """Definition 1 applied through the lattice: may this class see the node?"""
        return self.lattice.dominates(privilege, self.lowest(node_id))

    def visible_nodes(self, graph: PropertyGraph, privilege: object) -> Set[NodeId]:
        """Every node of ``graph`` visible via ``privilege``."""
        return {node_id for node_id in graph.node_ids() if self.visible(node_id, privilege)}

    def protected_nodes(self, graph: PropertyGraph, privilege: object) -> Set[NodeId]:
        """Every node of ``graph`` *not* visible via ``privilege``."""
        return {node_id for node_id in graph.node_ids() if not self.visible(node_id, privilege)}

    def high_water(self, graph: PropertyGraph) -> HighWaterSet:
        """The high-water set of ``graph`` under this policy (Definition 6)."""
        return HighWaterSet.of_nodes(
            self.lattice, {node_id: self.lowest(node_id) for node_id in graph.node_ids()}
        )

    # ------------------------------------------------------------------ #
    # surrogate management
    # ------------------------------------------------------------------ #
    def add_surrogate(
        self,
        original_id: NodeId,
        lowest: object,
        *,
        surrogate_id: Optional[NodeId] = None,
        features: Optional[Mapping[str, object]] = None,
        kind: Optional[str] = None,
        info_score: Optional[float] = None,
    ) -> Surrogate:
        """Register a surrogate, validating it against the original's ``lowest``."""
        return self.surrogates.add(
            original_id,
            lowest,
            surrogate_id=surrogate_id,
            features=features,
            kind=kind,
            info_score=info_score,
            original_lowest=self.lowest(original_id),
        )

    def best_surrogate(
        self,
        graph: PropertyGraph,
        original_id: NodeId,
        privilege: object,
    ) -> Optional[Surrogate]:
        """The best registered surrogate of a node visible via ``privilege``."""
        original_features = (
            graph.node(original_id).features if graph.has_node(original_id) else None
        )
        return self.surrogates.best_surrogate(
            original_id, privilege, original_features=original_features
        )

    # ------------------------------------------------------------------ #
    # edge protection strategies (Section 6)
    # ------------------------------------------------------------------ #
    def protect_edge(
        self,
        edge: EdgeKey,
        privilege: object,
        *,
        strategy: str = STRATEGY_SURROGATE,
    ) -> None:
        """Protect one directed edge for one consumer class.

        ``strategy="hide"`` marks the target-side incidence ``HIDE``: the
        edge disappears and may not be summarised.  ``strategy="surrogate"``
        marks the target-side incidence ``SURROGATE``: the edge disappears
        but paths continuing beyond the target may be summarised by a
        surrogate edge from the source to the first visible nodes further
        along (the behaviour evaluated in Section 6).
        """
        if strategy not in STRATEGIES:
            raise PolicyError(f"unknown protection strategy {strategy!r}; expected one of {STRATEGIES}")
        marking = Marking.HIDE if strategy == STRATEGY_HIDE else Marking.SURROGATE
        source_id, target_id = edge
        self.markings.set_marking(target_id, edge, privilege, marking)
        # The source side stays visible so the source node can anchor a
        # surrogate edge; an explicit VISIBLE marking records that decision.
        self.markings.set_marking(source_id, edge, privilege, Marking.VISIBLE)

    def protect_edges(
        self,
        edges: Iterable[EdgeKey],
        privilege: object,
        *,
        strategy: str = STRATEGY_SURROGATE,
    ) -> int:
        """Protect many edges with one strategy; returns how many were marked."""
        count = 0
        for edge in edges:
            self.protect_edge(edge, privilege, strategy=strategy)
            count += 1
        return count

    def protect_node(
        self,
        graph: PropertyGraph,
        node_id: NodeId,
        privilege: object,
        *,
        incident_marking: Marking = Marking.SURROGATE,
        lowest: Optional[object] = None,
    ) -> None:
        """Protect a node's role while optionally keeping connectivity through it.

        Sets the node's ``lowest`` (when given), and marks the node-side
        incidence of every incident edge with ``incident_marking`` —
        ``SURROGATE`` preserves connectivity via surrogate edges,
        ``HIDE`` severs it (the naive behaviour).
        """
        if lowest is not None:
            self.set_lowest(node_id, lowest)
        self.markings.mark_incident_edges(graph, node_id, privilege, incident_marking)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "ReleasePolicy":
        """A deep-enough copy: markings and lowest assignments are independent.

        The surrogate registry is shared (surrogate definitions are data, not
        per-experiment state); callers that need an isolated registry can
        replace ``copy().surrogates``.
        """
        clone = ReleasePolicy(
            self.lattice,
            default_lowest=self.default_lowest,
            default_protected_marking=self.markings.default_protected_marking,
            use_null_surrogates=self.use_null_surrogates,
        )
        clone._lowest = dict(self._lowest)
        clone._lowest_crc = self._lowest_crc
        clone.markings = self.markings.copy()
        clone.markings.bind_lowest(clone.lowest)
        clone.surrogates = self.surrogates
        return clone

    def describe(self, graph: PropertyGraph, privilege: object) -> Dict[str, object]:
        """A compact report of what this policy does to ``graph`` for one class."""
        privilege = self.lattice.get(privilege)
        states = self.markings.edge_states(graph, privilege)
        return {
            "privilege": privilege.name,
            "visible_nodes": len(self.visible_nodes(graph, privilege)),
            "protected_nodes": len(self.protected_nodes(graph, privilege)),
            "visible_edges": sum(1 for state in states.values() if state.value == "visible"),
            "hidden_edges": sum(1 for state in states.values() if state.value == "hidden"),
            "surrogate_route_edges": sum(1 for state in states.values() if state.value == "surrogate"),
            "registered_surrogates": len(self.surrogates),
            "high_water": sorted(self.high_water(graph).names()),
        }
