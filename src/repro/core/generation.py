"""The Surrogate Generation Algorithm (paper Appendix B, Algorithms 1–3).

Given an original graph, a release policy and a target consumer class
(privilege-predicate ``p``), the algorithm produces the maximally
informative protected account for that class:

1. **Nodes** (maximal node visibility + dominant surrogacy): every node
   visible via ``p`` is carried over unchanged; every other node is
   represented by its best visible surrogate (or the ``<null>`` surrogate
   when the policy enables automatic nulls), or omitted when no surrogate is
   available.
2. **Visible edges**: every edge whose two incidences are marked ``VISIBLE``
   and whose endpoints are represented appears between the corresponding
   account nodes.
3. **Surrogate edges** (maximal connectivity): for every edge routed
   ``SURROGATE``, the visible-set walks of Algorithm 2 find the nearest
   representable anchors behind its source and beyond its target, and a
   surrogate edge is added between each anchor pair — unless the pair is
   already linked by a visible edge, or the pair has a sensitive direct
   relationship in the original graph (Definition 8, clause 2).

The protected account this produces satisfies the three properties of
Definition 9, which is what Theorem 1 requires for utility maximality; the
property-based tests in ``tests/property`` check exactly that.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, MutableMapping, Optional, Set, Tuple

from repro.core.markings import EdgeState
from repro.core.permitted import VisibleWalkCache, surrogate_edge_candidates
from repro.core.policy import ReleasePolicy, STRATEGY_HIDE, STRATEGY_SURROGATE
from repro.core.privileges import Privilege
from repro.core.protected_account import ProtectedAccount
from repro.core.surrogates import null_surrogate
from repro.exceptions import ProtectionError
from repro.graph.model import EdgeKey, NodeId, PropertyGraph

#: Label attached to computed surrogate edges in the account graph.
SURROGATE_EDGE_LABEL = "surrogate"

#: Key type of the ``walks_cache`` registry accepted by
#: :func:`build_protected_account`: (privilege name, markings-policy version,
#: compiled flag).  The graph's version is deliberately *not* part of the
#: key: a registry hit is revalidated against the live graph — identity,
#: anchors, markings view — and a version gap is closed by replaying the
#: graph's recorded deltas through
#: :meth:`~repro.core.permitted.VisibleWalkCache.apply_delta`, which evicts
#: only the walks the edits can touch.  Only when no delta chain exists (or
#: a delta is unpatchable) is the entry rebuilt.
WalkCacheKey = Tuple[str, int, bool]


def account_cache_token(
    graph: PropertyGraph, policy: ReleasePolicy
) -> Tuple[int, int, int, int, bool]:
    """The version fingerprint any cache of ``build_*`` outputs must key on.

    A protected account is a pure function of the graph's structure and
    every policy ingredient: the markings/``lowest()`` assignments, the
    surrogate registry, the privilege lattice and the null-surrogate flag.
    Each mutable ingredient carries a monotonic mutation counter
    (:attr:`~repro.graph.model.PropertyGraph.version`,
    :attr:`~repro.core.markings.MarkingPolicy.version`,
    :attr:`~repro.core.surrogates.SurrogateRegistry.version`,
    :attr:`~repro.core.privileges.PrivilegeLattice.version`), so a result
    keyed by this token can never be served stale: any mutation bumps a
    counter and the old entry simply stops matching.  This is the hook
    :mod:`repro.api.cache` builds its account-level result cache on; the
    shared visible-walk registries key on the graph/markings pair
    (:data:`WalkCacheKey`), which is sufficient there because walks never
    consult surrogates or the lattice beyond the compiled view.
    """
    return (
        graph.version,
        policy.markings.version,
        policy.surrogates.version,
        policy.lattice.version,
        policy.use_null_surrogates,
    )


def build_protected_account(
    graph: PropertyGraph,
    policy: ReleasePolicy,
    privilege: object,
    *,
    include_surrogate_edges: bool = True,
    ensure_maximal_connectivity: bool = False,
    strategy: str = STRATEGY_SURROGATE,
    name: Optional[str] = None,
    compiled: bool = True,
    walks_cache: Optional[MutableMapping[WalkCacheKey, VisibleWalkCache]] = None,
) -> ProtectedAccount:
    """Run the Surrogate Generation Algorithm for one consumer class.

    This is the canonical implementation behind
    :class:`repro.api.ProtectionService`; application code should go through
    the service (or through :class:`ProtectionEngine`) rather than call this
    directly, but the function is stable API for the other ``repro.core``
    modules.

    Parameters
    ----------
    graph:
        The original graph ``G``.
    policy:
        The provider's release policy (lattice, ``lowest()``, markings,
        surrogates).
    privilege:
        The consumer class ``p``; the account's high-water set is ``{p}``.
    include_surrogate_edges:
        Disable to skip step 3 (used by ablation benchmarks that isolate the
        contribution of surrogate edges).
    ensure_maximal_connectivity:
        The edge-local walks of Appendix B can, under unusual marking
        combinations (summaries that would have to *compose* across two
        differently-anchored segments), miss a pair required by
        Definition 9.3.  Enabling this flag runs an extra closure-repair
        pass that guarantees maximal connectivity at the cost of one
        permitted-reachability BFS per represented node.  The paper's own
        policies never need it; the property-based test suite uses it to
        check Theorem 1 end to end.
    strategy:
        Free-form label recorded on the account (``"surrogate"`` by
        default); it does not change the algorithm — the *markings* decide
        between hiding and surrogating.
    compiled:
        When True (default) the policy's markings are compiled once into a
        per-privilege :class:`~repro.core.markings.CompiledMarkingView` and
        every per-edge question below is an O(1) table lookup.  ``False``
        forces the uncompiled reference path; the equivalence test suite
        uses it to check the two paths produce identical accounts.
    walks_cache:
        Optional registry of :class:`~repro.core.permitted.VisibleWalkCache`
        objects shared across calls **against the same policy object**.
        Keyed by (privilege name, markings-policy version, compiled) — see
        :data:`WalkCacheKey`; a hit is revalidated against the live graph
        and carried across graph edits by replaying recorded deltas, so the
        graph's version is deliberately not part of the key.  The owner
        must not share one registry between different policies.
        :meth:`repro.api.ProtectionService.protect_many` passes one so
        repeated requests for the same consumer class reuse each other's
        visible-set walks.
    """
    privilege = policy.lattice.get(privilege)
    markings = policy.markings
    if compiled:
        markings = policy.markings.compile(graph, privilege)
    account = PropertyGraph(
        name=name if name is not None else _account_name(graph, privilege)
    )
    correspondence: Dict[NodeId, NodeId] = {}
    surrogate_nodes: Set[NodeId] = set()
    to_account: Dict[NodeId, NodeId] = {}

    # ------------------------------------------------------------------ #
    # Step 1 — nodes (Algorithm 1, lines 4-10)
    # ------------------------------------------------------------------ #
    for node in graph.nodes():
        if policy.visible(node.node_id, privilege):
            account.add_node(node.node_id, kind=node.kind, features=dict(node.features))
            correspondence[node.node_id] = node.node_id
            to_account[node.node_id] = node.node_id
            continue
        surrogate = policy.best_surrogate(graph, node.node_id, privilege)
        if surrogate is None and policy.use_null_surrogates:
            surrogate = null_surrogate(node.node_id, policy.lattice.public, kind=node.kind)
        if surrogate is None:
            continue
        surrogate_id = surrogate.surrogate_id
        if account.has_node(surrogate_id):
            raise ProtectionError(
                f"surrogate id {surrogate_id!r} collides with another node in the protected account"
            )
        account.add_node(surrogate_id, kind=surrogate.kind, features=dict(surrogate.features))
        correspondence[surrogate_id] = node.node_id
        surrogate_nodes.add(surrogate_id)
        to_account[node.node_id] = surrogate_id

    anchors = set(to_account)

    # ------------------------------------------------------------------ #
    # Step 2 — visible edges (Algorithm 1, lines 12-14; Algorithm 3)
    # ------------------------------------------------------------------ #
    for edge in graph.edges():
        if markings.edge_state(edge.key, privilege) is not EdgeState.VISIBLE:
            continue
        account_source = to_account.get(edge.source)
        account_target = to_account.get(edge.target)
        if account_source is None or account_target is None:
            continue
        account.add_edge(
            account_source,
            account_target,
            label=edge.label,
            features=dict(edge.features),
        )

    # ------------------------------------------------------------------ #
    # Step 3 — surrogate edges (Algorithm 1, lines 15-29; Algorithm 2)
    # ------------------------------------------------------------------ #
    surrogate_edges: Set[EdgeKey] = set()
    if include_surrogate_edges:
        walks = None
        cache_key: Optional[WalkCacheKey] = None
        if walks_cache is not None and not graph.in_batch:
            cache_key = (privilege.name, policy.markings.version, compiled)
            walks = walks_cache.get(cache_key)
            if walks is not None:
                walks = _revalidate_walks(walks, graph, markings, anchors, compiled)
        if walks is None:
            walks = VisibleWalkCache(
                graph, markings, privilege, anchors=anchors, compiled=compiled
            )
            if walks_cache is not None and cache_key is not None:
                walks_cache[cache_key] = walks
        for original_source, original_target in sorted(
            surrogate_edge_candidates(
                graph, markings, privilege, anchors=anchors, walks=walks, compiled=compiled
            ),
            key=lambda pair: (repr(pair[0]), repr(pair[1])),
        ):
            account_source = to_account.get(original_source)
            account_target = to_account.get(original_target)
            if account_source is None or account_target is None:
                continue
            if account.has_edge(account_source, account_target):
                continue
            account.add_edge(account_source, account_target, label=SURROGATE_EDGE_LABEL)
            surrogate_edges.add((account_source, account_target))

    # ------------------------------------------------------------------ #
    # Optional closure repair (Definition 9.3 under adversarial markings)
    # ------------------------------------------------------------------ #
    if include_surrogate_edges and ensure_maximal_connectivity:
        _repair_maximal_connectivity(
            graph, markings, privilege, account, to_account, surrogate_edges, compiled=compiled
        )

    return ProtectedAccount(
        graph=account,
        correspondence=correspondence,
        privilege=privilege,
        surrogate_nodes=surrogate_nodes,
        surrogate_edges=surrogate_edges,
        strategy=strategy,
    )


def _revalidate_walks(
    walks: VisibleWalkCache,
    graph: PropertyGraph,
    markings: object,
    anchors: Set[NodeId],
    compiled: bool,
) -> Optional[VisibleWalkCache]:
    """Vet (and delta-patch) a registry walk cache before trusting it.

    A hit must describe the same graph object, the same anchor set and —
    on the compiled path — the *same* marking-view object (compile()
    patches views in place, so identity survives graph edits; a view the
    policy's LRU rebuilt fails this and the walks are rebuilt with it).
    A graph-version gap is closed by replaying the recorded delta chain;
    ``None`` means the entry cannot be trusted and must be rebuilt.
    """
    if walks.graph is not graph or walks.anchors != anchors:
        return None
    if compiled and walks.markings is not markings:
        return None
    if walks.graph_version != graph.version:
        deltas = graph.deltas_since(walks.graph_version)
        if deltas is None:
            return None
        for delta in deltas:
            if walks.apply_delta(delta) is None:
                return None
    return walks


def generate_protected_account(
    graph: PropertyGraph,
    policy: ReleasePolicy,
    privilege: object,
    *,
    include_surrogate_edges: bool = True,
    ensure_maximal_connectivity: bool = False,
    strategy: str = STRATEGY_SURROGATE,
    name: Optional[str] = None,
    compiled: bool = True,
) -> ProtectedAccount:
    """Deprecated free-function entry point; use :class:`repro.api.ProtectionService`.

    Delegates to ``ProtectionService(graph, policy).protect(...)`` and
    returns the resulting account, so it stays byte-identical to the service
    path (the equivalence tests in ``tests/api`` pin this down).
    """
    warnings.warn(
        "generate_protected_account() is deprecated; use "
        "repro.api.ProtectionService(graph, policy).protect(privilege=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.service import ProtectionService

    return (
        ProtectionService(graph, policy)
        .protect(
            privilege=privilege,
            include_surrogate_edges=include_surrogate_edges,
            repair_connectivity=ensure_maximal_connectivity,
            strategy=strategy,
            name=name,
            compiled=compiled,
            score=False,
        )
        .account
    )


def _repair_maximal_connectivity(
    graph: PropertyGraph,
    markings: object,
    privilege: Privilege,
    account: PropertyGraph,
    to_account: Dict[NodeId, NodeId],
    surrogate_edges: Set[EdgeKey],
    *,
    compiled: bool = True,
) -> None:
    """Add the surrogate edges needed to satisfy Definition 9.3 exactly.

    For every represented original ``a``, every represented original ``b``
    joined to it by an HW-permitted path must be reachable from it in the
    account; any missing pair gets a direct surrogate edge (which is sound:
    the permitted path is in particular a path in ``G``).  The caller hands
    over its compiled marking view, so the per-node reachability BFS runs
    on O(1) edge-state lookups.
    """
    from repro.core.permitted import hw_permitted_targets
    from repro.graph.paths import single_source_shortest_lengths

    for original_source, account_source in to_account.items():
        permitted = hw_permitted_targets(
            graph, markings, privilege, original_source, compiled=compiled
        )
        if not permitted:
            continue
        reachable = set(single_source_shortest_lengths(account, account_source))
        for original_target in sorted(permitted, key=repr):
            account_target = to_account.get(original_target)
            if account_target is None or account_target == account_source:
                continue
            if account_target in reachable:
                continue
            if not account.has_edge(account_source, account_target):
                account.add_edge(account_source, account_target, label=SURROGATE_EDGE_LABEL)
                surrogate_edges.add((account_source, account_target))
            # The new edge makes everything reachable from the target reachable too.
            reachable.add(account_target)
            reachable |= set(single_source_shortest_lengths(account, account_target))


class ProtectionEngine:
    """Facade bundling a release policy with the generation algorithm.

    The engine is the low-level, policy-only facade: it produces accounts
    but does not score, persist or enforce them.  Applications should prefer
    :class:`repro.api.ProtectionService`, which wraps an engine together
    with the utility/opacity measures, the graph store and query
    enforcement behind one request/response API.
    """

    def __init__(self, policy: ReleasePolicy) -> None:
        self.policy = policy

    # ------------------------------------------------------------------ #
    # primary entry points
    # ------------------------------------------------------------------ #
    def protect(
        self,
        graph: PropertyGraph,
        privilege: object,
        *,
        include_surrogate_edges: bool = True,
        ensure_maximal_connectivity: bool = False,
        strategy: str = STRATEGY_SURROGATE,
    ) -> ProtectedAccount:
        """The maximally informative protected account for ``privilege``."""
        return build_protected_account(
            graph,
            self.policy,
            privilege,
            include_surrogate_edges=include_surrogate_edges,
            ensure_maximal_connectivity=ensure_maximal_connectivity,
            strategy=strategy,
        )

    def protect_all_classes(
        self, graph: PropertyGraph, privileges: Optional[Iterable[object]] = None
    ) -> Dict[str, ProtectedAccount]:
        """One account per consumer class (default: every declared privilege)."""
        if privileges is None:
            privileges = self.policy.lattice.privileges()
        accounts: Dict[str, ProtectedAccount] = {}
        for privilege in privileges:
            resolved = self.policy.lattice.get(privilege)
            accounts[resolved.name] = self.protect(graph, resolved)
        return accounts

    # ------------------------------------------------------------------ #
    # edge-protection variants used by the evaluation
    # ------------------------------------------------------------------ #
    def with_edge_protection(
        self,
        graph: PropertyGraph,
        edges: Iterable[EdgeKey],
        privilege: object,
        *,
        strategy: str = STRATEGY_SURROGATE,
    ) -> ProtectedAccount:
        """Protect ``edges`` with one strategy, then generate the account.

        This is the exact transformation compared in Section 6: the same
        edges are protected either by hiding or by surrogating, and the
        resulting accounts are scored for utility and opacity.  The engine's
        own policy is left untouched (the protection is applied to a copy).
        """
        scoped = self.policy.copy()
        scoped.protect_edges(list(edges), privilege, strategy=strategy)
        return build_protected_account(graph, scoped, privilege, strategy=strategy)

    def compare_strategies(
        self,
        graph: PropertyGraph,
        edges: Iterable[EdgeKey],
        privilege: object,
    ) -> Dict[str, ProtectedAccount]:
        """Both the hide and the surrogate account for the same protected edges."""
        edges = list(edges)
        return {
            STRATEGY_HIDE: self.with_edge_protection(graph, edges, privilege, strategy=STRATEGY_HIDE),
            STRATEGY_SURROGATE: self.with_edge_protection(
                graph, edges, privilege, strategy=STRATEGY_SURROGATE
            ),
        }


def _account_name(graph: PropertyGraph, privilege: Privilege) -> str:
    base = graph.name or "graph"
    return f"{base}@{privilege.name}"
