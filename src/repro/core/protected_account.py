"""The :class:`ProtectedAccount` result type (paper Definition 5).

A protected account ``G' = (N', E')`` of ``G``:

* every node of ``G'`` *corresponds* to a unique node of ``G`` — it is
  either the original node (same features) or one of its surrogates,
* every path between two nodes of ``G'`` has a matching path between the
  corresponding nodes of ``G`` (no fabricated connectivity).

Besides the graph itself, the account carries the correspondence map, the
high-water privilege it was generated for, which nodes/edges are surrogates
and which strategy produced it — everything the utility, opacity and
validation modules need to compare the account against the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.privileges import Privilege
from repro.exceptions import ProtectionError
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


@dataclass
class ProtectedAccount:
    """A protected account of an original graph.

    Attributes
    ----------
    graph:
        The released graph ``G'``.
    correspondence:
        Map from node id in ``G'`` to the corresponding node id in ``G``.
        It must be injective (Definition 5's "unique node" clause).
    privilege:
        The privilege-predicate this account targets (the singleton
        high-water set of Appendix B); ``None`` for accounts built without a
        target class (e.g. ad-hoc transformations in tests).
    surrogate_nodes:
        Ids (in ``G'``) of nodes that are surrogates rather than originals.
    surrogate_edges:
        Edge keys (in ``G'``) of computed surrogate edges.
    strategy:
        Free-form label of the transformation that produced the account
        ("surrogate", "hide", "naive", ...), used in experiment reports.
    derivation_peers:
        Accounts structurally related to this one — a merged
        multi-privilege account and its per-class sub-accounts share one
        family tuple (set by :func:`repro.core.multi.merge_accounts`).  The
        opacity engine uses the family to *derive* one account's compiled
        adversary simulation from another's
        (:meth:`~repro.core.opacity.CompiledOpacityView.derive_for`)
        instead of re-simulating per sub-account.  Metadata only: excluded
        from comparison, never required.
    """

    graph: PropertyGraph
    correspondence: Dict[NodeId, NodeId]
    privilege: Optional[Privilege] = None
    surrogate_nodes: Set[NodeId] = field(default_factory=set)
    surrogate_edges: Set[EdgeKey] = field(default_factory=set)
    strategy: str = "custom"
    derivation_peers: Tuple["ProtectedAccount", ...] = field(
        default=(), compare=False, repr=False
    )
    #: Lazily built original -> account-node index (see :meth:`_reverse`).
    _reverse_cache: Optional[Dict[NodeId, NodeId]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        missing = [node_id for node_id in self.graph.node_ids() if node_id not in self.correspondence]
        if missing:
            raise ProtectionError(
                f"protected account graph contains nodes without a correspondence entry: {missing!r}"
            )
        originals = list(self.correspondence.values())
        if len(set(originals)) != len(originals):
            raise ProtectionError(
                "protected account correspondence is not injective: two nodes of G' correspond "
                "to the same node of G (violates Definition 5)"
            )

    # ------------------------------------------------------------------ #
    # correspondence queries
    # ------------------------------------------------------------------ #
    def original_of(self, account_node: NodeId) -> NodeId:
        """The original node of ``G`` that ``account_node`` corresponds to."""
        try:
            return self.correspondence[account_node]
        except KeyError:
            raise ProtectionError(f"node {account_node!r} is not part of this protected account") from None

    def account_node_of(self, original_node: NodeId) -> Optional[NodeId]:
        """The ``G'`` node corresponding to ``original_node`` (or ``None``)."""
        return self._reverse().get(original_node)

    def represents(self, original_node: NodeId) -> bool:
        """True when some ``G'`` node corresponds to ``original_node``."""
        return original_node in self._reverse()

    def represented_originals(self) -> Set[NodeId]:
        """Every original node that has a corresponding node in this account."""
        return set(self.correspondence.values())

    def _reverse(self) -> Dict[NodeId, NodeId]:
        """The original -> account-node index, built once and reused.

        The utility and opacity measures call :meth:`account_node_of` for
        every node of ``G``; rebuilding the reverse dict per call would make
        those passes quadratic.  The cache is refreshed when the
        correspondence map grows or shrinks; callers replacing entries
        in place (same size) must reset ``_reverse_cache`` to ``None``.
        """
        cache = self._reverse_cache
        if cache is None or len(cache) != len(self.correspondence):
            cache = {original: account for account, original in self.correspondence.items()}
            self._reverse_cache = cache
        return cache

    # ------------------------------------------------------------------ #
    # surrogate queries
    # ------------------------------------------------------------------ #
    def is_surrogate_node(self, account_node: NodeId) -> bool:
        """True when ``account_node`` is a surrogate (not the original node)."""
        return account_node in self.surrogate_nodes

    def is_surrogate_edge(self, source: NodeId, target: NodeId) -> bool:
        """True when the ``G'`` edge is a computed surrogate edge."""
        return (source, target) in self.surrogate_edges

    def original_node_ids(self) -> List[NodeId]:
        """Ids of ``G'`` nodes that are originals (not surrogates)."""
        return [node_id for node_id in self.graph.node_ids() if node_id not in self.surrogate_nodes]

    def visible_edge_keys(self) -> List[EdgeKey]:
        """Edge keys of ``G'`` edges that were carried over directly from ``G``."""
        return [key for key in self.graph.edge_keys() if key not in self.surrogate_edges]

    # ------------------------------------------------------------------ #
    # edge correspondence helpers (used by opacity)
    # ------------------------------------------------------------------ #
    def contains_original_edge(self, source: NodeId, target: NodeId) -> bool:
        """True when the account shows an edge between the nodes corresponding to
        the *original* nodes ``source`` and ``target`` (in that direction).

        Both visible and surrogate edges count: either way, the account tells
        the consumer the two nodes are directly linked.
        """
        account_source = self.account_node_of(source)
        account_target = self.account_node_of(target)
        if account_source is None or account_target is None:
            return False
        return self.graph.has_edge(account_source, account_target)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """A compact description used in experiment output and logs."""
        return {
            "strategy": self.strategy,
            "privilege": self.privilege.name if self.privilege else None,
            "nodes": self.graph.node_count(),
            "original_nodes": len(self.original_node_ids()),
            "surrogate_nodes": len(self.surrogate_nodes),
            "edges": self.graph.edge_count(),
            "surrogate_edges": len(self.surrogate_edges),
        }

    def pairs(self) -> FrozenSet[Tuple[NodeId, NodeId]]:
        """All ordered (account node, original node) correspondence pairs."""
        return frozenset(self.correspondence.items())
