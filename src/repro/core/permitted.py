"""HW-permitted paths (Definition 8) and the visible-set walks of Algorithm 2.

A path ``n1 -> ... -> n2`` in the original graph is *HW-permitted* for a
consumer class ``p`` when:

1. no node-edge incidence anywhere on the path is marked ``HIDE`` for ``p``,
   and the incidence of ``n1`` on the path's first edge and the incidence of
   ``n2`` on the path's last edge are both marked ``VISIBLE``; and
2. if the direct edge ``(n1, n2)`` exists in the original graph, each of its
   incidences is marked ``VISIBLE`` — i.e. a sensitive direct relationship
   may never be re-asserted through a longer route.

Surrogate edges summarise HW-permitted paths.  The *visible-set* walk
(Algorithm 2) is the efficient way the generation algorithm discovers the
anchors of those summaries: starting from a surrogate-routed incidence it
travels through further surrogate-routed incidences and stops at the first
nodes whose incidence is ``VISIBLE``.

Performance
-----------
Every function here accepts ``markings`` as either a live
:class:`~repro.core.markings.MarkingPolicy` (the reference semantics, each
incidence resolved per call) or a
:class:`~repro.core.markings.CompiledMarkingView` (O(1) table lookups).  By
default a policy is compiled on entry — one O(V+E) pass amortised across
every walk under the same (graph, privilege) — pass ``compiled=False`` to
force the uncompiled reference path (the equivalence test suite does).

:class:`VisibleWalkCache` additionally memoises whole visible-set walks
keyed by (start, direction), so the per-edge anchor discovery and
blocked-pair re-anchoring inside :func:`surrogate_edge_candidates` share
BFS work across all edges instead of re-walking per edge.  The
Definition-9.3 repair pass of the generation algorithm shares the compiled
marking *view* (its BFS is permitted-reachability, not a visible-set walk).
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.markings import CompiledMarkingView, EdgeState, Marking, MarkingPolicy
from repro.graph.deltas import GraphDelta, record_maintenance
from repro.graph.model import EdgeKey, NodeId, PropertyGraph

#: One evicted memoised walk: (``"forward"``/``"backward"``, start node).
EvictedWalk = Tuple[str, NodeId]

#: Either marking source accepted by the traversal functions.
MarkingSource = Union[MarkingPolicy, CompiledMarkingView]


def _resolve_markings(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    compiled: bool = True,
) -> MarkingSource:
    """Compile a policy into a per-privilege view (unless opted out)."""
    if compiled and isinstance(markings, MarkingPolicy):
        return markings.compile(graph, privilege)
    return markings


def edge_usable(markings: MarkingSource, edge: EdgeKey, privilege: object) -> bool:
    """True when the edge has no ``HIDE`` incidence for ``privilege``."""
    return markings.edge_state(edge, privilege) is not EdgeState.HIDDEN


def direct_edge_allows_path(
    graph: PropertyGraph, markings: MarkingSource, privilege: object, source: NodeId, target: NodeId
) -> bool:
    """Definition 8, clause 2: a sensitive direct edge forbids any permitted path.

    Returns True when either no direct edge ``source -> target`` exists, or
    it exists and both of its incidences are ``VISIBLE``.
    """
    if not graph.has_edge(source, target):
        return True
    return markings.edge_state((source, target), privilege) is EdgeState.VISIBLE


def hw_permitted_path_exists(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    source: NodeId,
    target: NodeId,
) -> bool:
    """True when an HW-permitted path from ``source`` to ``target`` exists."""
    return shortest_hw_permitted_path_length(graph, markings, privilege, source, target) is not None


def shortest_hw_permitted_path_length(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    source: NodeId,
    target: NodeId,
    *,
    compiled: bool = True,
) -> Optional[int]:
    """Length of the shortest HW-permitted path, or ``None`` when none exists."""
    if source == target:
        return None
    markings = _resolve_markings(graph, markings, privilege, compiled)
    if not direct_edge_allows_path(graph, markings, privilege, source, target):
        return None
    # BFS over non-hidden edges.  The first step must leave `source` through
    # an edge whose source-incidence is VISIBLE; arrival at `target` counts
    # only through an edge whose target-incidence is VISIBLE.
    distances: Dict[NodeId, int] = {}
    frontier: deque = deque()
    for successor in graph.iter_successors(source):
        edge = (source, successor)
        if not edge_usable(markings, edge, privilege):
            continue
        if markings.marking(source, edge, privilege) is not Marking.VISIBLE:
            continue
        if successor == target:
            if markings.marking(target, edge, privilege) is Marking.VISIBLE:
                return 1
            continue
        if successor not in distances:
            distances[successor] = 1
            frontier.append(successor)
    best: Optional[int] = None
    while frontier:
        current = frontier.popleft()
        current_distance = distances[current]
        if best is not None and current_distance + 1 >= best:
            continue
        for successor in graph.iter_successors(current):
            edge = (current, successor)
            if not edge_usable(markings, edge, privilege):
                continue
            if successor == target:
                if markings.marking(target, edge, privilege) is Marking.VISIBLE:
                    candidate = current_distance + 1
                    if best is None or candidate < best:
                        best = candidate
                continue
            if successor == source:
                continue
            if successor not in distances:
                distances[successor] = current_distance + 1
                frontier.append(successor)
    return best


def hw_permitted_targets(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    source: NodeId,
    *,
    compiled: bool = True,
) -> Set[NodeId]:
    """Every node reachable from ``source`` along an HW-permitted path.

    Single-source form of Definition 8: one BFS over non-hidden edges whose
    first step leaves ``source`` through a VISIBLE source-incidence; a node
    counts as a permitted target when it is ever entered through an edge
    whose target-incidence is VISIBLE, and the direct-edge clause is applied
    per target.  Used by validation and by the optional maximal-connectivity
    repair pass of the generation algorithm.  Runs over the compiled
    edge-state table, so each step is O(1).
    """
    markings = _resolve_markings(graph, markings, privilege, compiled)
    reached_any: Set[NodeId] = set()
    targets: Set[NodeId] = set()
    frontier: deque = deque()
    for successor in graph.iter_successors(source):
        edge = (source, successor)
        if not edge_usable(markings, edge, privilege):
            continue
        if markings.marking(source, edge, privilege) is not Marking.VISIBLE:
            continue
        if markings.marking(successor, edge, privilege) is Marking.VISIBLE:
            targets.add(successor)
        if successor not in reached_any:
            reached_any.add(successor)
            frontier.append(successor)
    while frontier:
        current = frontier.popleft()
        for successor in graph.iter_successors(current):
            edge = (current, successor)
            if not edge_usable(markings, edge, privilege):
                continue
            if markings.marking(successor, edge, privilege) is Marking.VISIBLE:
                targets.add(successor)
            if successor not in reached_any and successor != source:
                reached_any.add(successor)
                frontier.append(successor)
    targets.discard(source)
    return {
        target
        for target in targets
        if direct_edge_allows_path(graph, markings, privilege, source, target)
    }


def hw_permitted_pairs(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    nodes: Optional[Set[NodeId]] = None,
    *,
    compiled: bool = True,
) -> Set[Tuple[NodeId, NodeId]]:
    """Every ordered pair of (given) nodes joined by an HW-permitted path.

    Used by validation (maximal connectivity, Definition 9.3) rather than by
    generation, which uses the cheaper visible-set walks below.
    """
    markings = _resolve_markings(graph, markings, privilege, compiled)
    candidates = set(nodes) if nodes is not None else set(graph.node_ids())
    pairs: Set[Tuple[NodeId, NodeId]] = set()
    for source in candidates:
        for target in hw_permitted_targets(
            graph, markings, privilege, source, compiled=compiled
        ):
            if target in candidates and target != source:
                pairs.add((source, target))
    return pairs


# --------------------------------------------------------------------------- #
# Algorithm 2: visible-set walks
# --------------------------------------------------------------------------- #
def forward_visible_set(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    start: NodeId,
    *,
    anchors: Optional[Set[NodeId]] = None,
    compiled: bool = True,
) -> Set[NodeId]:
    """Nodes reachable forwards from ``start`` stopping at VISIBLE incidences.

    Walk out-edges whose state is not ``HIDDEN``.  When the far endpoint's
    incidence on the traversed edge is ``VISIBLE`` the endpoint is collected
    and the walk stops there; otherwise the walk continues through it.

    When ``anchors`` is given, only nodes in that set may be collected; a
    node with a VISIBLE incidence that is not an anchor (e.g. a node that
    will not appear in the protected account) is walked *through* instead,
    so that connectivity between representable nodes is never lost.
    """
    markings = _resolve_markings(graph, markings, privilege, compiled)
    return _visible_walk(graph, markings, privilege, start, forward=True, anchors=anchors)[0]


def backward_visible_set(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    start: NodeId,
    *,
    anchors: Optional[Set[NodeId]] = None,
    compiled: bool = True,
) -> Set[NodeId]:
    """Mirror image of :func:`forward_visible_set` over in-edges."""
    markings = _resolve_markings(graph, markings, privilege, compiled)
    return _visible_walk(graph, markings, privilege, start, forward=False, anchors=anchors)[0]


def _visible_walk(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    start: NodeId,
    *,
    forward: bool,
    anchors: Optional[Set[NodeId]] = None,
) -> Tuple[Set[NodeId], Set[NodeId]]:
    """One visible-set walk; returns ``(collected, visited)``.

    ``visited`` is the walk's *traversal region* — the start plus every node
    the walk passed through (collected stop-nodes are not traversed, so they
    are not in it).  The region is exactly the set of nodes whose incident
    edges the walk examined, which is what delta-scoped cache eviction keys
    on: an edge change can only alter walks whose region contains the
    changed edge's near endpoint.
    """
    collected: Set[NodeId] = set()
    visited: Set[NodeId] = {start}
    frontier: deque = deque([start])
    while frontier:
        current = frontier.popleft()
        neighbors = (
            graph.iter_successors(current) if forward else graph.iter_predecessors(current)
        )
        for neighbor in neighbors:
            edge: EdgeKey = (current, neighbor) if forward else (neighbor, current)
            if not edge_usable(markings, edge, privilege):
                continue
            incidence_visible = markings.marking(neighbor, edge, privilege) is Marking.VISIBLE
            collectable = incidence_visible and (anchors is None or neighbor in anchors)
            if collectable:
                collected.add(neighbor)
                continue
            if neighbor not in visited:
                visited.add(neighbor)
                frontier.append(neighbor)
    collected.discard(start)
    return collected, visited


class VisibleWalkCache:
    """Memoised visible-set walks for one (graph, markings, privilege, anchors).

    The surrogate-edge candidate scan asks for the backward walk of every
    protected edge's source and the forward walk of every protected edge's
    target; chains of surrogate-routed edges make those walks land on the
    same start nodes over and over.  Caching by (start, direction) turns the
    per-edge walks into at most one BFS per distinct node, shared between
    the candidate scan and its blocked-pair re-anchoring worklist (and any
    other caller passed the same cache via the ``walks`` parameter).

    The cached sets are frozen so sharing across callers is safe.  The graph
    is held through a weak reference (like
    :class:`~repro.core.markings.CompiledMarkingView`) so long-lived walk
    registries never keep swept-over batch graphs alive; callers always hold
    the graph while walking, and owners verify ``walks.graph is graph``
    before trusting a shared cache, which a dead reference fails naturally.

    Delta maintenance: each memoised walk remembers its *traversal region*
    (the visited set of its BFS), so :meth:`apply_delta` can evict exactly
    the walks an edge edit can affect — a forward walk examines the edge
    ``(u, v)`` only when ``u`` is in its region, a backward walk only when
    ``v`` is — instead of clearing the whole cache.  Node-structural deltas
    (and a markings view that was not carried to the same version first)
    fail the patch, telling the owner to rebuild.
    """

    __slots__ = (
        "_graph_ref",
        "markings",
        "privilege",
        "anchors",
        "graph_version",
        "_forward",
        "_backward",
    )

    def __init__(
        self,
        graph: PropertyGraph,
        markings: MarkingSource,
        privilege: object,
        *,
        anchors: Optional[Set[NodeId]] = None,
        compiled: bool = True,
    ) -> None:
        record_maintenance("walk_cache", "built")
        self._graph_ref = weakref.ref(graph)
        self.markings = _resolve_markings(graph, markings, privilege, compiled)
        self.privilege = privilege
        self.anchors = anchors
        #: Graph version the memoised walks describe (advanced by
        #: :meth:`apply_delta`; owners must not trust a cache whose version
        #: they cannot reconcile with the graph's).
        self.graph_version = graph.version
        #: start -> (collected, visited-region), both frozen.
        self._forward: Dict[NodeId, Tuple[FrozenSet[NodeId], FrozenSet[NodeId]]] = {}
        self._backward: Dict[NodeId, Tuple[FrozenSet[NodeId], FrozenSet[NodeId]]] = {}

    @property
    def graph(self) -> Optional[PropertyGraph]:
        """The walked graph, or ``None`` once it has been garbage-collected."""
        return self._graph_ref()

    def forward(self, start: NodeId) -> FrozenSet[NodeId]:
        """Memoised :func:`forward_visible_set` from ``start``."""
        cached = self._forward.get(start)
        if cached is None:
            collected, visited = _visible_walk(
                self.graph,
                self.markings,
                self.privilege,
                start,
                forward=True,
                anchors=self.anchors,
            )
            cached = (frozenset(collected), frozenset(visited))
            self._forward[start] = cached
        return cached[0]

    def backward(self, start: NodeId) -> FrozenSet[NodeId]:
        """Memoised :func:`backward_visible_set` from ``start``."""
        cached = self._backward.get(start)
        if cached is None:
            collected, visited = _visible_walk(
                self.graph,
                self.markings,
                self.privilege,
                start,
                forward=False,
                anchors=self.anchors,
            )
            cached = (frozenset(collected), frozenset(visited))
            self._backward[start] = cached
        return cached[0]

    def cached_walk_count(self) -> int:
        """How many memoised walks the cache currently holds."""
        return len(self._forward) + len(self._backward)

    def apply_delta(self, delta: GraphDelta) -> Optional[List[EvictedWalk]]:
        """Evict only the walks ``delta`` can affect; O(cached walks).

        Returns the list of evicted ``(direction, start)`` walks on success
        (possibly empty — a feature edit, or an edge edit outside every
        cached region, evicts nothing), or ``None`` when the cache cannot be
        patched soundly and must be rebuilt: the delta chain does not start
        at this cache's version, the delta adds/removes *nodes* (the anchor
        set may change), or the markings view has not been carried to at
        least the delta's post-version.  (The view being *ahead* — already
        at the end of a multi-delta chain this cache is still replaying —
        is fine: eviction reads only the delta's edge endpoints, and any
        edge whose markings changed is an added/removed edge, which evicts
        every walk whose region could have read it.)
        """
        if delta.pre_version != self.graph_version:
            return None
        if delta.touches_nodes_structurally():
            return None
        if (
            isinstance(self.markings, CompiledMarkingView)
            and self.markings.graph_version < delta.post_version
        ):
            return None
        evicted: List[EvictedWalk] = []
        for _added, edge in delta.edge_changes():
            source, target = edge.source, edge.target
            for start, (_collected, visited) in list(self._forward.items()):
                if source in visited:
                    del self._forward[start]
                    evicted.append(("forward", start))
            for start, (_collected, visited) in list(self._backward.items()):
                if target in visited:
                    del self._backward[start]
                    evicted.append(("backward", start))
        self.graph_version = delta.post_version
        record_maintenance("walk_cache", "delta_applied")
        return evicted


def surrogate_edge_candidates(
    graph: PropertyGraph,
    markings: MarkingSource,
    privilege: object,
    *,
    anchors: Optional[Set[NodeId]] = None,
    walks: Optional[VisibleWalkCache] = None,
    compiled: bool = True,
) -> Set[Tuple[NodeId, NodeId]]:
    """All (source, target) original-node pairs that should receive a surrogate edge.

    Implements the surrogate-edge portion of Algorithm 1 using the
    visible-set walks: for every edge that cannot be shown directly but is
    not hidden — its state is ``SURROGATE``, or it is ``VISIBLE`` but one of
    its endpoints has no representation (``anchors``) in the account — anchor
    sources are found backwards from the edge's source (or the source itself
    when its own incidence is ``VISIBLE`` and representable) and anchor
    targets forwards from the edge's target, then every (anchor source,
    anchor target) pair is a candidate — subject to Definition 8's
    direct-edge clause and to not duplicating an already-visible direct
    edge.

    ``walks`` lets the caller share one :class:`VisibleWalkCache` across
    this scan and other passes (the generation algorithm does); when absent
    a private cache is created so the per-edge walks are still deduplicated
    within the scan.
    """
    markings = _resolve_markings(graph, markings, privilege, compiled)
    if walks is None:
        walks = VisibleWalkCache(
            graph, markings, privilege, anchors=anchors, compiled=compiled
        )
    candidates: Set[Tuple[NodeId, NodeId]] = set()
    pending: Set[Tuple[NodeId, NodeId]] = set()
    for edge in graph.edges():
        key = edge.key
        state = markings.edge_state(key, privilege)
        if state is EdgeState.HIDDEN:
            continue
        if state is EdgeState.VISIBLE and (
            anchors is None or (key[0] in anchors and key[1] in anchors)
        ):
            # Shown directly between represented endpoints: nothing to summarise.
            continue
        source_id, target_id = key
        source_is_anchor = anchors is None or source_id in anchors
        target_is_anchor = anchors is None or target_id in anchors
        if markings.marking(source_id, key, privilege) is Marking.VISIBLE and source_is_anchor:
            sources: FrozenSet[NodeId] = frozenset((source_id,))
        else:
            sources = walks.backward(source_id)
        if markings.marking(target_id, key, privilege) is Marking.VISIBLE and target_is_anchor:
            targets: FrozenSet[NodeId] = frozenset((target_id,))
        else:
            targets = walks.forward(target_id)
        for anchor_source in sources:
            for anchor_target in targets:
                pending.add((anchor_source, anchor_target))

    # Resolve the anchor pairs.  A pair whose direct original edge is itself
    # protected may not be asserted (Definition 8, clause 2) — but the
    # connectivity it would have carried must then be re-anchored further out
    # (otherwise maximal connectivity, Definition 9.3, is violated), so the
    # blocked pair is expanded to the next anchors behind its source and
    # beyond its target and those pairs are reconsidered.
    visited: Set[Tuple[NodeId, NodeId]] = set()
    worklist = deque(pending)
    while worklist:
        pair = worklist.popleft()
        if pair in visited:
            continue
        visited.add(pair)
        anchor_source, anchor_target = pair
        if anchor_source == anchor_target:
            continue
        if not direct_edge_allows_path(graph, markings, privilege, anchor_source, anchor_target):
            for farther_source in walks.backward(anchor_source):
                worklist.append((farther_source, anchor_target))
            for farther_target in walks.forward(anchor_target):
                worklist.append((anchor_source, farther_target))
            continue
        if (
            graph.has_edge(anchor_source, anchor_target)
            and markings.edge_state((anchor_source, anchor_target), privilege)
            is EdgeState.VISIBLE
        ):
            # Already shown directly; a surrogate edge would be redundant
            # (the "shorter permitted path" clause of Appendix B).
            continue
        candidates.add(pair)
    return candidates
