"""Utility measures (paper Section 4.1, Figure 3).

Two measures compare a protected account ``G'`` with its original ``G``:

* **Path Utility** — for each node ``n`` of ``G``, the *path percentage*
  ``%P(n)`` is the number of nodes connected (by a path of any length,
  ignoring direction) to ``n``'s corresponding node in ``G'`` divided by the
  number of nodes connected to ``n`` in ``G``; a node with no corresponding
  node contributes 0.  Path Utility is the average of ``%P`` over all nodes
  of ``G``.
* **Node Utility** — the average, over all nodes of ``G``, of the
  ``infoScore`` of the corresponding account node (0 when there is none).
  ``infoScore`` is 1 for an original node carried over unchanged; for
  surrogates it is the provider-assigned score when present, otherwise the
  completeness heuristic of
  :func:`repro.graph.features.feature_overlap`.

The worked example of the paper (Figure 1/3: the naive High-2 account has
Path Utility 0.13 and Node Utility 6/11) is reproduced in the test suite.

Performance: ``%P(n)`` only depends on the *size* of the weakly connected
component containing ``n`` (the count of connected nodes is ``|component| -
1``), so :func:`path_percentages` computes the components of each graph once
— two O(V+E) sweeps — and reads every node's percentage off the component
sizes, instead of one full BFS per node (O(V·(V+E))).  The per-node
:func:`path_percentage` keeps the direct BFS form as the reference
implementation; the equivalence tests check the two agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.protected_account import ProtectedAccount
from repro.graph.features import feature_overlap, features_equal
from repro.graph.model import NodeId, PropertyGraph
from repro.graph.traversal import connected_pairs, weakly_reachable


def path_percentage(
    original: PropertyGraph,
    account: ProtectedAccount,
    node_id: NodeId,
) -> float:
    """``%P(n)`` for one original node (0.0 when the node is not represented).

    An original node that is connected to nothing (an isolated node of
    ``G``) has nothing to lose: its percentage is defined as 1.0 when it is
    represented in the account and 0.0 otherwise.
    """
    account_node = account.account_node_of(node_id)
    if account_node is None:
        return 0.0
    original_connected = len(weakly_reachable(original, node_id))
    if original_connected == 0:
        return 1.0
    account_connected = len(weakly_reachable(account.graph, account_node))
    return account_connected / original_connected


def path_percentages(original: PropertyGraph, account: ProtectedAccount) -> Dict[NodeId, float]:
    """``%P`` for every node of the original graph.

    Component-based: both graphs' weakly connected components are computed
    once (O(V+E) each) and every node's percentage is the ratio of its
    account component size to its original component size — identical to
    calling :func:`path_percentage` per node, minus the per-node BFS.
    """
    original_counts = connected_pairs(original)
    account_counts = connected_pairs(account.graph)
    percentages: Dict[NodeId, float] = {}
    for node_id in original.node_ids():
        account_node = account.account_node_of(node_id)
        if account_node is None:
            percentages[node_id] = 0.0
            continue
        original_connected = original_counts[node_id]
        if original_connected == 0:
            percentages[node_id] = 1.0
            continue
        percentages[node_id] = account_counts[account_node] / original_connected
    return percentages


def path_utility(original: PropertyGraph, account: ProtectedAccount) -> float:
    """The Path Utility Measure (Figure 3a): average ``%P`` over all nodes of ``G``."""
    if original.node_count() == 0:
        return 1.0
    percentages = path_percentages(original, account)
    return sum(percentages.values()) / original.node_count()


def info_score(
    original: PropertyGraph,
    account: ProtectedAccount,
    account_node: NodeId,
    *,
    explicit_scores: Optional[Dict[NodeId, float]] = None,
) -> float:
    """``infoScore`` of one account node relative to its original.

    Original nodes (``n' = n``) always score 1.  Surrogates use, in order of
    preference: an explicit score supplied via ``explicit_scores`` (keyed by
    account node id), or the completeness heuristic comparing the
    surrogate's features with the original's.
    """
    original_id = account.original_of(account_node)
    if explicit_scores and account_node in explicit_scores:
        return max(0.0, min(1.0, explicit_scores[account_node]))
    account_features = account.graph.node(account_node).features
    original_features = original.node(original_id).features
    if not account.is_surrogate_node(account_node) and features_equal(account_features, original_features):
        return 1.0
    return feature_overlap(original_features, account_features)


def node_utility(
    original: PropertyGraph,
    account: ProtectedAccount,
    *,
    explicit_scores: Optional[Dict[NodeId, float]] = None,
) -> float:
    """The Node Utility Measure (Figure 3c).

    Sum of ``infoScore`` over the account's nodes divided by the number of
    nodes of the original graph, so unrepresented originals drag the average
    down — the all-or-nothing account of Figure 1(c) scores exactly
    ``|N'| / |N|``.
    """
    if original.node_count() == 0:
        return 1.0
    total = sum(
        info_score(original, account, account_node, explicit_scores=explicit_scores)
        for account_node in account.graph.node_ids()
    )
    return total / original.node_count()


@dataclass(frozen=True)
class UtilityReport:
    """Both utility measures for one account, plus the per-node breakdown."""

    path_utility: float
    node_utility: float
    path_percentages: Dict[NodeId, float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "path_utility": round(self.path_utility, 6),
            "node_utility": round(self.node_utility, 6),
        }


def utility_report(
    original: PropertyGraph,
    account: ProtectedAccount,
    *,
    explicit_scores: Optional[Dict[NodeId, float]] = None,
) -> UtilityReport:
    """Compute both measures at once (shared by the experiment drivers)."""
    percentages = path_percentages(original, account)
    path_value = (
        sum(percentages.values()) / original.node_count() if original.node_count() else 1.0
    )
    return UtilityReport(
        path_utility=path_value,
        node_utility=node_utility(original, account, explicit_scores=explicit_scores),
        path_percentages=percentages,
    )
