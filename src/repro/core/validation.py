"""Validation of protected accounts against the paper's formal properties.

Two levels of checking are provided:

* :func:`validate_protected_account` — Definition 5 soundness: every account
  node corresponds to a unique original node (original nodes keep their
  features), and the account never asserts connectivity that the original
  graph does not have.
* :func:`validate_maximally_informative` — Definition 9's three properties
  (maximal node visibility, dominant surrogacy, maximal connectivity), which
  by Lemmas 1–2 / Theorem 1 are exactly what makes the generated account's
  utility maximal for its node set and high-water mark.

Both return a :class:`ValidationReport`; ``strict=True`` raises
:class:`~repro.exceptions.ValidationError` on the first failure instead.
The property-based test suite drives these checks over randomly generated
graphs, markings and surrogate registries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.permitted import hw_permitted_pairs
from repro.core.policy import ReleasePolicy
from repro.core.protected_account import ProtectedAccount
from repro.exceptions import ValidationError
from repro.graph.features import features_equal
from repro.graph.model import NodeId, PropertyGraph
from repro.graph.paths import single_source_shortest_lengths


@dataclass
class ValidationReport:
    """Outcome of a validation pass: a list of human-readable violations."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation was recorded."""
        return not self.violations

    def add(self, message: str) -> None:
        """Record one violation."""
        self.violations.append(message)

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationError` listing every violation."""
        if not self.ok:
            raise ValidationError("; ".join(self.violations))

    def __bool__(self) -> bool:
        return self.ok


def validate_protected_account(
    original: PropertyGraph,
    account: ProtectedAccount,
    *,
    strict: bool = False,
) -> ValidationReport:
    """Check Definition 5: correspondence and path soundness."""
    report = ValidationReport()

    # Every account node corresponds to an existing original node; original
    # (non-surrogate) nodes must be feature-identical to their originals.
    for account_node in account.graph.nodes():
        original_id = account.correspondence.get(account_node.node_id)
        if original_id is None:
            report.add(f"account node {account_node.node_id!r} has no correspondence entry")
            continue
        if not original.has_node(original_id):
            report.add(
                f"account node {account_node.node_id!r} corresponds to {original_id!r}, "
                "which is not in the original graph"
            )
            continue
        if not account.is_surrogate_node(account_node.node_id):
            original_node = original.node(original_id)
            if not features_equal(account_node.features, original_node.features):
                report.add(
                    f"node {account_node.node_id!r} claims to be the original {original_id!r} "
                    "but its features differ (Definition 4 requires n' = n)"
                )

    # Injectivity is enforced by ProtectedAccount itself, but re-check in case
    # the correspondence dict was mutated after construction.
    originals = list(account.correspondence.values())
    if len(set(originals)) != len(originals):
        report.add("correspondence is not injective (two account nodes share one original)")

    # Path soundness: reachability in the account implies reachability in the
    # original between the corresponding nodes.
    for account_source in account.graph.node_ids():
        reachable = single_source_shortest_lengths(account.graph, account_source)
        if len(reachable) <= 1:
            continue
        original_source = account.correspondence.get(account_source)
        if original_source is None or not original.has_node(original_source):
            continue
        original_reachable = set(single_source_shortest_lengths(original, original_source))
        for account_target in reachable:
            if account_target == account_source:
                continue
            original_target = account.correspondence.get(account_target)
            if original_target is None:
                continue
            if original_target not in original_reachable:
                report.add(
                    f"account asserts a path {account_source!r} -> {account_target!r} but the "
                    f"original graph has no path {original_source!r} -> {original_target!r} "
                    "(violates Definition 5)"
                )

    if strict:
        report.raise_if_failed()
    return report


def validate_maximally_informative(
    original: PropertyGraph,
    policy: ReleasePolicy,
    privilege: object,
    account: ProtectedAccount,
    *,
    strict: bool = False,
) -> ValidationReport:
    """Check the three properties of Definition 9 for one account."""
    report = ValidationReport()
    privilege = policy.lattice.get(privilege)

    # Property 1 — maximal node visibility.
    for node_id in original.node_ids():
        if policy.visible(node_id, privilege):
            account_node = account.account_node_of(node_id)
            if account_node is None:
                report.add(
                    f"node {node_id!r} is visible via {privilege.name!r} but is missing from the "
                    "account (violates maximal node visibility)"
                )
            elif account.is_surrogate_node(account_node):
                report.add(
                    f"node {node_id!r} is visible via {privilege.name!r} but is represented by a "
                    "surrogate (violates maximal node visibility)"
                )

    # Property 2 — dominant surrogacy.
    for node_id in original.node_ids():
        if policy.visible(node_id, privilege):
            continue
        account_node = account.account_node_of(node_id)
        if account_node is None or not account.is_surrogate_node(account_node):
            continue
        chosen = _surrogate_of_account_node(policy, node_id, account_node)
        if chosen is None:
            continue  # auto-generated null surrogate: nothing registered to compare with
        for candidate in policy.surrogates.visible_surrogates(node_id, privilege):
            if policy.lattice.strictly_dominates(candidate.lowest, chosen.lowest):
                report.add(
                    f"node {node_id!r} is represented by surrogate {chosen.surrogate_id!r} "
                    f"(lowest={chosen.lowest.name}) although surrogate {candidate.surrogate_id!r} "
                    f"(lowest={candidate.lowest.name}) is visible and more dominant "
                    "(violates dominant surrogacy)"
                )

    # Property 3 — maximal connectivity.
    represented: Set[NodeId] = account.represented_originals()
    permitted: Set[Tuple[NodeId, NodeId]] = hw_permitted_pairs(
        original, policy.markings, privilege, nodes=represented
    )
    reachability_cache = {}
    for source, target in sorted(permitted, key=lambda pair: (repr(pair[0]), repr(pair[1]))):
        account_source = account.account_node_of(source)
        account_target = account.account_node_of(target)
        if account_source is None or account_target is None:
            continue
        if account_source not in reachability_cache:
            reachability_cache[account_source] = set(
                single_source_shortest_lengths(account.graph, account_source)
            )
        if account_target not in reachability_cache[account_source]:
            report.add(
                f"original nodes {source!r} and {target!r} are joined by an HW-permitted path "
                f"but the account has no path {account_source!r} -> {account_target!r} "
                "(violates maximal connectivity)"
            )

    if strict:
        report.raise_if_failed()
    return report


def _surrogate_of_account_node(
    policy: ReleasePolicy, original_id: NodeId, account_node: NodeId
):
    """Find the registered surrogate object matching an account node id, if any."""
    for candidate in policy.surrogates.surrogates_for(original_id):
        if candidate.surrogate_id == account_node:
            return candidate
    return None
