"""Core contribution of the paper: surrogates, protected accounts, metrics.

Modules
-------
``privileges``
    Privilege-predicates, the dominance partial order and high-water sets
    (Definitions 1–3, 6).
``surrogates``
    Surrogate nodes, ``infoScore`` and the surrogate registry (Section 3.1).
``markings``
    Node-edge incidence markings ``Visible`` / ``Hide`` / ``Surrogate``
    (Definition 7) and their combination into edge states.
``policy``
    :class:`~repro.core.policy.ReleasePolicy` — the bundle of lattice,
    ``lowest()`` assignments, markings and surrogates a provider publishes.
``permitted``
    HW-permitted paths (Definition 8) and the visible-set walks of
    Algorithm 2.
``protected_account``
    The :class:`~repro.core.protected_account.ProtectedAccount` result type
    (Definition 5) with its node-correspondence map.
``generation``
    The Surrogate Generation Algorithm (Appendix B, Algorithms 1–3).
``hiding``
    The "show/hide" baselines: the naive account of Figure 1(c) and
    hide-only edge protection.
``utility``
    Path Utility and Node Utility measures (Section 4.1, Figure 3).
``opacity``
    The opacity measure and attacker models (Section 4.2, Figures 4–5).
``validation``
    Checks for Definition 5 soundness and Definition 9 maximal
    informativeness (Lemmas 1–2, Theorem 1).
"""

from repro.core.privileges import HighWaterSet, Privilege, PrivilegeLattice
from repro.core.surrogates import NULL_SURROGATE, Surrogate, SurrogateRegistry
from repro.core.markings import CompiledMarkingView, EdgeState, Marking, MarkingPolicy
from repro.core.permitted import VisibleWalkCache
from repro.core.policy import ReleasePolicy
from repro.core.protected_account import ProtectedAccount
from repro.core.generation import (
    ProtectionEngine,
    build_protected_account,
    generate_protected_account,
)
from repro.core.multi import (
    build_multi_privilege_account,
    generate_multi_privilege_account,
    merge_accounts,
)
from repro.core.hiding import hide_protected_account, naive_protected_account
from repro.core.utility import node_utility, path_percentage, path_utility, utility_report
from repro.core.opacity import (
    AdvancedAdversary,
    CompiledOpacityView,
    NaiveAdversary,
    OpacityViewCache,
    adversary_fingerprint,
    adversary_supports_deltas,
    average_opacity,
    opacity,
    opacity_many,
    opacity_report,
    opacity_simulations_run,
)
from repro.core.validation import validate_protected_account, validate_maximally_informative

__all__ = [
    "Privilege",
    "PrivilegeLattice",
    "HighWaterSet",
    "Surrogate",
    "SurrogateRegistry",
    "NULL_SURROGATE",
    "Marking",
    "EdgeState",
    "MarkingPolicy",
    "CompiledMarkingView",
    "VisibleWalkCache",
    "ReleasePolicy",
    "ProtectedAccount",
    "ProtectionEngine",
    "build_protected_account",
    "build_multi_privilege_account",
    "generate_protected_account",
    "generate_multi_privilege_account",
    "merge_accounts",
    "naive_protected_account",
    "hide_protected_account",
    "path_utility",
    "path_percentage",
    "node_utility",
    "utility_report",
    "opacity",
    "opacity_many",
    "average_opacity",
    "opacity_report",
    "opacity_simulations_run",
    "adversary_supports_deltas",
    "NaiveAdversary",
    "AdvancedAdversary",
    "CompiledOpacityView",
    "OpacityViewCache",
    "adversary_fingerprint",
    "validate_protected_account",
    "validate_maximally_informative",
]
