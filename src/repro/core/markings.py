"""Node-edge incidence markings (paper Definition 7) and edge states.

Every edge has two *incidences* — one at its source node and one at its
target node — and the provider of each endpoint may mark its incidence, per
privilege-predicate, as:

``VISIBLE``
    The incidence may be shown to consumers in that class.
``HIDE``
    The incidence may not be shown **and** may not be used to compute any
    surrogate edge.
``SURROGATE``
    The incidence may not be shown directly, but may be traversed when
    computing surrogate edges that summarise paths through it.

Markings at the two ends need not agree (local autonomy).  The *state* of an
edge for a privilege combines the two incidence markings exactly as the
paper's Algorithm 3 does:

* both ``VISIBLE``  → the edge is shown (``EdgeState.VISIBLE``),
* any ``HIDE``      → the edge is unusable (``EdgeState.HIDDEN``),
* otherwise         → the edge may anchor/route surrogate edges
  (``EdgeState.SURROGATE``).

When no explicit marking is recorded, the default marking of an incidence at
node ``n`` for privilege ``p`` is ``VISIBLE`` when ``p`` dominates
``lowest(n)`` and otherwise the policy-configured default for protected
nodes (``HIDE`` by default — the conservative, naive behaviour; providers
opt into ``SURROGATE``).

Compiled views
--------------
:meth:`MarkingPolicy.marking` resolves one incidence at a time: it walks the
explicit-marking fallback chain and consults the lattice per call.  That is
the *reference* semantics, but the generation algorithm and the permitted-path
walks ask the same questions for every edge of the same graph under the same
privilege, millions of times across an experiment sweep.
:class:`CompiledMarkingView` materialises the answers once per
``(graph, policy, privilege)`` — the effective marking of every incidence and
the :class:`EdgeState` of every edge — and then answers in O(1) dict lookups.
Views are cached on the policy and invalidated automatically via the graph's
and the policy's mutation counters, so callers can simply call
:meth:`MarkingPolicy.compile` in hot paths and never worry about staleness.

Incremental maintenance
-----------------------
A view over an 8k-node graph costs O(V + E) to build; a single edge edit
used to throw all of that away.  When the graph records typed deltas
(:meth:`~repro.graph.model.PropertyGraph.enable_delta_log`),
:meth:`MarkingPolicy.compile` instead *patches* the cached view through
:meth:`CompiledMarkingView.apply_delta` — O(affected) per delta, falling
back to a full recompile only when the chain cannot be reconstructed or the
policy itself changed.  Both paths are counted in
:func:`repro.graph.deltas.view_maintenance_stats` under ``"marking_view"``.
"""

from __future__ import annotations

import enum
import weakref
import zlib
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.privileges import Privilege, PrivilegeLattice
from repro.graph.deltas import DeltaKind, GraphDelta, record_maintenance
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


class Marking(enum.Enum):
    """Per node-edge incidence release marking (Definition 7)."""

    VISIBLE = "visible"
    HIDE = "hide"
    SURROGATE = "surrogate"

    def __str__(self) -> str:
        return self.value


class EdgeState(enum.Enum):
    """The combined disposition of an edge for one privilege (Algorithm 3)."""

    VISIBLE = "visible"
    HIDDEN = "hidden"
    SURROGATE = "surrogate"

    def __str__(self) -> str:
        return self.value


def combine_markings(source_marking: Marking, target_marking: Marking) -> EdgeState:
    """Combine the two incidence markings of an edge into its state."""
    if source_marking is Marking.HIDE or target_marking is Marking.HIDE:
        return EdgeState.HIDDEN
    if source_marking is Marking.VISIBLE and target_marking is Marking.VISIBLE:
        return EdgeState.VISIBLE
    return EdgeState.SURROGATE


#: Key identifying one incidence for one privilege: (node, (source, target), privilege name).
IncidenceKey = Tuple[NodeId, EdgeKey, str]


class MarkingPolicy:
    """Explicit incidence markings plus a default rule.

    The policy is independent of any particular graph: markings refer to
    node ids and edge keys, so the same policy can be applied to the
    original graph and to subgraphs of it.  Explicit markings are indexed by
    incidence so lookups stay O(#privileges marked on that incidence) even
    when thousands of edges are protected.
    """

    def __init__(
        self,
        lattice: PrivilegeLattice,
        *,
        lowest_of: Optional[Callable[[NodeId], Privilege]] = None,
        default_protected_marking: Marking = Marking.HIDE,
    ) -> None:
        self.lattice = lattice
        self._lowest_of = lowest_of
        self.default_protected_marking = default_protected_marking
        #: (node, edge) -> {privilege name -> marking}
        self._explicit: Dict[Tuple[NodeId, EdgeKey], Dict[str, Marking]] = {}
        #: Order-independent content fingerprint of ``_explicit``: the mod-2^32
        #: sum of one CRC per (incidence, privilege, marking) item, maintained
        #: incrementally by :meth:`set_marking` so checkpoint drift checks
        #: read it in O(1) instead of folding thousands of incidences.
        self._explicit_crc = 0
        #: Mutation counter; compiled views check it to detect staleness.
        self._version = 0
        #: (id(graph), privilege name) -> CompiledMarkingView, bounded LRU-ish.
        self._compiled: Dict[Tuple[int, str], "CompiledMarkingView"] = {}

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever the policy's answers may change."""
        return self._version

    def touch(self) -> None:
        """Invalidate every compiled view (call after out-of-band changes).

        The policy bumps its version itself on :meth:`set_marking` /
        :meth:`clear` / :meth:`bind_lowest`; owners of the ``lowest_of``
        callable (e.g. :class:`~repro.core.policy.ReleasePolicy`) must call
        this when the *backing data* of that callable changes, since the
        policy cannot observe those mutations.
        """
        self._version += 1

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def bind_lowest(self, lowest_of: Callable[[NodeId], Privilege]) -> None:
        """Provide (or replace) the ``lowest(n)`` lookup used for default markings."""
        self._lowest_of = lowest_of
        self._version += 1

    def set_marking(
        self,
        node_id: NodeId,
        edge: EdgeKey,
        privilege: object,
        marking: Marking,
    ) -> None:
        """Record an explicit marking for one incidence at one privilege."""
        privilege = self.lattice.get(privilege)
        edge = tuple(edge)
        per_privilege = self._explicit.setdefault((node_id, edge), {})
        name = privilege.name
        item = (node_id, edge, name)
        old = per_privilege.get(name)
        crc = self._explicit_crc
        if old is not None:
            crc -= zlib.crc32(f"{item!r}\x1f{old.value}".encode("utf-8"))
        per_privilege[name] = marking
        self._explicit_crc = (
            crc + zlib.crc32(f"{item!r}\x1f{marking.value}".encode("utf-8"))
        ) & 0xFFFFFFFF
        self._version += 1

    def mark_edge(
        self,
        edge: EdgeKey,
        privilege: object,
        *,
        source: Optional[Marking] = None,
        target: Optional[Marking] = None,
    ) -> None:
        """Mark one or both incidences of an edge for a privilege."""
        source_id, target_id = edge
        if source is not None:
            self.set_marking(source_id, edge, privilege, source)
        if target is not None:
            self.set_marking(target_id, edge, privilege, target)

    def mark_incident_edges(
        self,
        graph: PropertyGraph,
        node_id: NodeId,
        privilege: object,
        marking: Marking,
        *,
        direction: str = "both",
    ) -> int:
        """Mark the ``node_id`` incidence of every incident edge in ``graph``.

        The paper notes that in practice providers mark *sets* of incidences
        ("all edges from data nodes of certain types, or all outgoing
        edges"); this helper covers the per-node bulk case and returns the
        number of incidences marked.  ``direction`` is ``"out"``, ``"in"`` or
        ``"both"``.
        """
        if direction not in {"out", "in", "both"}:
            raise ValueError(f"direction must be 'out', 'in' or 'both', got {direction!r}")
        count = 0
        if direction in {"out", "both"}:
            for successor in graph.iter_successors(node_id):
                self.set_marking(node_id, (node_id, successor), privilege, marking)
                count += 1
        if direction in {"in", "both"}:
            for predecessor in graph.iter_predecessors(node_id):
                self.set_marking(node_id, (predecessor, node_id), privilege, marking)
                count += 1
        return count

    def clear(self) -> None:
        """Drop every explicit marking (defaults still apply)."""
        self._explicit.clear()
        self._explicit_crc = 0
        self._version += 1

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def explicit_marking(
        self, node_id: NodeId, edge: EdgeKey, privilege: object
    ) -> Optional[Marking]:
        """The explicitly recorded marking, or ``None`` when only the default applies.

        Explicit markings recorded for a privilege ``q`` also apply to any
        consumer privilege ``p`` that dominates ``q`` (release to a class
        implies release to more trusted classes), unless a more specific
        marking for ``p`` itself exists.
        """
        per_privilege = self._explicit.get((node_id, tuple(edge)))
        if not per_privilege:
            return None
        privilege = self.lattice.get(privilege)
        exact = per_privilege.get(privilege.name)
        if exact is not None:
            return exact
        # Fall back to the most dominant marked privilege dominated by `privilege`.
        best: Optional[Tuple[Privilege, Marking]] = None
        for marked_privilege_name, marking in per_privilege.items():
            marked_privilege = self.lattice.get(marked_privilege_name)
            if not self.lattice.dominates(privilege, marked_privilege):
                continue
            if best is None or self.lattice.strictly_dominates(marked_privilege, best[0]):
                best = (marked_privilege, marking)
        return best[1] if best is not None else None

    def marking(self, node_id: NodeId, edge: EdgeKey, privilege: object) -> Marking:
        """The effective marking of one incidence for one privilege."""
        explicit = self.explicit_marking(node_id, edge, privilege)
        if explicit is not None:
            return explicit
        if self._lowest_of is None:
            return Marking.VISIBLE
        lowest = self._lowest_of(node_id)
        if self.lattice.dominates(privilege, lowest):
            return Marking.VISIBLE
        return self.default_protected_marking

    def edge_state(self, edge: EdgeKey, privilege: object) -> EdgeState:
        """The combined state of an edge for one privilege."""
        source_id, target_id = edge
        return combine_markings(
            self.marking(source_id, edge, privilege),
            self.marking(target_id, edge, privilege),
        )

    def edge_states(self, graph: PropertyGraph, privilege: object) -> Dict[EdgeKey, EdgeState]:
        """The state of every edge of ``graph`` for one privilege (Algorithm 3's table)."""
        return dict(self.compile(graph, privilege).edge_state_table)

    # ------------------------------------------------------------------ #
    # compiled views
    # ------------------------------------------------------------------ #
    def compile(self, graph: PropertyGraph, privilege: object) -> "CompiledMarkingView":
        """The compiled per-privilege protection view of ``graph``.

        Views are cached and re-used until either the graph or the policy
        mutates; repeated calls in a hot loop cost one dict lookup.  The
        cache is bounded (experiment drivers sweep a handful of graphs ×
        privileges at a time), evicting the oldest entry when full.
        """
        privilege = self.lattice.get(privilege)
        if graph.in_batch:
            # Mid-batch the version counter is deferred: a view compiled now
            # could be stamped current while describing a half-applied batch.
            # Serve a throwaway view and never cache it.
            return CompiledMarkingView(graph, self, privilege)
        key = (id(graph), privilege.name)
        cached = self._compiled.get(key)
        if (
            cached is not None
            and cached.graph is graph
            and cached.policy_version == self._version
        ):
            if cached.graph_version == graph.version:
                return cached
            # The graph moved on — try to carry the view forward through the
            # recorded delta chain instead of recompiling O(V + E) state.
            deltas = graph.deltas_since(cached.graph_version)
            if deltas is not None and all(cached.apply_delta(delta) for delta in deltas):
                return cached
        view = CompiledMarkingView(graph, self, privilege)
        # Re-inserting moves the key to the back so eviction is oldest-first
        # even when an existing entry is being replaced.
        self._compiled.pop(key, None)
        if len(self._compiled) >= _COMPILED_CACHE_LIMIT:
            self._compiled.pop(next(iter(self._compiled)))
        self._compiled[key] = view
        return view

    def explicit_incidences(self) -> Iterable[Tuple[IncidenceKey, Marking]]:
        """Every explicitly recorded incidence marking (for reporting/serialisation)."""
        flattened: List[Tuple[IncidenceKey, Marking]] = []
        for (node_id, edge), per_privilege in self._explicit.items():
            for privilege_name, marking in per_privilege.items():
                flattened.append(((node_id, edge, privilege_name), marking))
        return flattened

    def copy(self) -> "MarkingPolicy":
        """An independent copy sharing the lattice and lowest lookup."""
        clone = MarkingPolicy(
            self.lattice,
            lowest_of=self._lowest_of,
            default_protected_marking=self.default_protected_marking,
        )
        clone._explicit = {key: dict(value) for key, value in self._explicit.items()}
        clone._explicit_crc = self._explicit_crc
        return clone


#: Maximum number of compiled views kept per policy.
_COMPILED_CACHE_LIMIT = 16


class CompiledMarkingView:
    """Materialised markings and edge states for one (graph, policy, privilege).

    Construction is one O(V + E_explicit·k) pass (``k`` = markings per
    incidence, almost always 1-2): the default marking of every node is
    resolved once through the privilege lattice's frozen dominance closure,
    and only incidences with explicit markings pay the fallback-chain
    resolution — each exactly once.  Afterwards :meth:`marking` and
    :meth:`edge_state` are plain dict lookups, so a BFS over the view costs
    O(V + E) total instead of O((V + E) · lattice-scan).

    The view is call-compatible with the subset of :class:`MarkingPolicy`
    the permitted-path walks use — ``marking(node, edge, privilege)`` and
    ``edge_state(edge, privilege)`` — so traversal code accepts either; the
    trailing ``privilege`` argument is validated against the view's own
    privilege to catch accidental cross-privilege reuse.
    """

    __slots__ = (
        "_graph_ref",
        "privilege",
        "graph_version",
        "policy_version",
        "node_default",
        "edge_state_table",
        "_overrides",
        "_policy",
    )

    def __init__(self, graph: PropertyGraph, policy: MarkingPolicy, privilege: Privilege) -> None:
        record_maintenance("marking_view", "compiled")
        # Weak reference: the policy's view cache must not keep swept-over
        # graphs alive; a dead reference simply fails the cache check.
        self._graph_ref = weakref.ref(graph)
        self.privilege = privilege
        self.graph_version = graph.version
        self.policy_version = policy.version
        self._policy = policy

        lowest_of = policy._lowest_of
        if lowest_of is None:
            self.node_default: Dict[NodeId, Marking] = dict.fromkeys(
                graph.node_ids(), Marking.VISIBLE
            )
        else:
            closure = policy.lattice.dominated_closure(privilege)
            protected = policy.default_protected_marking
            self.node_default = {
                node_id: (Marking.VISIBLE if lowest_of(node_id).name in closure else protected)
                for node_id in graph.node_ids()
            }

        #: Incidences whose effective marking differs from the node default.
        self._overrides: Dict[Tuple[NodeId, EdgeKey], Marking] = {}
        explicit = policy._explicit
        self.edge_state_table: Dict[EdgeKey, EdgeState] = {}
        node_default = self.node_default
        for key in graph.edge_keys():
            source_id, target_id = key
            source_marking = node_default[source_id]
            target_marking = node_default[target_id]
            if explicit:
                if (source_id, key) in explicit:
                    resolved = policy.explicit_marking(source_id, key, privilege)
                    if resolved is not None:
                        source_marking = resolved
                        self._overrides[(source_id, key)] = resolved
                if (target_id, key) in explicit:
                    resolved = policy.explicit_marking(target_id, key, privilege)
                    if resolved is not None:
                        target_marking = resolved
                        self._overrides[(target_id, key)] = resolved
            self.edge_state_table[key] = combine_markings(source_marking, target_marking)

    @property
    def graph(self) -> Optional[PropertyGraph]:
        """The compiled graph, or ``None`` once it has been garbage-collected."""
        return self._graph_ref()

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta: GraphDelta) -> bool:
        """Patch the view in place for one graph delta; O(affected).

        Every delta kind is patchable here — markings never read node
        features, so feature edits are free, and node/edge structure maps
        one-to-one onto table entries.  Returns ``False`` (leaving the view
        untouched) only when the delta does not start at this view's
        version, i.e. the chain is broken and the caller must recompile.
        The patched view is the *same object*, so shared holders (walk
        caches, traversals in flight) observe the update without re-fetching.
        """
        if delta.pre_version != self.graph_version:
            return False
        self._apply_one(delta)
        self.graph_version = delta.post_version
        record_maintenance("marking_view", "delta_applied")
        return True

    def _apply_one(self, delta: GraphDelta) -> None:
        kind = delta.kind
        if kind is DeltaKind.BATCH:
            for sub in delta.deltas:
                self._apply_one(sub)
        elif kind is DeltaKind.ADD_NODE or kind is DeltaKind.REPLACE_NODE:
            self.node_default[delta.node.node_id] = self._default_for(delta.node.node_id)
        elif kind is DeltaKind.SET_NODE_FEATURES:
            pass  # markings are feature-blind
        elif kind is DeltaKind.REMOVE_NODE:
            for edge in delta.removed_edges:
                self._remove_edge_entry(edge.key)
            self.node_default.pop(delta.old_node.node_id, None)
        elif kind is DeltaKind.ADD_EDGE or kind is DeltaKind.REPLACE_EDGE:
            self._set_edge_entry(delta.edge.key)
        elif kind is DeltaKind.REMOVE_EDGE:
            self._remove_edge_entry(delta.old_edge.key)

    def _default_for(self, node_id: NodeId) -> Marking:
        """One node's default marking, resolved exactly as compile() does."""
        policy = self._policy
        lowest_of = policy._lowest_of
        if lowest_of is None:
            return Marking.VISIBLE
        closure = policy.lattice.dominated_closure(self.privilege)
        if lowest_of(node_id).name in closure:
            return Marking.VISIBLE
        return policy.default_protected_marking

    def _set_edge_entry(self, key: EdgeKey) -> None:
        """(Re)derive one edge's incidence markings and state (compile()'s
        per-edge block, run for just this edge)."""
        policy = self._policy
        source_id, target_id = key
        self._overrides.pop((source_id, key), None)
        self._overrides.pop((target_id, key), None)
        source_marking = self.node_default[source_id]
        target_marking = self.node_default[target_id]
        explicit = policy._explicit
        if explicit:
            if (source_id, key) in explicit:
                resolved = policy.explicit_marking(source_id, key, self.privilege)
                if resolved is not None:
                    source_marking = resolved
                    self._overrides[(source_id, key)] = resolved
            if (target_id, key) in explicit:
                resolved = policy.explicit_marking(target_id, key, self.privilege)
                if resolved is not None:
                    target_marking = resolved
                    self._overrides[(target_id, key)] = resolved
        self.edge_state_table[key] = combine_markings(source_marking, target_marking)

    def _remove_edge_entry(self, key: EdgeKey) -> None:
        self.edge_state_table.pop(key, None)
        self._overrides.pop((key[0], key), None)
        self._overrides.pop((key[1], key), None)

    # ------------------------------------------------------------------ #
    # lookups (MarkingPolicy-compatible signatures)
    # ------------------------------------------------------------------ #
    def _check_privilege(self, privilege: object) -> None:
        name = privilege.name if isinstance(privilege, Privilege) else str(privilege)
        if name != self.privilege.name:
            raise ValueError(
                f"compiled view is for privilege {self.privilege.name!r}, "
                f"but was queried for {name!r}"
            )

    def marking(self, node_id: NodeId, edge: EdgeKey, privilege: object = None) -> Marking:
        """The effective marking of one incidence (O(1) for compiled incidences)."""
        if privilege is not None:
            self._check_privilege(privilege)
        # Only the two endpoint incidences of a compiled edge are in the
        # tables; anything else (a hypothetical edge probed by validation
        # helpers, or an off-endpoint incidence carrying an explicit
        # marking) defers to the reference semantics.
        if (node_id == edge[0] or node_id == edge[1]) and edge in self.edge_state_table:
            override = self._overrides.get((node_id, edge))
            if override is not None:
                return override
            default = self.node_default.get(node_id)
            if default is not None:
                return default
        return self._policy.marking(node_id, edge, self.privilege)

    def edge_state(self, edge: EdgeKey, privilege: object = None) -> EdgeState:
        """The combined state of an edge (O(1) for compiled edges)."""
        if privilege is not None:
            self._check_privilege(privilege)
        state = self.edge_state_table.get(edge)
        if state is None:
            return combine_markings(
                self.marking(edge[0], edge), self.marking(edge[1], edge)
            )
        return state

    def edge_states(self) -> Mapping[EdgeKey, EdgeState]:
        """The full edge-state table (read-only by convention)."""
        return self.edge_state_table
