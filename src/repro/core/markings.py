"""Node-edge incidence markings (paper Definition 7) and edge states.

Every edge has two *incidences* — one at its source node and one at its
target node — and the provider of each endpoint may mark its incidence, per
privilege-predicate, as:

``VISIBLE``
    The incidence may be shown to consumers in that class.
``HIDE``
    The incidence may not be shown **and** may not be used to compute any
    surrogate edge.
``SURROGATE``
    The incidence may not be shown directly, but may be traversed when
    computing surrogate edges that summarise paths through it.

Markings at the two ends need not agree (local autonomy).  The *state* of an
edge for a privilege combines the two incidence markings exactly as the
paper's Algorithm 3 does:

* both ``VISIBLE``  → the edge is shown (``EdgeState.VISIBLE``),
* any ``HIDE``      → the edge is unusable (``EdgeState.HIDDEN``),
* otherwise         → the edge may anchor/route surrogate edges
  (``EdgeState.SURROGATE``).

When no explicit marking is recorded, the default marking of an incidence at
node ``n`` for privilege ``p`` is ``VISIBLE`` when ``p`` dominates
``lowest(n)`` and otherwise the policy-configured default for protected
nodes (``HIDE`` by default — the conservative, naive behaviour; providers
opt into ``SURROGATE``).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.privileges import Privilege, PrivilegeLattice
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


class Marking(enum.Enum):
    """Per node-edge incidence release marking (Definition 7)."""

    VISIBLE = "visible"
    HIDE = "hide"
    SURROGATE = "surrogate"

    def __str__(self) -> str:
        return self.value


class EdgeState(enum.Enum):
    """The combined disposition of an edge for one privilege (Algorithm 3)."""

    VISIBLE = "visible"
    HIDDEN = "hidden"
    SURROGATE = "surrogate"

    def __str__(self) -> str:
        return self.value


def combine_markings(source_marking: Marking, target_marking: Marking) -> EdgeState:
    """Combine the two incidence markings of an edge into its state."""
    if source_marking is Marking.HIDE or target_marking is Marking.HIDE:
        return EdgeState.HIDDEN
    if source_marking is Marking.VISIBLE and target_marking is Marking.VISIBLE:
        return EdgeState.VISIBLE
    return EdgeState.SURROGATE


#: Key identifying one incidence for one privilege: (node, (source, target), privilege name).
IncidenceKey = Tuple[NodeId, EdgeKey, str]


class MarkingPolicy:
    """Explicit incidence markings plus a default rule.

    The policy is independent of any particular graph: markings refer to
    node ids and edge keys, so the same policy can be applied to the
    original graph and to subgraphs of it.  Explicit markings are indexed by
    incidence so lookups stay O(#privileges marked on that incidence) even
    when thousands of edges are protected.
    """

    def __init__(
        self,
        lattice: PrivilegeLattice,
        *,
        lowest_of: Optional[Callable[[NodeId], Privilege]] = None,
        default_protected_marking: Marking = Marking.HIDE,
    ) -> None:
        self.lattice = lattice
        self._lowest_of = lowest_of
        self.default_protected_marking = default_protected_marking
        #: (node, edge) -> {privilege name -> marking}
        self._explicit: Dict[Tuple[NodeId, EdgeKey], Dict[str, Marking]] = {}

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def bind_lowest(self, lowest_of: Callable[[NodeId], Privilege]) -> None:
        """Provide (or replace) the ``lowest(n)`` lookup used for default markings."""
        self._lowest_of = lowest_of

    def set_marking(
        self,
        node_id: NodeId,
        edge: EdgeKey,
        privilege: object,
        marking: Marking,
    ) -> None:
        """Record an explicit marking for one incidence at one privilege."""
        privilege = self.lattice.get(privilege)
        self._explicit.setdefault((node_id, tuple(edge)), {})[privilege.name] = marking

    def mark_edge(
        self,
        edge: EdgeKey,
        privilege: object,
        *,
        source: Optional[Marking] = None,
        target: Optional[Marking] = None,
    ) -> None:
        """Mark one or both incidences of an edge for a privilege."""
        source_id, target_id = edge
        if source is not None:
            self.set_marking(source_id, edge, privilege, source)
        if target is not None:
            self.set_marking(target_id, edge, privilege, target)

    def mark_incident_edges(
        self,
        graph: PropertyGraph,
        node_id: NodeId,
        privilege: object,
        marking: Marking,
        *,
        direction: str = "both",
    ) -> int:
        """Mark the ``node_id`` incidence of every incident edge in ``graph``.

        The paper notes that in practice providers mark *sets* of incidences
        ("all edges from data nodes of certain types, or all outgoing
        edges"); this helper covers the per-node bulk case and returns the
        number of incidences marked.  ``direction`` is ``"out"``, ``"in"`` or
        ``"both"``.
        """
        if direction not in {"out", "in", "both"}:
            raise ValueError(f"direction must be 'out', 'in' or 'both', got {direction!r}")
        count = 0
        if direction in {"out", "both"}:
            for successor in graph.successors(node_id):
                self.set_marking(node_id, (node_id, successor), privilege, marking)
                count += 1
        if direction in {"in", "both"}:
            for predecessor in graph.predecessors(node_id):
                self.set_marking(node_id, (predecessor, node_id), privilege, marking)
                count += 1
        return count

    def clear(self) -> None:
        """Drop every explicit marking (defaults still apply)."""
        self._explicit.clear()

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def explicit_marking(
        self, node_id: NodeId, edge: EdgeKey, privilege: object
    ) -> Optional[Marking]:
        """The explicitly recorded marking, or ``None`` when only the default applies.

        Explicit markings recorded for a privilege ``q`` also apply to any
        consumer privilege ``p`` that dominates ``q`` (release to a class
        implies release to more trusted classes), unless a more specific
        marking for ``p`` itself exists.
        """
        per_privilege = self._explicit.get((node_id, tuple(edge)))
        if not per_privilege:
            return None
        privilege = self.lattice.get(privilege)
        exact = per_privilege.get(privilege.name)
        if exact is not None:
            return exact
        # Fall back to the most dominant marked privilege dominated by `privilege`.
        best: Optional[Tuple[Privilege, Marking]] = None
        for marked_privilege_name, marking in per_privilege.items():
            marked_privilege = self.lattice.get(marked_privilege_name)
            if not self.lattice.dominates(privilege, marked_privilege):
                continue
            if best is None or self.lattice.strictly_dominates(marked_privilege, best[0]):
                best = (marked_privilege, marking)
        return best[1] if best is not None else None

    def marking(self, node_id: NodeId, edge: EdgeKey, privilege: object) -> Marking:
        """The effective marking of one incidence for one privilege."""
        explicit = self.explicit_marking(node_id, edge, privilege)
        if explicit is not None:
            return explicit
        if self._lowest_of is None:
            return Marking.VISIBLE
        lowest = self._lowest_of(node_id)
        if self.lattice.dominates(privilege, lowest):
            return Marking.VISIBLE
        return self.default_protected_marking

    def edge_state(self, edge: EdgeKey, privilege: object) -> EdgeState:
        """The combined state of an edge for one privilege."""
        source_id, target_id = edge
        return combine_markings(
            self.marking(source_id, edge, privilege),
            self.marking(target_id, edge, privilege),
        )

    def edge_states(self, graph: PropertyGraph, privilege: object) -> Dict[EdgeKey, EdgeState]:
        """The state of every edge of ``graph`` for one privilege (Algorithm 3's table)."""
        return {edge.key: self.edge_state(edge.key, privilege) for edge in graph.edges()}

    def explicit_incidences(self) -> Iterable[Tuple[IncidenceKey, Marking]]:
        """Every explicitly recorded incidence marking (for reporting/serialisation)."""
        flattened: List[Tuple[IncidenceKey, Marking]] = []
        for (node_id, edge), per_privilege in self._explicit.items():
            for privilege_name, marking in per_privilege.items():
                flattened.append(((node_id, edge, privilege_name), marking))
        return flattened

    def copy(self) -> "MarkingPolicy":
        """An independent copy sharing the lattice and lowest lookup."""
        clone = MarkingPolicy(
            self.lattice,
            lowest_of=self._lowest_of,
            default_protected_marking=self.default_protected_marking,
        )
        clone._explicit = {key: dict(value) for key, value in self._explicit.items()}
        return clone
