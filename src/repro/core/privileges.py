"""Privilege-predicates, dominance and high-water sets (Definitions 1–3, 6).

A *privilege-predicate* is a Boolean function over consumer credentials that
names a class of consumers ("Public", "High-2", "Cleared Emergency
Responder", ...).  The paper never evaluates the predicates themselves —
only their *dominance* partial order matters for protection — so the library
models a predicate as a named element of a :class:`PrivilegeLattice` whose
dominance relation is declared explicitly.  Evaluating concrete credentials
against predicates lives in :mod:`repro.security.credentials`.

Dominance follows Definition 2: ``p`` dominates ``q`` when every consumer
satisfying ``p`` also satisfies ``q`` — i.e. ``p`` is the *more* privileged
class.  A predicate trivially dominates itself.  "Public" is dominated by
every other predicate (the paper assumes such a bottom element).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import CyclicDominanceError, UnknownPrivilegeError

PUBLIC_NAME = "Public"


@dataclass(frozen=True, order=True)
class Privilege:
    """A named privilege-predicate.

    Only the name matters for identity; the dominance relation lives in the
    :class:`PrivilegeLattice` the privilege was declared in.  The optional
    ``description`` is purely documentary.
    """

    name: str
    description: str = ""

    def __str__(self) -> str:
        return self.name


class PrivilegeLattice:
    """A partially ordered set of privilege-predicates.

    The "lattice" name follows common access-control usage; the structure is
    really an arbitrary partial order with a designated bottom element
    (``Public``) that every other predicate dominates.

    Example (the paper's Figure 1(b))::

        lattice = PrivilegeLattice()
        low2 = lattice.add("Low-2", dominates=["Public"])
        lattice.add("High-1", dominates=["Low-2"])
        lattice.add("High-2", dominates=["Low-2"])
    """

    def __init__(self, *, public_name: str = PUBLIC_NAME) -> None:
        self._privileges: Dict[str, Privilege] = {}
        self._direct_dominates: Dict[str, Set[str]] = {}
        self._closure: Optional[Dict[str, FrozenSet[str]]] = None
        self._dominated_names: Optional[Dict[str, FrozenSet[str]]] = None
        #: Mutation counter: new privileges/dominance edges change visibility
        #: answers, so result caches key on this alongside the policy version.
        self._version = 0
        self.public = Privilege(public_name, "dominated by every other privilege-predicate")
        self._privileges[public_name] = self.public
        self._direct_dominates[public_name] = set()

    @property
    def version(self) -> int:
        """Bumped on every :meth:`add` (cache-invalidation hook)."""
        return self._version

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(
        self,
        name: str,
        *,
        dominates: Iterable[object] = (),
        description: str = "",
    ) -> Privilege:
        """Declare a privilege-predicate.

        ``dominates`` lists the privileges (names or :class:`Privilege`
        objects) this new predicate directly dominates.  Every non-Public
        predicate implicitly dominates Public, so an empty ``dominates`` is
        allowed.  Re-declaring an existing name returns the existing object
        as long as it does not change the declared edges.
        """
        if name in self._privileges:
            privilege = self._privileges[name]
        else:
            privilege = Privilege(name, description)
            self._privileges[name] = privilege
            self._direct_dominates[name] = set()
        for dominated in dominates:
            dominated_name = dominated.name if isinstance(dominated, Privilege) else str(dominated)
            if dominated_name not in self._privileges:
                raise UnknownPrivilegeError(dominated_name)
            if dominated_name == name:
                continue
            self._direct_dominates[name].add(dominated_name)
        if name != self.public.name:
            self._direct_dominates[name].add(self.public.name)
        self._closure = None
        self._dominated_names = None
        self._version += 1
        self._check_acyclic()
        return privilege

    def add_chain(self, names: Sequence[str]) -> List[Privilege]:
        """Declare a totally ordered chain, most privileged first.

        ``add_chain(["Top", "Middle", "Public"])`` makes Top dominate Middle
        dominate Public.
        """
        created: List[Privilege] = []
        previous: Optional[str] = None
        for name in reversed(names):
            if previous is None:
                created.append(self.add(name) if name != self.public.name else self.public)
            else:
                created.append(self.add(name, dominates=[previous]))
            previous = name
        created.reverse()
        return created

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def get(self, privilege: object) -> Privilege:
        """Resolve a name or :class:`Privilege` to the declared object."""
        name = privilege.name if isinstance(privilege, Privilege) else str(privilege)
        try:
            return self._privileges[name]
        except KeyError:
            raise UnknownPrivilegeError(name) from None

    def __contains__(self, privilege: object) -> bool:
        name = privilege.name if isinstance(privilege, Privilege) else str(privilege)
        return name in self._privileges

    def privileges(self) -> List[Privilege]:
        """All declared privileges, Public first, then insertion order."""
        return list(self._privileges.values())

    def names(self) -> List[str]:
        """All declared privilege names."""
        return list(self._privileges.keys())

    # ------------------------------------------------------------------ #
    # the partial order
    # ------------------------------------------------------------------ #
    def dominates(self, higher: object, lower: object) -> bool:
        """Definition 2: ``higher`` dominates ``lower`` (reflexive, transitive)."""
        higher_name = self.get(higher).name
        lower_name = self.get(lower).name
        return lower_name in self.dominated_closure(higher_name)

    def dominated_closure(self, privilege: object) -> FrozenSet[str]:
        """The frozen set of every name dominated by ``privilege``.

        Includes the privilege itself and Public (reflexivity + bottom
        element), so ``lower in lattice.dominated_closure(higher)`` is the
        O(1) form of :meth:`dominates`.  The table is built once per lattice
        mutation and shared; compiled marking views hold on to these
        frozensets to answer dominance without touching the lattice again.
        """
        if self._dominated_names is None:
            closure = self._transitive_closure()
            public_name = self.public.name
            self._dominated_names = {
                name: frozenset(closure[name] | {name, public_name})
                for name in self._privileges
            }
        name = privilege.name if isinstance(privilege, Privilege) else str(privilege)
        try:
            return self._dominated_names[name]
        except KeyError:
            raise UnknownPrivilegeError(name) from None

    def strictly_dominates(self, higher: object, lower: object) -> bool:
        """Dominates and is not the same predicate."""
        return self.get(higher).name != self.get(lower).name and self.dominates(higher, lower)

    def comparable(self, left: object, right: object) -> bool:
        """True when one of the two predicates dominates the other."""
        return self.dominates(left, right) or self.dominates(right, left)

    def dominated_by(self, privilege: object) -> Set[Privilege]:
        """Every predicate dominated by ``privilege`` (including itself and Public)."""
        name = self.get(privilege).name
        names = set(self._transitive_closure()[name]) | {name, self.public.name}
        return {self._privileges[other] for other in names}

    def dominators_of(self, privilege: object) -> Set[Privilege]:
        """Every predicate that dominates ``privilege`` (including itself)."""
        name = self.get(privilege).name
        return {
            self._privileges[candidate]
            for candidate in self._privileges
            if self.dominates(candidate, name)
        }

    def maximal(self, privileges: Iterable[object]) -> Set[Privilege]:
        """The maximal elements (no other member strictly dominates them) of a set."""
        resolved = [self.get(privilege) for privilege in privileges]
        result: Set[Privilege] = set()
        for candidate in resolved:
            if not any(
                self.strictly_dominates(other, candidate) for other in resolved if other != candidate
            ):
                result.add(candidate)
        return result

    def is_antichain(self, privileges: Iterable[object]) -> bool:
        """True when no member of the set dominates another member."""
        resolved = [self.get(privilege) for privilege in privileges]
        for index, left in enumerate(resolved):
            for right in resolved[index + 1 :]:
                if left != right and (self.dominates(left, right) or self.dominates(right, left)):
                    return False
        return True

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _transitive_closure(self) -> Dict[str, FrozenSet[str]]:
        if self._closure is None:
            closure: Dict[str, Set[str]] = {name: set() for name in self._privileges}
            for name in self._privileges:
                frontier = list(self._direct_dominates[name])
                seen: Set[str] = set()
                while frontier:
                    current = frontier.pop()
                    if current in seen:
                        continue
                    seen.add(current)
                    frontier.extend(self._direct_dominates[current])
                closure[name] = seen
            self._closure = {name: frozenset(values) for name, values in closure.items()}
        return self._closure

    def _check_acyclic(self) -> None:
        closure = self._transitive_closure()
        for name, dominated in closure.items():
            if name in dominated:
                raise CyclicDominanceError(
                    f"privilege {name!r} transitively dominates itself; dominance must be a partial order"
                )


class HighWaterSet:
    """The high-water set of a graph (Definition 6).

    Given the ``lowest()`` privilege of each node, the high-water set is the
    antichain of maximal lowest-privileges: no member dominates another,
    every node's ``lowest`` is dominated by some member, and every member is
    some node's ``lowest``.
    """

    def __init__(self, lattice: PrivilegeLattice, members: Iterable[Privilege]) -> None:
        self.lattice = lattice
        self.members: FrozenSet[Privilege] = frozenset(lattice.get(member) for member in members)
        if not lattice.is_antichain(self.members):
            # Normalise: keep only the maximal elements.
            self.members = frozenset(lattice.maximal(self.members))

    @classmethod
    def of_nodes(
        cls,
        lattice: PrivilegeLattice,
        node_lowest: Mapping[object, object],
    ) -> "HighWaterSet":
        """Compute the high-water set from a node → lowest-privilege mapping."""
        lowests = {lattice.get(privilege) for privilege in node_lowest.values()}
        if not lowests:
            return cls(lattice, [lattice.public])
        return cls(lattice, lattice.maximal(lowests))

    def covers(self, privilege: object) -> bool:
        """True when some member dominates ``privilege`` (Definition 6, clause 2)."""
        return any(self.lattice.dominates(member, privilege) for member in self.members)

    def dominated_by_consumer(self, consumer_privilege: object) -> bool:
        """True when the consumer's privilege dominates every member.

        A consumer can see the *whole* graph exactly when their credentials
        dominate the conjunction of the high-water members.
        """
        return all(self.lattice.dominates(consumer_privilege, member) for member in self.members)

    def names(self) -> Set[str]:
        """Member names, for reporting."""
        return {member.name for member in self.members}

    def __iter__(self):
        return iter(sorted(self.members, key=lambda privilege: privilege.name))

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, privilege: object) -> bool:
        return self.lattice.get(privilege) in self.members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HighWaterSet({sorted(self.names())})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HighWaterSet):
            return NotImplemented
        return self.members == other.members


# --------------------------------------------------------------------------- #
# Standard lattices used by the paper's examples
# --------------------------------------------------------------------------- #
def figure1_lattice() -> Tuple[PrivilegeLattice, Dict[str, Privilege]]:
    """The privilege lattice of the paper's Figure 1(b).

    ``Public`` < ``Low-2`` < {``High-1``, ``High-2``}, with High-1 and High-2
    incomparable.  Returns the lattice and a name → privilege mapping.
    """
    lattice = PrivilegeLattice()
    low2 = lattice.add("Low-2", dominates=["Public"], description="broader partner community")
    high1 = lattice.add("High-1", dominates=[low2], description="first highly-trusted community")
    high2 = lattice.add("High-2", dominates=[low2], description="second highly-trusted community")
    return lattice, {
        "Public": lattice.public,
        "Low-2": low2,
        "High-1": high1,
        "High-2": high2,
    }


def appendix_lattice() -> Tuple[PrivilegeLattice, Dict[str, Privilege]]:
    """The provenance-example lattice of the paper's Figure 11(b).

    ``Public`` < ``Emergency Responder`` < ``Cleared Emergency Responder``;
    ``Public`` < ``Medical Provider``; ``Public`` < ``National Security``,
    with ``National Security`` and ``Cleared Emergency Responder`` sitting at
    the top of their respective branches.
    """
    lattice = PrivilegeLattice()
    responder = lattice.add("Emergency Responder", dominates=["Public"])
    cleared = lattice.add("Cleared Emergency Responder", dominates=[responder])
    medical = lattice.add("Medical Provider", dominates=["Public"])
    national = lattice.add("National Security", dominates=[responder])
    return lattice, {
        "Public": lattice.public,
        "Emergency Responder": responder,
        "Cleared Emergency Responder": cleared,
        "Medical Provider": medical,
        "National Security": national,
    }
