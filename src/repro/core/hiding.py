"""The "show/hide" baselines the paper compares against.

Two baselines appear in the evaluation:

* the **naive protected account** (Figure 1c): every node not visible to the
  consumer class is dropped along with all of its incident edges — the
  behaviour of standard access control with no surrogates at all;
* **hide-based edge protection**: the same edges that the surrogate strategy
  protects are instead marked ``HIDE``, so they simply disappear and no
  surrogate edge may summarise paths through them.

Both produce ordinary :class:`~repro.core.protected_account.ProtectedAccount`
objects so the utility/opacity measures apply uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.core.generation import build_protected_account
from repro.core.markings import EdgeState
from repro.core.policy import ReleasePolicy, STRATEGY_HIDE
from repro.core.protected_account import ProtectedAccount
from repro.graph.model import EdgeKey, NodeId, PropertyGraph

#: Strategy label for the all-or-nothing baseline.
STRATEGY_NAIVE = "naive"


def naive_protected_account(
    graph: PropertyGraph,
    policy: ReleasePolicy,
    privilege: object,
    *,
    respect_edge_markings: bool = True,
    name: Optional[str] = None,
) -> ProtectedAccount:
    """The all-or-nothing account of Figure 1(c).

    Nodes visible via ``privilege`` are kept as-is; everything else —
    including every edge incident to a dropped node — is removed.  No
    surrogate nodes or edges are used.

    With ``respect_edge_markings`` (the default) an edge between two visible
    nodes still disappears when its markings do not combine to ``VISIBLE``;
    passing ``False`` ignores markings entirely (pure node-level access
    control).
    """
    privilege = policy.lattice.get(privilege)
    visible: Set[NodeId] = policy.visible_nodes(graph, privilege)
    account = PropertyGraph(name=name if name is not None else f"{graph.name or 'graph'}@{privilege.name}:naive")
    correspondence: Dict[NodeId, NodeId] = {}
    markings = policy.markings.compile(graph, privilege) if respect_edge_markings else None
    for node in graph.nodes():
        if node.node_id in visible:
            account.add_node(node.node_id, kind=node.kind, features=dict(node.features))
            correspondence[node.node_id] = node.node_id
    for edge in graph.edges():
        if edge.source not in visible or edge.target not in visible:
            continue
        if markings is not None and markings.edge_state(edge.key) is not EdgeState.VISIBLE:
            continue
        account.add_edge(edge.source, edge.target, label=edge.label, features=dict(edge.features))
    return ProtectedAccount(
        graph=account,
        correspondence=correspondence,
        privilege=privilege,
        surrogate_nodes=set(),
        surrogate_edges=set(),
        strategy=STRATEGY_NAIVE,
    )


def hide_protected_account(
    graph: PropertyGraph,
    policy: ReleasePolicy,
    privilege: object,
    *,
    edges_to_protect: Optional[Iterable[EdgeKey]] = None,
) -> ProtectedAccount:
    """Protect ``edges_to_protect`` by hiding them, then generate the account.

    When ``edges_to_protect`` is ``None`` the policy's existing markings are
    used as-is, but surrogate-edge computation is disabled — i.e. whatever
    is not directly visible is simply absent.  Either way the result carries
    the ``"hide"`` strategy label used by the experiment drivers.
    """
    scoped = policy.copy()
    if edges_to_protect is not None:
        scoped.protect_edges(list(edges_to_protect), privilege, strategy=STRATEGY_HIDE)
        return build_protected_account(graph, scoped, privilege, strategy=STRATEGY_HIDE)
    return build_protected_account(
        graph,
        scoped,
        privilege,
        include_surrogate_edges=False,
        strategy=STRATEGY_HIDE,
    )
