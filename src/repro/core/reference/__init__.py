"""Paper-literal reference implementations kept as differential-test oracles.

The optimised engines in :mod:`repro.core` each keep (or, where the seed
code was replaced outright, move here) a naive implementation that follows
the paper's definitions as directly as possible:

* ``%P`` / Path Utility — :func:`repro.core.utility.path_percentage` (the
  per-node BFS form, still in :mod:`repro.core.utility`),
* opacity — :mod:`repro.core.reference.opacity_reference` (the per-edge
  O(V) evaluation of Figures 4–5 that the compiled opacity engine
  replaced).

These functions are **not** part of the serving path: only the differential
property suites (``tests/property``) and the benchmarks import them, to pin
the fast paths exactly equal to the paper-literal semantics.
"""

from repro.core.reference.opacity_reference import (
    average_opacity_reference,
    inference_likelihood_reference,
    opacity_profile_reference,
    opacity_reference,
)

__all__ = [
    "average_opacity_reference",
    "inference_likelihood_reference",
    "opacity_profile_reference",
    "opacity_reference",
]
