"""The paper-literal per-edge opacity formula (Figures 4–5), kept as an oracle.

This is the seed implementation of the opacity measure: for **every** edge it
re-runs the adversary over the whole account graph — both weight vectors, the
``normalize_focus`` total and the O(V) leave-one-out guess denominator — so a
whole-account :func:`opacity_profile_reference` costs O(E·V).  The compiled
engine (:class:`repro.core.opacity.CompiledOpacityView`) replaced it on the
serving path; this module survives purely as the differential-testing oracle
that pins the compiled path **bit-identical** to the paper-literal reading,
mirroring how the per-node BFS ``path_percentage`` was kept when utility
scoring went component-based.

Float determinism: every weight total is evaluated with :func:`math.fsum`,
the correctly-rounded float sum.  Correct rounding is what makes exact
(``==``) cross-implementation equality *possible*: the compiled view reaches
the same totals through exact :class:`fractions.Fraction` arithmetic rounded
once, and two correctly-rounded evaluations of the same real sum are the
same double, regardless of summation order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.core.opacity import DEFAULT_ADVERSARY, AttackerModel, hidden_edges
from repro.core.opacity import _checked_weight
from repro.core.protected_account import ProtectedAccount
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


def inference_likelihood_reference(
    account_graph: PropertyGraph,
    account_source: NodeId,
    account_target: NodeId,
    adversary: AttackerModel,
    *,
    normalize_focus: bool = False,
) -> float:
    """``I`` — probability the attacker names the hidden edge from either endpoint.

    The direct reading of Figure 4: rebuild both weight vectors for this one
    edge, normalise the far endpoint's ``IP`` over all other nodes, sum the
    two focus-then-guess terms and clamp to ``[0, 1]``.  Each degenerate
    input gets an explicit branch (the compiled engine mirrors them exactly):

    * a single-node account graph offers no far endpoint to name → 0,
    * all-zero inference weights leave every guess without mass → 0,
    * ``normalize_focus`` over a zero focus total is no attention at all → 0.
    """
    node_ids = account_graph.node_ids()
    if len(node_ids) < 2:
        return 0.0
    focus_weights = {
        node_id: _checked_weight(
            "focus", node_id, adversary.focus_probability(account_graph, node_id)
        )
        for node_id in node_ids
    }
    inference_weights = {
        node_id: _checked_weight(
            "inference", node_id, adversary.inference_probability(account_graph, node_id)
        )
        for node_id in node_ids
    }
    total_focus = math.fsum(focus_weights.values())
    total_inference = math.fsum(inference_weights.values())
    if total_inference == 0.0:
        return 0.0
    if normalize_focus and total_focus <= 0.0:
        return 0.0

    def focus(node_id: NodeId) -> float:
        weight = focus_weights[node_id]
        if not normalize_focus:
            return weight
        return weight / total_focus if total_focus > 0 else 0.0

    def guess(from_node: NodeId, to_node: NodeId) -> float:
        """P(attacker focused on ``from_node`` names ``to_node`` as the other endpoint)."""
        denominator = math.fsum(
            weight for node_id, weight in inference_weights.items() if node_id != from_node
        )
        if denominator <= 0:
            return 0.0
        return inference_weights[to_node] / denominator

    likelihood = focus(account_source) * guess(account_source, account_target) + focus(
        account_target
    ) * guess(account_target, account_source)
    return max(0.0, min(1.0, likelihood))


def opacity_reference(
    original: PropertyGraph,
    account: ProtectedAccount,
    edge: EdgeKey,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
) -> float:
    """Opacity of one original edge, evaluated the paper-literal O(V) way."""
    adversary = adversary if adversary is not None else DEFAULT_ADVERSARY
    source, target = edge
    if account.contains_original_edge(source, target):
        return 0.0
    account_source = account.account_node_of(source)
    account_target = account.account_node_of(target)
    if account_source is None or account_target is None:
        return 1.0
    inference = inference_likelihood_reference(
        account.graph,
        account_source,
        account_target,
        adversary,
        normalize_focus=normalize_focus,
    )
    return max(0.0, min(1.0, 1.0 - inference))


def opacity_profile_reference(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
) -> Dict[EdgeKey, float]:
    """Per-edge opacity over a set of edges (default: all hidden), O(V) each."""
    if edges is None:
        edges = hidden_edges(original, account)
    return {
        tuple(edge): opacity_reference(
            original, account, tuple(edge), adversary=adversary, normalize_focus=normalize_focus
        )
        for edge in edges
    }


def average_opacity_reference(
    original: PropertyGraph,
    account: ProtectedAccount,
    edges: Optional[Iterable[EdgeKey]] = None,
    *,
    adversary: Optional[AttackerModel] = None,
    normalize_focus: bool = False,
) -> float:
    """Average opacity over a set of edges, the paper-literal way (1.0 if empty)."""
    profile = opacity_profile_reference(
        original, account, edges, adversary=adversary, normalize_focus=normalize_focus
    )
    if not profile:
        return 1.0
    return sum(profile.values()) / len(profile)
