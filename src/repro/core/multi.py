"""Protected accounts for consumers satisfying several incomparable classes.

Appendix B generates accounts for *singleton* high-water sets and notes that
"when there are multiple privilege-predicates, the same process is used for
each predicate".  This module implements that extension: a consumer whose
credentials satisfy several incomparable privilege-predicates (e.g. both
``High-1`` and ``High-2`` in Figure 1, or both ``Medical Provider`` and
``Emergency Responder`` in Figure 11) is entitled to everything releasable
to *any* of those classes, so their account is the merge of the per-class
maximally informative accounts:

* an original node appears whenever it is visible via any satisfied class;
* otherwise the most informative surrogate offered to any satisfied class is
  used (the paper's "domain-dependent function" for choosing among
  incomparable surrogates defaults to: most dominant ``lowest``, then
  highest ``infoScore``);
* an edge appears whenever it appears in any per-class account, attached to
  the merged representations of its endpoints; it is a surrogate edge only
  if every contributing account shows it as a surrogate edge.

The merge is sound: every edge of the result is an edge of some per-class
account, each of which only asserts connectivity present in the original
graph (Definition 5).
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, MutableMapping, Optional, Sequence, Set, Tuple

from repro.core.generation import (
    SURROGATE_EDGE_LABEL,
    WalkCacheKey,
    build_protected_account,
)
from repro.core.permitted import VisibleWalkCache
from repro.core.policy import ReleasePolicy, STRATEGY_SURROGATE
from repro.core.privileges import Privilege
from repro.core.protected_account import ProtectedAccount
from repro.exceptions import ProtectionError
from repro.graph.model import EdgeKey, NodeId, PropertyGraph


def build_multi_privilege_account(
    graph: PropertyGraph,
    policy: ReleasePolicy,
    privileges: Sequence[object],
    *,
    ensure_maximal_connectivity: bool = False,
    strategy: str = STRATEGY_SURROGATE,
    name: Optional[str] = None,
    walks_cache: Optional[MutableMapping[WalkCacheKey, VisibleWalkCache]] = None,
) -> ProtectedAccount:
    """The merged protected account for a consumer satisfying ``privileges``.

    ``privileges`` may contain comparable classes; only the maximal ones
    matter (a dominated class adds nothing).  With a single (maximal)
    privilege this reduces exactly to
    :func:`~repro.core.generation.build_protected_account`.
    """
    resolved = [policy.lattice.get(privilege) for privilege in privileges]
    if not resolved:
        raise ProtectionError("at least one privilege-predicate is required")
    maximal = sorted(policy.lattice.maximal(resolved), key=lambda privilege: privilege.name)
    per_class = [
        build_protected_account(
            graph,
            policy,
            privilege,
            ensure_maximal_connectivity=ensure_maximal_connectivity,
            strategy=strategy,
            walks_cache=walks_cache,
        )
        for privilege in maximal
    ]
    if len(per_class) == 1:
        return per_class[0]
    return merge_accounts(
        graph,
        per_class,
        name=name
        if name is not None
        else f"{graph.name or 'graph'}@{'+'.join(privilege.name for privilege in maximal)}",
        strategy=strategy,
    )


def generate_multi_privilege_account(
    graph: PropertyGraph,
    policy: ReleasePolicy,
    privileges: Sequence[object],
    *,
    ensure_maximal_connectivity: bool = False,
    strategy: str = STRATEGY_SURROGATE,
    name: Optional[str] = None,
) -> ProtectedAccount:
    """Deprecated free-function entry point; use :class:`repro.api.ProtectionService`.

    Delegates to ``ProtectionService(graph, policy).protect(...)`` with
    every privilege in the request, so it stays byte-identical to the
    service path.
    """
    warnings.warn(
        "generate_multi_privilege_account() is deprecated; use "
        "repro.api.ProtectionService(graph, policy).protect(privileges=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.service import ProtectionService

    return (
        ProtectionService(graph, policy)
        .protect(
            privileges=tuple(privileges),
            repair_connectivity=ensure_maximal_connectivity,
            strategy=strategy,
            name=name,
            score=False,
        )
        .account
    )


def merge_accounts(
    original: PropertyGraph,
    accounts: Sequence[ProtectedAccount],
    *,
    name: Optional[str] = None,
    strategy: str = STRATEGY_SURROGATE,
) -> ProtectedAccount:
    """Merge several protected accounts of the same original graph.

    The merge prefers, for each represented original node, the most
    informative representation available in any account (an original node
    beats any surrogate; between surrogates, larger feature sets win, ties
    broken deterministically by id).
    """
    if not accounts:
        raise ProtectionError("merge_accounts needs at least one account")

    # Choose one representation per original node.
    chosen: Dict[NodeId, Tuple[ProtectedAccount, NodeId]] = {}
    for account in accounts:
        for account_node, original_node in account.correspondence.items():
            incumbent = chosen.get(original_node)
            candidate = (account, account_node)
            if incumbent is None or _representation_rank(candidate) > _representation_rank(incumbent):
                chosen[original_node] = candidate

    merged = PropertyGraph(name=name or (original.name or "graph") + "@merged")
    correspondence: Dict[NodeId, NodeId] = {}
    surrogate_nodes: Set[NodeId] = set()
    to_merged: Dict[NodeId, NodeId] = {}
    for original_node, (account, account_node) in sorted(chosen.items(), key=lambda item: repr(item[0])):
        node = account.graph.node(account_node)
        if merged.has_node(node.node_id):
            raise ProtectionError(
                f"surrogate id {node.node_id!r} collides across the merged accounts"
            )
        merged.add_node(node.node_id, kind=node.kind, features=dict(node.features))
        correspondence[node.node_id] = original_node
        to_merged[original_node] = node.node_id
        if account.is_surrogate_node(account_node):
            surrogate_nodes.add(node.node_id)

    # Merge edges, remapping endpoints through the chosen representations.
    surrogate_edges: Set[EdgeKey] = set()
    visible_edges: Set[EdgeKey] = set()
    for account in accounts:
        for edge in account.graph.edges():
            source_original = account.original_of(edge.source)
            target_original = account.original_of(edge.target)
            merged_source = to_merged[source_original]
            merged_target = to_merged[target_original]
            if merged_source == merged_target:
                continue
            key = (merged_source, merged_target)
            if not merged.has_edge(*key):
                merged.add_edge(merged_source, merged_target, label=edge.label, features=dict(edge.features))
            if account.is_surrogate_edge(edge.source, edge.target):
                surrogate_edges.add(key)
            else:
                visible_edges.add(key)
    # An edge shown directly by any contributing account is not a surrogate edge.
    surrogate_edges -= visible_edges
    for key in surrogate_edges:
        # Normalise the label of pure surrogate edges.
        edge = merged.edge(*key)
        if edge.label != SURROGATE_EDGE_LABEL:
            merged.add_edge(key[0], key[1], label=SURROGATE_EDGE_LABEL, replace=True)

    privilege = accounts[0].privilege if len({a.privilege for a in accounts}) == 1 else None
    result = ProtectedAccount(
        graph=merged,
        correspondence=correspondence,
        privilege=privilege,
        surrogate_nodes=surrogate_nodes,
        surrogate_edges=surrogate_edges,
        strategy=strategy,
    )
    # Stamp the whole family (merged + per-class sub-accounts) as derivation
    # peers: scoring any member after any other re-uses the first member's
    # compiled adversary simulation via CompiledOpacityView.derive_for — one
    # O(V) simulation per family instead of one per sub-account.
    family = (result, *accounts)
    for member in family:
        member.derivation_peers = family
    return result


def _representation_rank(candidate: Tuple[ProtectedAccount, NodeId]) -> Tuple[int, int, str]:
    """Order representations: originals first, then richer surrogates, then by id."""
    account, account_node = candidate
    is_original = 0 if account.is_surrogate_node(account_node) else 1
    feature_count = len(account.graph.node(account_node).features)
    # Negative string ordering is not meaningful; use the id only as a final
    # deterministic tie-break (reverse alphabetical keeps max() stable).
    return (is_original, feature_count, str(account_node))
