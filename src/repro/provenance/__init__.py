"""PLUS-style provenance substrate.

The paper's evaluation runs on the PLUS prototype, a provenance system whose
lineage queries ("what data and processes contributed to this data?") are
the motivating path-traversal workload.  This package provides that
substrate:

* :mod:`repro.provenance.model` — an OPM-flavoured provenance graph (data,
  process and agent nodes; ``input_to`` / ``generated`` edges; acyclicity
  checks);
* :mod:`repro.provenance.queries` — lineage queries over provenance graphs
  and protected accounts;
* :mod:`repro.provenance.plus` — the :class:`~repro.provenance.plus.PLUSClient`
  facade combining the embedded store, release policies and the protection
  engine (this is what the Figure-10 benchmark drives);
* :mod:`repro.provenance.examples` — the Appendix-A emergency-treatment-plan
  example (Figure 11).
"""

from repro.provenance.model import (
    AGENT,
    DATA,
    GENERATED,
    INPUT_TO,
    PROCESS,
    ProvenanceGraph,
)
from repro.provenance.queries import LineageResult, lineage, lineage_over_account
from repro.provenance.plus import PLUSClient, ProtectionTimings
from repro.provenance.examples import emergency_plan_example, EmergencyPlanExample

__all__ = [
    "DATA",
    "PROCESS",
    "AGENT",
    "INPUT_TO",
    "GENERATED",
    "ProvenanceGraph",
    "LineageResult",
    "lineage",
    "lineage_over_account",
    "PLUSClient",
    "ProtectionTimings",
    "emergency_plan_example",
    "EmergencyPlanExample",
]
