"""The Appendix-A provenance example (paper Figure 11).

An emergency treatment plan is produced by a workflow that aggregates
patient records, runs epidemiological projections against bio-threat
intelligence, and plans local action against supply stockpiles.  Different
pieces carry different sensitivities (HIPAA data, national-security threat
models, responder-only logistics), which is exactly the situation the
paper's surrogates are designed for: an Emergency Responder should learn as
much as possible about where the plan came from without seeing the
restricted pieces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.markings import Marking
from repro.core.policy import ReleasePolicy
from repro.core.privileges import Privilege, PrivilegeLattice, appendix_lattice
from repro.provenance.model import ProvenanceGraph

#: The final artifact whose provenance the example queries.
PLAN = "emergency_treatment_plan"


@dataclass
class EmergencyPlanExample:
    """The Figure-11 workload: provenance graph, lattice, privileges, policy."""

    provenance: ProvenanceGraph
    lattice: PrivilegeLattice
    privileges: Dict[str, Privilege]
    policy: ReleasePolicy

    @property
    def graph(self):
        """The underlying property graph (what the protection engine consumes)."""
        return self.provenance.graph

    @property
    def responder(self) -> Privilege:
        """The Emergency Responder class used in the worked example."""
        return self.privileges["Emergency Responder"]


def emergency_plan_provenance() -> ProvenanceGraph:
    """Build the Figure-11 workflow as a provenance graph."""
    prov = ProvenanceGraph("emergency-plan")
    # Data artifacts.
    for record_index in (1, 2, 3):
        prov.add_data(f"patient_record_{record_index}", features={"type": "patient record"})
    prov.add_data("affected_patient_count", features={"type": "aggregate count"})
    prov.add_data("bio_threat_intelligence", features={"type": "intelligence report"})
    prov.add_data("threat_level", features={"type": "assessment"})
    prov.add_data("historical_disease_data", features={"type": "historical data", "region": "1"})
    prov.add_data("cdc_regional_epidemic_model", features={"type": "model"})
    prov.add_data("specific_epidemic_model", features={"type": "model"})
    prov.add_data("emergency_supplies_stockpile", features={"type": "inventory"})
    prov.add_data(PLAN, features={"type": "plan"})
    # Processes (flow over time: inputs -> process -> outputs).
    prov.record_invocation(
        "hipaa_compliant_aggregator",
        inputs=["patient_record_1", "patient_record_2", "patient_record_3"],
        outputs=["affected_patient_count"],
        features={"tool": "HIPAA-Compliant Aggregator"},
    )
    prov.record_invocation(
        "epidemiological_projector",
        inputs=["bio_threat_intelligence", "cdc_regional_epidemic_model", "historical_disease_data"],
        outputs=["specific_epidemic_model", "threat_level"],
        features={"tool": "Epidemiological Projector, EPFF v3"},
    )
    prov.record_invocation(
        "trend_model_simulator",
        inputs=["specific_epidemic_model", "affected_patient_count"],
        outputs=[],
        features={"tool": "Trend Model Simulator"},
    )
    prov.add_data("trend_projection", features={"type": "projection"})
    prov.add_output("trend_model_simulator", "trend_projection")
    prov.record_invocation(
        "supply_analysis",
        inputs=["emergency_supplies_stockpile", "trend_projection"],
        outputs=[],
        features={"tool": "Supply Analysis"},
    )
    prov.add_data("supply_plan", features={"type": "logistics"})
    prov.add_output("supply_analysis", "supply_plan")
    prov.record_invocation(
        "local_action_planning",
        inputs=["supply_plan", "threat_level", "trend_projection"],
        outputs=[PLAN],
        features={"tool": "Local Action Planning"},
    )
    prov.validate()
    return prov


#: lowest() assignment mirroring the shading of Figure 11(a).
EMERGENCY_PLAN_LOWEST = {
    "patient_record_1": "Medical Provider",
    "patient_record_2": "Medical Provider",
    "patient_record_3": "Medical Provider",
    "hipaa_compliant_aggregator": "Medical Provider",
    "affected_patient_count": "Emergency Responder",
    "bio_threat_intelligence": "National Security",
    "cdc_regional_epidemic_model": "Public",
    "historical_disease_data": "Public",
    "epidemiological_projector": "National Security",
    "specific_epidemic_model": "National Security",
    "threat_level": "Emergency Responder",
    "trend_model_simulator": "Emergency Responder",
    "trend_projection": "Emergency Responder",
    "emergency_supplies_stockpile": "Cleared Emergency Responder",
    "supply_analysis": "Cleared Emergency Responder",
    "supply_plan": "Emergency Responder",
    "local_action_planning": "Cleared Emergency Responder",
    PLAN: "Emergency Responder",
}


def emergency_plan_example(*, with_surrogates: bool = True) -> EmergencyPlanExample:
    """Build the full Appendix-A example with its release policy.

    With ``with_surrogates`` (the default) the restricted processes and
    models register coarse surrogates ("a restricted epidemiological model",
    "a planning process") releasable to Emergency Responders, and the edges
    around them are marked ``Surrogate`` so that lineage stays connected for
    that class.
    """
    lattice, privileges = appendix_lattice()
    prov = emergency_plan_provenance()
    policy = ReleasePolicy(lattice)
    policy.set_lowest_bulk(
        {node: privileges[level] for node, level in EMERGENCY_PLAN_LOWEST.items()}
    )
    if with_surrogates:
        responder = privileges["Emergency Responder"]
        policy.add_surrogate(
            "specific_epidemic_model",
            responder,
            surrogate_id="restricted_epidemic_model",
            features={"type": "model", "detail": "restricted"},
            kind="data",
            info_score=0.4,
        )
        policy.add_surrogate(
            "local_action_planning",
            responder,
            surrogate_id="planning_process",
            features={"tool": "a planning process"},
            kind="process",
            info_score=0.4,
        )
        policy.add_surrogate(
            "epidemiological_projector",
            responder,
            surrogate_id="projection_process",
            features={"tool": "a projection process"},
            kind="process",
            info_score=0.3,
        )
        graph = prov.graph
        # Keep responder-level lineage connected through the restricted nodes.
        for restricted in (
            "epidemiological_projector",
            "specific_epidemic_model",
            "local_action_planning",
            "supply_analysis",
            "emergency_supplies_stockpile",
            "hipaa_compliant_aggregator",
        ):
            policy.markings.mark_incident_edges(
                graph, restricted, responder, Marking.SURROGATE
            )
    return EmergencyPlanExample(
        provenance=prov, lattice=lattice, privileges=privileges, policy=policy
    )
