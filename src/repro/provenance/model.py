"""An OPM-flavoured provenance graph model.

Provenance is "an annotated causality graph, which is a directed acyclic
graph" (paper footnote 1, citing the Open Provenance Model).  The model here
keeps the three OPM node kinds — data artifacts, processes and agents — and
records causality with two edge labels:

* ``input_to`` — a data artifact (or an agent) fed a process,
* ``generated`` — a process produced a data artifact.

Edges point in the direction of flow over time (inputs → process →
outputs), matching the paper's Figure 11, so "what contributed to X?" is an
*ancestors* query.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import ProvenanceError
from repro.graph.algorithms import is_acyclic, topological_sort
from repro.graph.model import Edge, Node, NodeId, PropertyGraph
from repro.graph.traversal import ancestors, descendants

#: Node kinds.
DATA = "data"
PROCESS = "process"
AGENT = "agent"
NODE_KINDS = (DATA, PROCESS, AGENT)

#: Edge labels.
INPUT_TO = "input_to"
GENERATED = "generated"
EDGE_LABELS = (INPUT_TO, GENERATED)


class ProvenanceGraph:
    """A provenance graph with OPM-style structure enforcement.

    The underlying :class:`~repro.graph.model.PropertyGraph` is exposed as
    ``.graph`` so the protection machinery (which is agnostic to node kinds)
    can be applied directly.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.graph = PropertyGraph(name=name or "provenance")

    # ------------------------------------------------------------------ #
    # node creation
    # ------------------------------------------------------------------ #
    def add_data(self, node_id: NodeId, *, features: Optional[Mapping[str, Any]] = None) -> Node:
        """Add a data artifact node."""
        return self.graph.add_node(node_id, kind=DATA, features=features)

    def add_process(self, node_id: NodeId, *, features: Optional[Mapping[str, Any]] = None) -> Node:
        """Add a process (workflow step / invocation) node."""
        return self.graph.add_node(node_id, kind=PROCESS, features=features)

    def add_agent(self, node_id: NodeId, *, features: Optional[Mapping[str, Any]] = None) -> Node:
        """Add an agent (person / organisation / service) node."""
        return self.graph.add_node(node_id, kind=AGENT, features=features)

    # ------------------------------------------------------------------ #
    # causality edges
    # ------------------------------------------------------------------ #
    def add_input(self, source: NodeId, process: NodeId) -> Edge:
        """Record that ``source`` (data or agent) was input to ``process``."""
        self._require_kind(process, PROCESS, "input_to target")
        self._forbid_kind(source, PROCESS, "input_to source")
        return self.graph.add_edge(source, process, label=INPUT_TO)

    def add_output(self, process: NodeId, artifact: NodeId) -> Edge:
        """Record that ``process`` generated ``artifact``."""
        self._require_kind(process, PROCESS, "generated source")
        self._require_kind(artifact, DATA, "generated target")
        return self.graph.add_edge(process, artifact, label=GENERATED)

    def record_invocation(
        self,
        process: NodeId,
        *,
        inputs: Sequence[NodeId] = (),
        outputs: Sequence[NodeId] = (),
        features: Optional[Mapping[str, Any]] = None,
    ) -> Node:
        """Add a process with all of its inputs and outputs in one call."""
        node = self.add_process(process, features=features)
        for source in inputs:
            self.add_input(source, process)
        for artifact in outputs:
            self.add_output(process, artifact)
        return node

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def data_nodes(self) -> List[Node]:
        """Every data artifact node."""
        return [node for node in self.graph.nodes() if node.kind == DATA]

    def process_nodes(self) -> List[Node]:
        """Every process node."""
        return [node for node in self.graph.nodes() if node.kind == PROCESS]

    def agent_nodes(self) -> List[Node]:
        """Every agent node."""
        return [node for node in self.graph.nodes() if node.kind == AGENT]

    def contributors_of(self, node_id: NodeId) -> List[NodeId]:
        """Everything upstream of ``node_id`` (the paper's motivating query)."""
        return sorted(ancestors(self.graph, node_id), key=repr)

    def derived_from(self, node_id: NodeId) -> List[NodeId]:
        """Everything downstream of ``node_id``."""
        return sorted(descendants(self.graph, node_id), key=repr)

    def execution_order(self) -> List[NodeId]:
        """A topological order of the whole graph (raises on cycles)."""
        order = topological_sort(self.graph)
        assert order is not None  # strict mode raises instead of returning None
        return order

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the OPM-ish structural invariants; raise :class:`ProvenanceError` otherwise."""
        if not is_acyclic(self.graph):
            raise ProvenanceError("provenance graphs must be acyclic (they are causality graphs)")
        for edge in self.graph.edges():
            if edge.label not in EDGE_LABELS:
                raise ProvenanceError(
                    f"edge {edge.source!r} -> {edge.target!r} has label {edge.label!r}; "
                    f"expected one of {EDGE_LABELS}"
                )
            source_kind = self.graph.node(edge.source).kind
            target_kind = self.graph.node(edge.target).kind
            if edge.label == INPUT_TO and target_kind != PROCESS:
                raise ProvenanceError(
                    f"input_to edge {edge.source!r} -> {edge.target!r} must end at a process node"
                )
            if edge.label == GENERATED and (source_kind != PROCESS or target_kind != DATA):
                raise ProvenanceError(
                    f"generated edge {edge.source!r} -> {edge.target!r} must go from a process to data"
                )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _require_kind(self, node_id: NodeId, kind: str, role: str) -> None:
        actual = self.graph.node(node_id).kind
        if actual != kind:
            raise ProvenanceError(f"{role} {node_id!r} must be a {kind} node, got {actual!r}")

    def _forbid_kind(self, node_id: NodeId, kind: str, role: str) -> None:
        actual = self.graph.node(node_id).kind
        if actual == kind:
            raise ProvenanceError(f"{role} {node_id!r} must not be a {kind} node")

    def __len__(self) -> int:
        return self.graph.node_count()
