"""Lineage queries over provenance graphs and their protected accounts.

"What data and processes contributed to this data?" is the paper's canonical
path-traversal query.  :func:`lineage` answers it over the raw (trusted)
graph; :func:`lineage_over_account` answers it over a released protected
account, which is the only form a less-privileged consumer ever sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.protected_account import ProtectedAccount
from repro.exceptions import ProvenanceError
from repro.graph.model import NodeId, PropertyGraph
from repro.graph.traversal import ancestors, descendants, reachable_subgraph

#: Query directions.
UPSTREAM = "upstream"      # what contributed to the node (ancestors)
DOWNSTREAM = "downstream"  # what was derived from the node (descendants)
DIRECTIONS = (UPSTREAM, DOWNSTREAM)


@dataclass
class LineageResult:
    """The result of one lineage query."""

    start: NodeId
    direction: str
    nodes: List[NodeId] = field(default_factory=list)
    subgraph: Optional[PropertyGraph] = None
    surrogate_nodes: Set[NodeId] = field(default_factory=set)
    start_missing: bool = False

    def __len__(self) -> int:
        return len(self.nodes)

    def node_set(self) -> Set[NodeId]:
        return set(self.nodes)

    def names(self) -> List[str]:
        """The reached node ids as strings (handy for printing)."""
        return [str(node_id) for node_id in self.nodes]

    def summary(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "direction": self.direction,
            "reached": len(self.nodes),
            "surrogates_in_result": len(self.surrogate_nodes),
            "start_missing": self.start_missing,
        }


def lineage(
    graph: PropertyGraph,
    start: NodeId,
    *,
    direction: str = UPSTREAM,
    include_subgraph: bool = False,
) -> LineageResult:
    """Lineage of ``start`` over a raw graph (no protection applied)."""
    if direction not in DIRECTIONS:
        raise ProvenanceError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    if not graph.has_node(start):
        raise ProvenanceError(f"lineage start node {start!r} is not in the graph")
    reached = ancestors(graph, start) if direction == UPSTREAM else descendants(graph, start)
    result = LineageResult(start=start, direction=direction, nodes=sorted(reached, key=repr))
    if include_subgraph:
        traversal_direction = "backward" if direction == UPSTREAM else "forward"
        result.subgraph = reachable_subgraph(graph, [start], direction=traversal_direction)
    return result


def lineage_over_account(
    account: ProtectedAccount,
    start: NodeId,
    *,
    direction: str = UPSTREAM,
    include_subgraph: bool = False,
) -> LineageResult:
    """Lineage of the *original* node ``start`` as seen through a protected account.

    ``start`` names a node of the original graph; the query runs over the
    account's graph starting from the corresponding account node.  When the
    account does not represent ``start`` at all the result is empty with
    ``start_missing=True`` — the uninformative outcome naive protection
    produces for sensitive starting points.
    """
    if direction not in DIRECTIONS:
        raise ProvenanceError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    account_start = account.account_node_of(start)
    if account_start is None:
        return LineageResult(start=start, direction=direction, start_missing=True)
    reached = (
        ancestors(account.graph, account_start)
        if direction == UPSTREAM
        else descendants(account.graph, account_start)
    )
    result = LineageResult(
        start=start,
        direction=direction,
        nodes=sorted(reached, key=repr),
        surrogate_nodes={node for node in reached if account.is_surrogate_node(node)},
    )
    if include_subgraph:
        traversal_direction = "backward" if direction == UPSTREAM else "forward"
        result.subgraph = reachable_subgraph(account.graph, [account_start], direction=traversal_direction)
    return result


def lineage_gain(
    naive_result: LineageResult, protected_result: LineageResult
) -> Dict[str, object]:
    """How much more a protected account reveals than the naive account.

    Used by the examples and the experiment drivers to report the user-visible
    benefit ("the High-2 analyst now sees 4 of the 6 upstream nodes instead
    of 0").
    """
    naive_nodes = naive_result.node_set()
    protected_nodes = protected_result.node_set()
    return {
        "naive_reached": len(naive_nodes),
        "protected_reached": len(protected_nodes),
        "additional_nodes": sorted(protected_nodes - naive_nodes, key=repr),
        "gain": len(protected_nodes) - len(naive_nodes),
    }
