"""The PLUS client facade: store + policy + protection, with phase timing.

PLUS ("Privacy, Lineage, Uncertainty and Security") is the prototype the
paper evaluates on.  :class:`PLUSClient` is this library's equivalent: it
records provenance into the embedded :class:`~repro.store.engine.GraphStore`,
manages the release policy, and serves protected lineage to consumers.  Its
:meth:`PLUSClient.timed_protection_run` reproduces the phases reported in
the paper's Figure 10 (DB access, build graph, protect via hide, protect via
surrogate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.hiding import STRATEGY_NAIVE
from repro.core.policy import ReleasePolicy, STRATEGY_HIDE, STRATEGY_SURROGATE
from repro.core.protected_account import ProtectedAccount
from repro.exceptions import ProvenanceError
from repro.graph.model import EdgeKey, NodeId, PropertyGraph
from repro.provenance.model import ProvenanceGraph
from repro.provenance.queries import LineageResult, lineage_over_account
from repro.store.engine import GraphStore


@dataclass(frozen=True)
class ProtectionTimings:
    """Wall-clock milliseconds per phase of one protection run (Figure 10's bars)."""

    db_access_ms: float
    build_graph_ms: float
    protect_hide_ms: float
    protect_surrogate_ms: float

    @property
    def total_ms(self) -> float:
        return self.db_access_ms + self.build_graph_ms + self.protect_hide_ms + self.protect_surrogate_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "total": round(self.total_ms, 3),
            "db_access": round(self.db_access_ms, 3),
            "build_graph": round(self.build_graph_ms, 3),
            "protect_via_hide": round(self.protect_hide_ms, 3),
            "protect_via_surrogate": round(self.protect_surrogate_ms, 3),
        }


class PLUSClient:
    """Record provenance, manage release policies and serve protected lineage."""

    def __init__(
        self,
        *,
        store: Optional[GraphStore] = None,
        policy: Optional[ReleasePolicy] = None,
        graph_name: str = "provenance",
    ) -> None:
        self.store = store if store is not None else GraphStore()
        self.policy = policy if policy is not None else ReleasePolicy()
        self.graph_name = graph_name
        if not self.store.has_graph(graph_name):
            self.store.create_graph(graph_name, kind="provenance")

    # ------------------------------------------------------------------ #
    # recording provenance
    # ------------------------------------------------------------------ #
    def record_data(
        self,
        node_id: NodeId,
        *,
        features: Optional[Dict[str, object]] = None,
        lowest: Optional[object] = None,
    ) -> NodeId:
        """Record a data artifact (optionally with its lowest privilege)."""
        self.store.add_node(self.graph_name, node_id, kind="data", features=features)
        if lowest is not None:
            self.policy.set_lowest(node_id, lowest)
        return node_id

    def record_process(
        self,
        node_id: NodeId,
        *,
        inputs: Sequence[NodeId] = (),
        outputs: Sequence[NodeId] = (),
        features: Optional[Dict[str, object]] = None,
        lowest: Optional[object] = None,
    ) -> NodeId:
        """Record a process invocation with its inputs and outputs."""
        self.store.add_node(self.graph_name, node_id, kind="process", features=features)
        if lowest is not None:
            self.policy.set_lowest(node_id, lowest)
        for source in inputs:
            self.store.add_edge(self.graph_name, source, node_id, label="input_to")
        for artifact in outputs:
            self.store.add_edge(self.graph_name, node_id, artifact, label="generated")
        return node_id

    def import_provenance(self, provenance: ProvenanceGraph) -> None:
        """Bulk-load an already-built provenance graph into the store."""
        provenance.validate()
        self.store.put_graph(provenance.graph, name=self.graph_name)

    def import_graph(self, graph: PropertyGraph) -> None:
        """Bulk-load an arbitrary property graph (used by the benchmarks)."""
        self.store.put_graph(graph, name=self.graph_name)

    # ------------------------------------------------------------------ #
    # serving protected views
    # ------------------------------------------------------------------ #
    def current_graph(self) -> PropertyGraph:
        """A copy of the stored provenance graph."""
        return self.store.graph(self.graph_name)

    def service(self, graph: Optional[PropertyGraph] = None) -> ProtectionService:
        """A :class:`~repro.api.service.ProtectionService` over the stored graph.

        Each call binds a fresh copy of the stored graph (store reads always
        copy), so the service reflects the provenance recorded so far.
        """
        return ProtectionService(
            graph if graph is not None else self.current_graph(),
            self.policy,
            store=self.store,
        )

    def protected_account(self, privilege: object, *, naive: bool = False) -> ProtectedAccount:
        """The account served to consumers in class ``privilege``."""
        request = ProtectionRequest(
            privileges=(privilege,),
            strategy=STRATEGY_NAIVE if naive else STRATEGY_SURROGATE,
            score=False,
        )
        return self.service().protect(request).account

    def lineage_for(
        self,
        privilege: object,
        start: NodeId,
        *,
        direction: str = "upstream",
        naive: bool = False,
    ) -> LineageResult:
        """A lineage query answered through the released account only."""
        account = self.protected_account(privilege, naive=naive)
        return lineage_over_account(account, start, direction=direction)

    # ------------------------------------------------------------------ #
    # the Figure-10 measurement
    # ------------------------------------------------------------------ #
    def timed_protection_run(
        self,
        privilege: object,
        *,
        protected_edges: Optional[Iterable[EdgeKey]] = None,
    ) -> ProtectionTimings:
        """Measure the cost of serving a protected graph, phase by phase.

        ``db_access`` reads the stored graph back out of the store;
        ``build_graph`` rebuilds an in-memory property graph from the raw
        node/edge records (what PLUS does when materialising a lineage
        result); the two protection phases transform that graph via hiding
        and via surrogates respectively.
        """
        start = time.perf_counter()
        stored = self.store.graph(self.graph_name)
        records = [
            {"id": node.node_id, "kind": node.kind, "features": dict(node.features)}
            for node in stored.nodes()
        ]
        edge_records = [
            {"source": edge.source, "target": edge.target, "label": edge.label}
            for edge in stored.edges()
        ]
        db_access_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        rebuilt = PropertyGraph(name=stored.name)
        for record in records:
            rebuilt.add_node(record["id"], kind=record["kind"], features=record["features"])
        for record in edge_records:
            rebuilt.add_edge(record["source"], record["target"], label=record["label"])
        build_graph_ms = (time.perf_counter() - start) * 1000.0

        edges = tuple(protected_edges) if protected_edges is not None else ()
        service = self.service(rebuilt)
        start = time.perf_counter()
        if edges:
            service.protect(
                ProtectionRequest(
                    privileges=(privilege,), strategy=STRATEGY_HIDE, protect_edges=edges, score=False
                )
            )
        else:
            service.protect(
                ProtectionRequest(privileges=(privilege,), strategy=STRATEGY_NAIVE, score=False)
            )
        protect_hide_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        service.protect(
            ProtectionRequest(
                privileges=(privilege,),
                strategy=STRATEGY_SURROGATE,
                protect_edges=edges,
                score=False,
            )
        )
        protect_surrogate_ms = (time.perf_counter() - start) * 1000.0

        return ProtectionTimings(
            db_access_ms=db_access_ms,
            build_graph_ms=build_graph_ms,
            protect_hide_ms=protect_hide_ms,
            protect_surrogate_ms=protect_surrogate_ms,
        )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """A compact status report (graph size, policy summary, store stats)."""
        graph = self.current_graph()
        return {
            "graph": self.graph_name,
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "policy": self.policy.describe(graph, self.policy.lattice.public),
            "store": self.store.stats.as_dict(),
        }
