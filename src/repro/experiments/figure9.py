"""E5 — Figure 9: Surrogate−Hide differences over the synthetic family.

Figure 9(a) plots the opacity difference and Figure 9(b) the utility
difference, both as functions of how connected the graph is and how much of
it is protected.  The paper's takeaways:

* every difference is positive — surrogating is always at least as good as
  hiding;
* the opacity advantage grows with the fraction of the graph protected;
* the utility advantage shrinks as more of the graph is protected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.opacity import AttackerModel
from repro.experiments.reporting import format_table, mean
from repro.experiments.sweep import (
    SweepRecord,
    group_by_connectivity,
    group_by_protection,
    run_synthetic_sweep,
)
from repro.workloads.synthetic import SyntheticInstance


@dataclass
class Figure9Series:
    """One aggregated series: differences averaged per group key."""

    group_by: str
    points: Dict[float, Dict[str, float]] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, object]]:
        rows = []
        for key, values in sorted(self.points.items()):
            row: Dict[str, object] = {self.group_by: key}
            row.update({name: round(value, 4) for name, value in values.items()})
            rows.append(row)
        return rows


@dataclass
class Figure9Result:
    """Raw per-instance records plus the two aggregated series of Figure 9."""

    records: List[SweepRecord] = field(default_factory=list)
    by_protection: Figure9Series = field(default_factory=lambda: Figure9Series("protect_fraction"))
    by_connectivity: Figure9Series = field(default_factory=lambda: Figure9Series("connected_pairs"))

    def as_rows(self) -> List[Dict[str, object]]:
        return [record.as_dict() for record in self.records]

    def render(self) -> str:
        sections = [
            format_table(
                self.by_protection.as_rows(),
                title="Figure 9 — mean Surrogate-Hide differences by protection level",
            ),
            "",
            format_table(
                self.by_connectivity.as_rows(),
                title="Figure 9 — mean Surrogate-Hide differences by connectivity",
            ),
        ]
        return "\n".join(sections)

    def all_differences_nonnegative(self, *, tolerance: float = 1e-9) -> bool:
        """The paper's headline claim: surrogating is never worse than hiding."""
        return all(
            record.opacity_difference >= -tolerance and record.utility_difference >= -tolerance
            for record in self.records
        )


def run_figure9(
    *,
    quick: bool = True,
    seed: int = 2011,
    instances: Optional[Sequence[SyntheticInstance]] = None,
    adversary: Optional[AttackerModel] = None,
    workers: Optional[int] = None,
) -> Figure9Result:
    """Reproduce Figure 9 over the synthetic family (reduced family when ``quick``).

    ``workers=N`` shards the underlying sweep batch across worker
    processes; the records are bit-identical to the serial run.
    """
    records = run_synthetic_sweep(
        instances, quick=quick, seed=seed, adversary=adversary, workers=workers
    )
    result = Figure9Result(records=list(records))
    for fraction, group in group_by_protection(records).items():
        result.by_protection.points[fraction] = {
            "opacity_diff": mean(record.opacity_difference for record in group),
            "utility_diff": mean(record.utility_difference for record in group),
        }
    for bucket, group in group_by_connectivity(records).items():
        result.by_connectivity.points[bucket] = {
            "opacity_diff": mean(record.opacity_difference for record in group),
            "utility_diff": mean(record.utility_difference for record in group),
        }
    return result
