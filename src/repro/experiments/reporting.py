"""Plain-text table formatting shared by the experiment drivers and the CLI."""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence


def format_value(value: Any, *, decimals: int = 3) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    decimals: int = 3,
    title: Optional[str] = None,
) -> str:
    """Format a list of row dicts as an aligned text table."""
    rows = list(rows)
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    rendered_rows: List[List[str]] = [
        [format_value(row.get(column, ""), decimals=decimals) for column in columns] for row in rows
    ]
    headers = [str(column) for column in columns]
    widths = [
        max(len(headers[index]), *(len(rendered[index]) for rendered in rendered_rows))
        if rendered_rows
        else len(headers[index])
        for index in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    decimals: int = 3,
) -> str:
    """Format rows as a GitHub-flavoured markdown table (used for EXPERIMENTS.md)."""
    rows = list(rows)
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    headers = [str(column) for column in columns]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        cells = [format_value(row.get(column, ""), decimals=decimals) for column in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
