"""E4 — Figure 8: the best utility achievable at a given opacity.

The paper's Figure 8 scatters utility against opacity for both strategies
over the synthetic family and reads off the frontier: at any required
opacity level, the best surrogate account is at least as useful as the best
hide account.  This driver bins opacity and reports the maximum utility per
bin and per strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.opacity import AttackerModel
from repro.experiments.reporting import format_table
from repro.experiments.sweep import SweepRecord, run_synthetic_sweep
from repro.workloads.synthetic import SyntheticInstance

#: Default opacity bin edges (inclusive lower bound of each bin).
DEFAULT_BINS = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0)


@dataclass
class Figure8Result:
    """Frontier points: per opacity bin, the best utility per strategy."""

    records: List[SweepRecord] = field(default_factory=list)
    bins: Tuple[float, ...] = DEFAULT_BINS
    frontier: Dict[float, Dict[str, Optional[float]]] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for lower, values in sorted(self.frontier.items()):
            rows.append(
                {
                    "opacity_at_least": lower,
                    "max_utility_hide": _round(values.get("hide")),
                    "max_utility_surrogate": _round(values.get("surrogate")),
                }
            )
        return rows

    def render(self) -> str:
        return format_table(
            self.as_rows(),
            title="Figure 8 — maximum utility achievable at a given opacity (hide vs surrogate)",
        )

    def surrogate_dominates(self, *, tolerance: float = 1e-9) -> bool:
        """True when, in every bin where both strategies reach the opacity level,
        the best surrogate utility is at least the best hide utility."""
        for values in self.frontier.values():
            hide = values.get("hide")
            surrogate = values.get("surrogate")
            if hide is None or surrogate is None:
                continue
            if surrogate + tolerance < hide:
                return False
        return True


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 4)


def run_figure8(
    *,
    quick: bool = True,
    seed: int = 2011,
    instances: Optional[Sequence[SyntheticInstance]] = None,
    records: Optional[Sequence[SweepRecord]] = None,
    bins: Tuple[float, ...] = DEFAULT_BINS,
    adversary: Optional[AttackerModel] = None,
) -> Figure8Result:
    """Reproduce Figure 8; ``records`` may be shared with a Figure-9 run."""
    if records is None:
        records = run_synthetic_sweep(instances, quick=quick, seed=seed, adversary=adversary)
    result = Figure8Result(records=list(records), bins=tuple(bins))
    for lower in bins:
        best_hide: Optional[float] = None
        best_surrogate: Optional[float] = None
        for record in records:
            if record.opacity_hide >= lower:
                best_hide = record.utility_hide if best_hide is None else max(best_hide, record.utility_hide)
            if record.opacity_surrogate >= lower:
                best_surrogate = (
                    record.utility_surrogate
                    if best_surrogate is None
                    else max(best_surrogate, record.utility_surrogate)
                )
        result.frontier[lower] = {"hide": best_hide, "surrogate": best_surrogate}
    return result
