"""Run every experiment and render a combined report.

``run_all`` is what the CLI's ``repro-surrogate all`` command and the
EXPERIMENTS.md generator use; each experiment can also be run on its own via
its driver module.  Every account the drivers generate and score goes
through :class:`repro.api.service.ProtectionService` (one request per
account), so the experiments exercise exactly the code path applications
use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.opacity import AttackerModel
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.figure10 import Figure10Result, run_figure10
from repro.experiments.reporting import format_markdown_table
from repro.experiments.table1 import Table1Result, run_table1


@dataclass
class ExperimentSuiteResult:
    """Results of every experiment driver, ready for rendering."""

    table1: Table1Result
    figure7: Figure7Result
    figure8: Figure8Result
    figure9: Figure9Result
    figure10: Figure10Result
    quick: bool = True

    def render(self) -> str:
        """Human-readable text report covering every table and figure."""
        parts = [
            self.table1.render(),
            "",
            self.figure7.render(),
            "",
            self.figure8.render(),
            "",
            self.figure9.render(),
            "",
            self.figure10.render(),
        ]
        return "\n".join(parts)

    def render_markdown(self) -> str:
        """Markdown report (the body of EXPERIMENTS.md's measured sections)."""
        scale_note = (
            "reduced (quick) synthetic family" if self.quick else "full 50-graph, 200-node synthetic family"
        )
        sections = [
            "## Table 1 / Figures 2-3 — running example",
            format_markdown_table(self.table1.as_rows()),
            "",
            "## Figure 7 — motifs (Surrogate - Hide)",
            format_markdown_table(self.figure7.as_rows()),
            "",
            f"## Figure 8 — utility vs opacity frontier ({scale_note})",
            format_markdown_table(self.figure8.as_rows()),
            "",
            f"## Figure 9 — differences by protection level ({scale_note})",
            format_markdown_table(self.figure9.by_protection.as_rows()),
            "",
            "## Figure 9 — differences by connectivity",
            format_markdown_table(self.figure9.by_connectivity.as_rows()),
            "",
            "## Figure 10 — performance (milliseconds)",
            format_markdown_table(self.figure10.as_rows()),
        ]
        return "\n".join(sections)


def run_all(
    *,
    quick: bool = True,
    seed: int = 2011,
    figure10_nodes: int = 200,
    adversary: Optional[AttackerModel] = None,
) -> ExperimentSuiteResult:
    """Run every experiment (quick synthetic family by default)."""
    figure9 = run_figure9(quick=quick, seed=seed, adversary=adversary)
    figure8 = run_figure8(records=figure9.records, adversary=adversary)
    return ExperimentSuiteResult(
        table1=run_table1(),
        figure7=run_figure7(adversary=adversary),
        figure8=figure8,
        figure9=figure9,
        figure10=run_figure10(node_count=figure10_nodes, seed=seed),
        quick=quick,
    )
