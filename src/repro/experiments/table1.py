"""E1/E2 — Table 1, Figure 2 and Figure 3 of the paper.

The driver rebuilds the running example (Figure 1), generates the naive
High-2 account and the four protected accounts of Figure 2, and reports each
one's Path Utility, Node Utility and the opacity of the sensitive edge
``f -> g`` next to the values printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.hiding import STRATEGY_NAIVE
from repro.core.opacity import AdvancedAdversary
from repro.experiments.reporting import format_table
from repro.workloads.social import SENSITIVE_EDGE, figure1_example, figure2_variant

#: The paper's reported values (Table 1 and the Figure 3 worked example).
PAPER_PATH_UTILITY = {"naive": 0.13, "a": 0.38, "b": 0.27, "c": 0.13, "d": 0.27}
PAPER_OPACITY = {"a": 0.0, "b": 1.0, "c": 0.882, "d": 0.948}
PAPER_NODE_UTILITY_NAIVE = 6 / 11


@dataclass
class Table1Row:
    """One account's measurements next to the paper's values."""

    account: str
    description: str
    path_utility: float
    node_utility: float
    opacity_fg: float
    paper_path_utility: float
    paper_opacity_fg: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "account": self.account,
            "description": self.description,
            "path_utility": round(self.path_utility, 3),
            "paper_path_utility": self.paper_path_utility,
            "node_utility": round(self.node_utility, 3),
            "opacity(f->g)": round(self.opacity_fg, 3),
            "paper_opacity(f->g)": self.paper_opacity_fg,
        }


@dataclass
class Table1Result:
    """All rows of the reproduced Table 1 (plus the naive baseline)."""

    rows: List[Table1Row] = field(default_factory=list)

    def row(self, account: str) -> Table1Row:
        for candidate in self.rows:
            if candidate.account == account:
                return candidate
        raise KeyError(account)

    def as_rows(self) -> List[Dict[str, object]]:
        return [row.as_dict() for row in self.rows]

    def render(self) -> str:
        return format_table(self.as_rows(), title="Table 1 — utility and opacity of Figure 2's accounts")


_DESCRIPTIONS = {
    "naive": "Figure 1(c): drop every non-visible node and its edges",
    "a": "surrogate node f' with visible edges",
    "b": "hidden node f with surrogate edge c->g",
    "c": "surrogate node f' with hidden edges",
    "d": "surrogate node f' with surrogate edge c->g",
}


def run_table1(*, adversary: AdvancedAdversary = AdvancedAdversary()) -> Table1Result:
    """Reproduce Table 1 (and the Figure 3 utilities) of the paper.

    Every account is generated and scored through one
    :class:`~repro.api.service.ProtectionService` request per row; the
    sensitive edge ``f -> g`` is the opacity target.
    """
    result = Table1Result()

    def row(account_label: str, scores, paper_path: float, paper_opacity: float) -> Table1Row:
        return Table1Row(
            account=account_label,
            description=_DESCRIPTIONS[account_label],
            path_utility=scores.path_utility,
            node_utility=scores.node_utility,
            opacity_fg=scores.opacity.per_edge[SENSITIVE_EDGE],
            paper_path_utility=paper_path,
            paper_opacity_fg=paper_opacity,
        )

    naive_example = figure1_example()
    naive_service = ProtectionService(naive_example.graph, naive_example.policy, adversary=adversary)
    naive = naive_service.protect(
        ProtectionRequest(
            privileges=(naive_example.high2,),
            strategy=STRATEGY_NAIVE,
            opacity_edges=(SENSITIVE_EDGE,),
        )
    )
    result.rows.append(row("naive", naive.scores, PAPER_PATH_UTILITY["naive"], 1.0))

    for variant in ("a", "b", "c", "d"):
        example = figure2_variant(variant)
        service = ProtectionService(example.graph, example.policy, adversary=adversary)
        protected = service.protect(
            ProtectionRequest(privileges=(example.high2,), opacity_edges=(SENSITIVE_EDGE,))
        )
        result.rows.append(
            row(variant, protected.scores, PAPER_PATH_UTILITY[variant], PAPER_OPACITY[variant])
        )
    return result
