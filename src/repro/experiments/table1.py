"""E1/E2 — Table 1, Figure 2 and Figure 3 of the paper.

The driver rebuilds the running example (Figure 1), generates the naive
High-2 account and the four protected accounts of Figure 2, and reports each
one's Path Utility, Node Utility and the opacity of the sensitive edge
``f -> g`` next to the values printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.generation import generate_protected_account
from repro.core.hiding import naive_protected_account
from repro.core.opacity import AdvancedAdversary, opacity
from repro.core.utility import node_utility, path_utility
from repro.experiments.reporting import format_table
from repro.workloads.social import SENSITIVE_EDGE, figure1_example, figure2_variant

#: The paper's reported values (Table 1 and the Figure 3 worked example).
PAPER_PATH_UTILITY = {"naive": 0.13, "a": 0.38, "b": 0.27, "c": 0.13, "d": 0.27}
PAPER_OPACITY = {"a": 0.0, "b": 1.0, "c": 0.882, "d": 0.948}
PAPER_NODE_UTILITY_NAIVE = 6 / 11


@dataclass
class Table1Row:
    """One account's measurements next to the paper's values."""

    account: str
    description: str
    path_utility: float
    node_utility: float
    opacity_fg: float
    paper_path_utility: float
    paper_opacity_fg: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "account": self.account,
            "description": self.description,
            "path_utility": round(self.path_utility, 3),
            "paper_path_utility": self.paper_path_utility,
            "node_utility": round(self.node_utility, 3),
            "opacity(f->g)": round(self.opacity_fg, 3),
            "paper_opacity(f->g)": self.paper_opacity_fg,
        }


@dataclass
class Table1Result:
    """All rows of the reproduced Table 1 (plus the naive baseline)."""

    rows: List[Table1Row] = field(default_factory=list)

    def row(self, account: str) -> Table1Row:
        for candidate in self.rows:
            if candidate.account == account:
                return candidate
        raise KeyError(account)

    def as_rows(self) -> List[Dict[str, object]]:
        return [row.as_dict() for row in self.rows]

    def render(self) -> str:
        return format_table(self.as_rows(), title="Table 1 — utility and opacity of Figure 2's accounts")


_DESCRIPTIONS = {
    "naive": "Figure 1(c): drop every non-visible node and its edges",
    "a": "surrogate node f' with visible edges",
    "b": "hidden node f with surrogate edge c->g",
    "c": "surrogate node f' with hidden edges",
    "d": "surrogate node f' with surrogate edge c->g",
}


def run_table1(*, adversary: AdvancedAdversary = AdvancedAdversary()) -> Table1Result:
    """Reproduce Table 1 (and the Figure 3 utilities) of the paper."""
    result = Table1Result()

    naive_example = figure1_example()
    naive = naive_protected_account(naive_example.graph, naive_example.policy, naive_example.high2)
    result.rows.append(
        Table1Row(
            account="naive",
            description=_DESCRIPTIONS["naive"],
            path_utility=path_utility(naive_example.graph, naive),
            node_utility=node_utility(naive_example.graph, naive),
            opacity_fg=opacity(naive_example.graph, naive, SENSITIVE_EDGE, adversary=adversary),
            paper_path_utility=PAPER_PATH_UTILITY["naive"],
            paper_opacity_fg=1.0,
        )
    )

    for variant in ("a", "b", "c", "d"):
        example = figure2_variant(variant)
        account = generate_protected_account(example.graph, example.policy, example.high2)
        result.rows.append(
            Table1Row(
                account=variant,
                description=_DESCRIPTIONS[variant],
                path_utility=path_utility(example.graph, account),
                node_utility=node_utility(example.graph, account),
                opacity_fg=opacity(example.graph, account, SENSITIVE_EDGE, adversary=adversary),
                paper_path_utility=PAPER_PATH_UTILITY[variant],
                paper_opacity_fg=PAPER_OPACITY[variant],
            )
        )
    return result
