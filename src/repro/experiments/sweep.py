"""The synthetic-graph sweep shared by Figures 8 and 9.

For every synthetic instance (a graph plus its sample of protected edges)
both protection strategies are applied and the resulting accounts are scored
for Path Utility and for average opacity over the protected edges.  The
sweep records are then aggregated differently by the Figure-8 and Figure-9
drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.opacity import AdvancedAdversary, AttackerModel
from repro.core.policy import ReleasePolicy, STRATEGY_HIDE, STRATEGY_SURROGATE
from repro.core.privileges import PrivilegeLattice
from repro.workloads.synthetic import (
    DEFAULT_CONNECTIVITY_TARGETS,
    DEFAULT_PROTECT_FRACTIONS,
    SyntheticInstance,
    synthetic_family,
)

#: Reduced sweep parameters used when ``quick=True`` (benchmarks, CI).
QUICK_NODE_COUNT = 80
QUICK_CONNECTIVITY_TARGETS = (10, 20, 30)
QUICK_PROTECT_FRACTIONS = (0.1, 0.5, 0.9)


@dataclass(frozen=True)
class SweepRecord:
    """Hide vs surrogate measurements for one synthetic instance."""

    label: str
    nodes: int
    edges: int
    connected_pairs: float
    protect_fraction: float
    protected_edges: int
    utility_hide: float
    utility_surrogate: float
    opacity_hide: float
    opacity_surrogate: float

    @property
    def utility_difference(self) -> float:
        return self.utility_surrogate - self.utility_hide

    @property
    def opacity_difference(self) -> float:
        return self.opacity_surrogate - self.opacity_hide

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "connected_pairs": round(self.connected_pairs, 1),
            "protect_fraction": self.protect_fraction,
            "protected_edges": self.protected_edges,
            "utility_hide": round(self.utility_hide, 3),
            "utility_surrogate": round(self.utility_surrogate, 3),
            "utility_diff": round(self.utility_difference, 3),
            "opacity_hide": round(self.opacity_hide, 3),
            "opacity_surrogate": round(self.opacity_surrogate, 3),
            "opacity_diff": round(self.opacity_difference, 3),
        }


def measure_instance(
    instance: SyntheticInstance,
    *,
    adversary: Optional[AttackerModel] = None,
) -> SweepRecord:
    """Apply both strategies to one instance and score the accounts.

    One :class:`~repro.api.service.ProtectionService` batch per instance:
    the hide and surrogate requests protect the same sampled edges and score
    average opacity over exactly those edges.
    """
    adversary = adversary if adversary is not None else AdvancedAdversary()
    policy = ReleasePolicy(PrivilegeLattice())
    service = ProtectionService(instance.graph, policy, adversary=adversary)
    public = policy.lattice.public
    hide, surrogate = service.protect_many(
        ProtectionRequest(
            privileges=(public,),
            strategy=strategy,
            protect_edges=tuple(instance.protected_edges),
            opacity_edges=tuple(instance.protected_edges),
        )
        for strategy in (STRATEGY_HIDE, STRATEGY_SURROGATE)
    )
    return SweepRecord(
        label=instance.spec.label(),
        nodes=instance.graph.node_count(),
        edges=instance.graph.edge_count(),
        connected_pairs=instance.achieved_connected_pairs,
        protect_fraction=instance.protect_fraction,
        protected_edges=len(instance.protected_edges),
        utility_hide=hide.scores.path_utility,
        utility_surrogate=surrogate.scores.path_utility,
        opacity_hide=hide.scores.average_opacity,
        opacity_surrogate=surrogate.scores.average_opacity,
    )


def run_synthetic_sweep(
    instances: Optional[Iterable[SyntheticInstance]] = None,
    *,
    quick: bool = True,
    seed: int = 2011,
    adversary: Optional[AttackerModel] = None,
) -> List[SweepRecord]:
    """Measure every instance of the synthetic family.

    Without an explicit ``instances`` sequence the family is generated here:
    the reduced ``quick`` family by default, or the paper's full 50-graph /
    200-node family with ``quick=False``.
    """
    if instances is None:
        if quick:
            instances = synthetic_family(
                node_count=QUICK_NODE_COUNT,
                connectivity_targets=QUICK_CONNECTIVITY_TARGETS,
                protect_fractions=QUICK_PROTECT_FRACTIONS,
                seed=seed,
            )
        else:
            instances = synthetic_family(
                connectivity_targets=DEFAULT_CONNECTIVITY_TARGETS,
                protect_fractions=DEFAULT_PROTECT_FRACTIONS,
                seed=seed,
            )
    return [measure_instance(instance, adversary=adversary) for instance in instances]


def group_by_protection(records: Sequence[SweepRecord]) -> Dict[float, List[SweepRecord]]:
    """Group sweep records by their protection fraction."""
    groups: Dict[float, List[SweepRecord]] = {}
    for record in records:
        groups.setdefault(record.protect_fraction, []).append(record)
    return dict(sorted(groups.items()))


def group_by_connectivity(
    records: Sequence[SweepRecord], *, bucket_size: float = 20.0
) -> Dict[float, List[SweepRecord]]:
    """Group sweep records by buckets of achieved connected pairs."""
    groups: Dict[float, List[SweepRecord]] = {}
    for record in records:
        bucket = bucket_size * round(record.connected_pairs / bucket_size)
        groups.setdefault(bucket, []).append(record)
    return dict(sorted(groups.items()))
