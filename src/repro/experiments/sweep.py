"""The synthetic-graph sweep shared by Figures 8 and 9.

For every synthetic instance (a graph plus its sample of protected edges)
both protection strategies are applied and the resulting accounts are scored
for Path Utility and for average opacity over the protected edges.  The
sweep records are then aggregated differently by the Figure-8 and Figure-9
drivers.

Scoring runs on the service's compiled opacity engine: each account's
protected-edge opacities are read off **one** adversary simulation
(:class:`~repro.core.opacity.CompiledOpacityView`, O(V) setup then O(1) per
edge) instead of re-running the adversary per edge, and repeated sweeps over
the same instances replay both the accounts and their simulations from the
shared service's caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.opacity import AdvancedAdversary, AttackerModel
from repro.core.policy import ReleasePolicy, STRATEGY_HIDE, STRATEGY_SURROGATE
from repro.core.privileges import PrivilegeLattice
from repro.workloads.synthetic import (
    DEFAULT_CONNECTIVITY_TARGETS,
    DEFAULT_PROTECT_FRACTIONS,
    SyntheticInstance,
    synthetic_family,
)

#: Reduced sweep parameters used when ``quick=True`` (benchmarks, CI).
QUICK_NODE_COUNT = 80
QUICK_CONNECTIVITY_TARGETS = (10, 20, 30)
QUICK_PROTECT_FRACTIONS = (0.1, 0.5, 0.9)


@dataclass(frozen=True)
class SweepRecord:
    """Hide vs surrogate measurements for one synthetic instance."""

    label: str
    nodes: int
    edges: int
    connected_pairs: float
    protect_fraction: float
    protected_edges: int
    utility_hide: float
    utility_surrogate: float
    opacity_hide: float
    opacity_surrogate: float

    @property
    def utility_difference(self) -> float:
        return self.utility_surrogate - self.utility_hide

    @property
    def opacity_difference(self) -> float:
        return self.opacity_surrogate - self.opacity_hide

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "connected_pairs": round(self.connected_pairs, 1),
            "protect_fraction": self.protect_fraction,
            "protected_edges": self.protected_edges,
            "utility_hide": round(self.utility_hide, 3),
            "utility_surrogate": round(self.utility_surrogate, 3),
            "utility_diff": round(self.utility_difference, 3),
            "opacity_hide": round(self.opacity_hide, 3),
            "opacity_surrogate": round(self.opacity_surrogate, 3),
            "opacity_diff": round(self.opacity_difference, 3),
        }


def sweep_service(adversary: Optional[AttackerModel] = None) -> ProtectionService:
    """A multi-graph service suitable for sweep batches.

    The service carries no bound graph (each request brings its instance's
    graph) and a fresh empty policy over the default lattice — exactly the
    configuration every sweep instance used to build privately.  Passing one
    such service to several :func:`run_synthetic_sweep` calls makes repeated
    sweeps over the same instances replay from its account cache.
    """
    adversary = adversary if adversary is not None else AdvancedAdversary()
    return ProtectionService(None, ReleasePolicy(PrivilegeLattice()), adversary=adversary)


def instance_requests(
    instance: SyntheticInstance, public: object
) -> List[ProtectionRequest]:
    """The hide and surrogate requests of one instance, targeting its graph."""
    return [
        ProtectionRequest(
            privileges=(public,),
            strategy=strategy,
            protect_edges=tuple(instance.protected_edges),
            opacity_edges=tuple(instance.protected_edges),
            graph=instance.graph,
        )
        for strategy in (STRATEGY_HIDE, STRATEGY_SURROGATE)
    ]


def measure_instance(
    instance: SyntheticInstance,
    *,
    adversary: Optional[AttackerModel] = None,
    service: Optional[ProtectionService] = None,
) -> SweepRecord:
    """Apply both strategies to one instance and score the accounts.

    The hide and surrogate requests protect the same sampled edges and score
    average opacity over exactly those edges.  ``service`` may be a shared
    :func:`sweep_service` (batch drivers pass one so repeated measurements
    hit its account cache); by default a private one is built.  A shared
    service already carries its attacker model, so combining it with
    ``adversary`` is rejected rather than silently ignoring one of them.
    """
    if service is not None and adversary is not None:
        raise ValueError("pass the adversary through the shared service, not both")
    if service is None:
        service = sweep_service(adversary)
    hide, surrogate = service.protect_many(
        instance_requests(instance, service.policy.lattice.public)
    )
    return SweepRecord(
        label=instance.spec.label(),
        nodes=instance.graph.node_count(),
        edges=instance.graph.edge_count(),
        connected_pairs=instance.achieved_connected_pairs,
        protect_fraction=instance.protect_fraction,
        protected_edges=len(instance.protected_edges),
        utility_hide=hide.scores.path_utility,
        utility_surrogate=surrogate.scores.path_utility,
        opacity_hide=hide.scores.average_opacity,
        opacity_surrogate=surrogate.scores.average_opacity,
    )


def run_synthetic_sweep(
    instances: Optional[Iterable[SyntheticInstance]] = None,
    *,
    quick: bool = True,
    seed: int = 2011,
    adversary: Optional[AttackerModel] = None,
    service: Optional[ProtectionService] = None,
    workers: Optional[int] = None,
) -> List[SweepRecord]:
    """Measure every instance of the synthetic family as one cross-graph batch.

    Without an explicit ``instances`` sequence the family is generated here:
    the reduced ``quick`` family by default, or the paper's full 50-graph /
    200-node family with ``quick=False``.

    The whole sweep is served as a single
    :meth:`~repro.api.service.ProtectionService.protect_many` batch over a
    multi-graph service — each instance's two requests carry the instance's
    graph — so per-graph compiled views are built exactly once per batch.
    Pass a shared ``service`` (see :func:`sweep_service`) to make repeated
    sweeps over the same instances replay from its account cache, and
    ``workers=N`` to shard the batch across N worker processes (results
    are bit-identical to the serial run).
    """
    if instances is None:
        if quick:
            instances = synthetic_family(
                node_count=QUICK_NODE_COUNT,
                connectivity_targets=QUICK_CONNECTIVITY_TARGETS,
                protect_fractions=QUICK_PROTECT_FRACTIONS,
                seed=seed,
            )
        else:
            instances = synthetic_family(
                connectivity_targets=DEFAULT_CONNECTIVITY_TARGETS,
                protect_fractions=DEFAULT_PROTECT_FRACTIONS,
                seed=seed,
            )
    instances = list(instances)
    if service is not None and adversary is not None:
        raise ValueError("pass the adversary through the shared service, not both")
    if service is None:
        service = sweep_service(adversary)
    public = service.policy.lattice.public
    requests: List[ProtectionRequest] = []
    for instance in instances:
        requests.extend(instance_requests(instance, public))
    results = service.protect_many(requests, parallel=workers)
    records: List[SweepRecord] = []
    for index, instance in enumerate(instances):
        hide, surrogate = results[2 * index], results[2 * index + 1]
        records.append(
            SweepRecord(
                label=instance.spec.label(),
                nodes=instance.graph.node_count(),
                edges=instance.graph.edge_count(),
                connected_pairs=instance.achieved_connected_pairs,
                protect_fraction=instance.protect_fraction,
                protected_edges=len(instance.protected_edges),
                utility_hide=hide.scores.path_utility,
                utility_surrogate=surrogate.scores.path_utility,
                opacity_hide=hide.scores.average_opacity,
                opacity_surrogate=surrogate.scores.average_opacity,
            )
        )
    return records


def group_by_protection(records: Sequence[SweepRecord]) -> Dict[float, List[SweepRecord]]:
    """Group sweep records by their protection fraction."""
    groups: Dict[float, List[SweepRecord]] = {}
    for record in records:
        groups.setdefault(record.protect_fraction, []).append(record)
    return dict(sorted(groups.items()))


def group_by_connectivity(
    records: Sequence[SweepRecord], *, bucket_size: float = 20.0
) -> Dict[float, List[SweepRecord]]:
    """Group sweep records by buckets of achieved connected pairs."""
    groups: Dict[float, List[SweepRecord]] = {}
    for record in records:
        bucket = bucket_size * round(record.connected_pairs / bucket_size)
        groups.setdefault(bucket, []).append(record)
    return dict(sorted(groups.items()))
