"""E6 — Figure 10: the cost of producing and protecting a graph.

The paper reports, on a log scale, the time to serve a graph out of the PLUS
store broken into phases: total, DB access, building the graph, protecting
it by hiding and protecting it by surrogates.  The headline observation is
that either protection step costs on the order of the ~10 ms transformation
and is dwarfed by graph construction, so protection is "easily subsumed in
the cost of creation of the graph itself".

This driver loads a synthetic graph into the embedded store through the
:class:`~repro.provenance.plus.PLUSClient` and measures the same phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.policy import ReleasePolicy
from repro.core.privileges import PrivilegeLattice
from repro.experiments.reporting import format_table
from repro.provenance.plus import PLUSClient, ProtectionTimings
from repro.store.engine import GraphStore
from repro.workloads.random_graphs import sample_edges
from repro.workloads.synthetic import SyntheticGraphSpec, synthetic_graph


@dataclass
class Figure10Result:
    """Per-phase timings (milliseconds), averaged over the requested repeats."""

    node_count: int
    edge_count: int
    repeats: int
    load_ms: float
    timings: ProtectionTimings
    per_run: List[ProtectionTimings] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        phases = self.timings.as_dict()
        ordered = ["total", "db_access", "build_graph", "protect_via_hide", "protect_via_surrogate"]
        return [{"activity": phase, "time_ms": phases[phase]} for phase in ordered]

    def render(self) -> str:
        header = (
            f"Figure 10 — time to produce and protect a graph "
            f"({self.node_count} nodes, {self.edge_count} edges, store load {self.load_ms:.1f} ms)"
        )
        return format_table(self.as_rows(), title=header)

    def protection_is_cheap(self, *, factor: float = 1.0) -> bool:
        """The paper's claim: protecting costs no more than building the graph.

        ``factor`` loosens the comparison (protection <= factor * build).
        """
        build = self.timings.build_graph_ms + self.timings.db_access_ms
        return (
            self.timings.protect_hide_ms <= factor * max(build, 1e-9)
            and self.timings.protect_surrogate_ms <= factor * max(build, 1e-9)
        )


def run_figure10(
    *,
    node_count: int = 200,
    connected_pairs_target: float = 60.0,
    protect_fraction: float = 0.2,
    repeats: int = 3,
    seed: int = 2011,
    store: Optional[GraphStore] = None,
) -> Figure10Result:
    """Measure the Figure-10 phases on a synthetic graph stored in the engine."""
    import time

    instance = synthetic_graph(
        SyntheticGraphSpec(
            node_count=node_count,
            target_connected_pairs=connected_pairs_target,
            protect_fraction=protect_fraction,
            seed=seed,
        )
    )
    policy = ReleasePolicy(PrivilegeLattice())
    client = PLUSClient(store=store if store is not None else GraphStore(), policy=policy)

    start = time.perf_counter()
    client.import_graph(instance.graph)
    load_ms = (time.perf_counter() - start) * 1000.0

    protected_edges = sample_edges(instance.graph, len(instance.protected_edges), seed=seed + 1)
    runs: List[ProtectionTimings] = []
    for _ in range(max(1, repeats)):
        runs.append(
            client.timed_protection_run(policy.lattice.public, protected_edges=protected_edges)
        )
    averaged = ProtectionTimings(
        db_access_ms=sum(run.db_access_ms for run in runs) / len(runs),
        build_graph_ms=sum(run.build_graph_ms for run in runs) / len(runs),
        protect_hide_ms=sum(run.protect_hide_ms for run in runs) / len(runs),
        protect_surrogate_ms=sum(run.protect_surrogate_ms for run in runs) / len(runs),
    )
    return Figure10Result(
        node_count=instance.graph.node_count(),
        edge_count=instance.graph.edge_count(),
        repeats=len(runs),
        load_ms=load_ms,
        timings=averaged,
        per_run=runs,
    )
