"""E3 — Figure 7: surrogating vs hiding on the classic motifs.

For every motif of Figure 6 the designated edge is protected once by hiding
and once by surrogating (all nodes stay public — the paper's motif study
isolates *edge* protection).  The driver reports each strategy's Path
Utility and the opacity of the protected edge, plus the differences
``Surrogate − Hide`` that Figure 7 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.opacity import AdvancedAdversary, AttackerModel
from repro.core.policy import ReleasePolicy, STRATEGY_HIDE, STRATEGY_SURROGATE
from repro.core.privileges import PrivilegeLattice
from repro.experiments.reporting import format_table
from repro.workloads.motifs import Motif, all_motifs


@dataclass
class MotifComparison:
    """Hide vs surrogate measurements for one motif."""

    motif: str
    utility_hide: float
    utility_surrogate: float
    opacity_hide: float
    opacity_surrogate: float

    @property
    def utility_difference(self) -> float:
        return self.utility_surrogate - self.utility_hide

    @property
    def opacity_difference(self) -> float:
        return self.opacity_surrogate - self.opacity_hide

    def as_dict(self) -> Dict[str, object]:
        return {
            "motif": self.motif,
            "utility_hide": round(self.utility_hide, 3),
            "utility_surrogate": round(self.utility_surrogate, 3),
            "utility_diff": round(self.utility_difference, 3),
            "opacity_hide": round(self.opacity_hide, 3),
            "opacity_surrogate": round(self.opacity_surrogate, 3),
            "opacity_diff": round(self.opacity_difference, 3),
        }


@dataclass
class Figure7Result:
    """All motif comparisons (the bars of Figure 7)."""

    comparisons: List[MotifComparison] = field(default_factory=list)

    def by_motif(self) -> Dict[str, MotifComparison]:
        return {comparison.motif: comparison for comparison in self.comparisons}

    def as_rows(self) -> List[Dict[str, object]]:
        return [comparison.as_dict() for comparison in self.comparisons]

    def render(self) -> str:
        return format_table(
            self.as_rows(),
            title="Figure 7 — Surrogate vs Hide on the classic motifs (differences = Surrogate - Hide)",
        )


def compare_motif(
    motif: Motif,
    *,
    adversary: Optional[AttackerModel] = None,
) -> MotifComparison:
    """Protect one motif's designated edge both ways and measure the outcome.

    Both strategies run as one :meth:`ProtectionService.protect_many` batch.
    (Edge-protecting requests each generate on their own scoped policy copy,
    so no compiled state is shared between the two strategies — the batch is
    purely a call-site convenience here.)
    """
    adversary = adversary if adversary is not None else AdvancedAdversary()
    policy = ReleasePolicy(PrivilegeLattice())
    service = ProtectionService(motif.graph, policy, adversary=adversary)
    public = policy.lattice.public
    hide, surrogate = service.protect_many(
        ProtectionRequest(
            privileges=(public,),
            strategy=strategy,
            protect_edges=(motif.protected_edge,),
            opacity_edges=(motif.protected_edge,),
        )
        for strategy in (STRATEGY_HIDE, STRATEGY_SURROGATE)
    )
    return MotifComparison(
        motif=motif.name,
        utility_hide=hide.scores.path_utility,
        utility_surrogate=surrogate.scores.path_utility,
        opacity_hide=hide.scores.opacity.per_edge[motif.protected_edge],
        opacity_surrogate=surrogate.scores.opacity.per_edge[motif.protected_edge],
    )


def run_figure7(*, adversary: Optional[AttackerModel] = None) -> Figure7Result:
    """Reproduce Figure 7 over every motif of Figure 6."""
    result = Figure7Result()
    for motif in all_motifs():
        result.comparisons.append(compare_motif(motif, adversary=adversary))
    return result
