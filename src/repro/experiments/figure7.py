"""E3 — Figure 7: surrogating vs hiding on the classic motifs.

For every motif of Figure 6 the designated edge is protected once by hiding
and once by surrogating (all nodes stay public — the paper's motif study
isolates *edge* protection).  The driver reports each strategy's Path
Utility and the opacity of the protected edge, plus the differences
``Surrogate − Hide`` that Figure 7 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.requests import ProtectionRequest
from repro.api.service import ProtectionService
from repro.core.opacity import AdvancedAdversary, AttackerModel
from repro.core.policy import ReleasePolicy, STRATEGY_HIDE, STRATEGY_SURROGATE
from repro.core.privileges import PrivilegeLattice
from repro.experiments.reporting import format_table
from repro.workloads.motifs import Motif, all_motifs


@dataclass
class MotifComparison:
    """Hide vs surrogate measurements for one motif."""

    motif: str
    utility_hide: float
    utility_surrogate: float
    opacity_hide: float
    opacity_surrogate: float

    @property
    def utility_difference(self) -> float:
        return self.utility_surrogate - self.utility_hide

    @property
    def opacity_difference(self) -> float:
        return self.opacity_surrogate - self.opacity_hide

    def as_dict(self) -> Dict[str, object]:
        return {
            "motif": self.motif,
            "utility_hide": round(self.utility_hide, 3),
            "utility_surrogate": round(self.utility_surrogate, 3),
            "utility_diff": round(self.utility_difference, 3),
            "opacity_hide": round(self.opacity_hide, 3),
            "opacity_surrogate": round(self.opacity_surrogate, 3),
            "opacity_diff": round(self.opacity_difference, 3),
        }


@dataclass
class Figure7Result:
    """All motif comparisons (the bars of Figure 7)."""

    comparisons: List[MotifComparison] = field(default_factory=list)

    def by_motif(self) -> Dict[str, MotifComparison]:
        return {comparison.motif: comparison for comparison in self.comparisons}

    def as_rows(self) -> List[Dict[str, object]]:
        return [comparison.as_dict() for comparison in self.comparisons]

    def render(self) -> str:
        return format_table(
            self.as_rows(),
            title="Figure 7 — Surrogate vs Hide on the classic motifs (differences = Surrogate - Hide)",
        )


def _motif_requests(motif: Motif, public: object, *, with_graph: bool) -> List[ProtectionRequest]:
    """The hide and surrogate requests of one motif (in that order).

    ``with_graph`` attaches the motif's graph to each request, which is how
    the cross-graph batch of :func:`run_figure7` targets a multi-graph
    service.
    """
    return [
        ProtectionRequest(
            privileges=(public,),
            strategy=strategy,
            protect_edges=(motif.protected_edge,),
            opacity_edges=(motif.protected_edge,),
            graph=motif.graph if with_graph else None,
        )
        for strategy in (STRATEGY_HIDE, STRATEGY_SURROGATE)
    ]


def _comparison_from_results(motif: Motif, hide, surrogate) -> MotifComparison:
    """Assemble one table row from the two strategies' scored results."""
    return MotifComparison(
        motif=motif.name,
        utility_hide=hide.scores.path_utility,
        utility_surrogate=surrogate.scores.path_utility,
        opacity_hide=hide.scores.opacity.per_edge[motif.protected_edge],
        opacity_surrogate=surrogate.scores.opacity.per_edge[motif.protected_edge],
    )


def compare_motif(
    motif: Motif,
    *,
    adversary: Optional[AttackerModel] = None,
) -> MotifComparison:
    """Protect one motif's designated edge both ways and measure the outcome.

    Both strategies run as one :meth:`ProtectionService.protect_many` batch;
    scoring goes through the service's compiled opacity engine, so each
    account's protected-edge opacity is read off one adversary simulation.
    (Edge-protecting requests each generate on their own scoped policy copy,
    so no compiled *marking* state is shared between the two strategies —
    the batch is a call-site convenience for generation.)
    """
    adversary = adversary if adversary is not None else AdvancedAdversary()
    policy = ReleasePolicy(PrivilegeLattice())
    service = ProtectionService(motif.graph, policy, adversary=adversary)
    hide, surrogate = service.protect_many(
        _motif_requests(motif, policy.lattice.public, with_graph=False)
    )
    return _comparison_from_results(motif, hide, surrogate)


def run_figure7(
    *,
    adversary: Optional[AttackerModel] = None,
    workers: Optional[int] = None,
) -> Figure7Result:
    """Reproduce Figure 7 over every motif of Figure 6.

    All seven motifs run as **one** cross-graph
    :meth:`~repro.api.service.ProtectionService.protect_many` batch over a
    multi-graph service (each request carries its motif's graph), the same
    serving shape the Figures-8/9 sweep uses; per-motif results are
    identical to :func:`compare_motif` because both paths score through the
    compiled opacity engine.  ``workers=N`` shards the batch across N
    worker processes (results are bit-identical to the serial run).
    """
    adversary = adversary if adversary is not None else AdvancedAdversary()
    policy = ReleasePolicy(PrivilegeLattice())
    service = ProtectionService(None, policy, adversary=adversary)
    motifs = all_motifs()
    requests: List[ProtectionRequest] = []
    for motif in motifs:
        requests.extend(_motif_requests(motif, policy.lattice.public, with_graph=True))
    results = service.protect_many(requests, parallel=workers)
    result = Figure7Result()
    for index, motif in enumerate(motifs):
        result.comparisons.append(
            _comparison_from_results(motif, results[2 * index], results[2 * index + 1])
        )
    return result
