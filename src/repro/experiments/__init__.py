"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each driver exposes a ``run(...)`` function returning plain dataclasses that
the benchmark harness, the CLI and EXPERIMENTS.md all share.  Nothing here
plots; the drivers print the same rows/series the paper reports.

========  =======================================  =============================
Driver    Paper artifact                           What it reports
========  =======================================  =============================
table1    Table 1 + Figures 2/3                    path utility and opacity of the
                                                   naive account and accounts (a)–(d)
figure7   Figure 7 (motifs)                        Surrogate−Hide differences per motif
figure8   Figure 8 (synthetic)                     best utility achievable per opacity bin
figure9   Figure 9 (synthetic)                     Surrogate−Hide differences vs
                                                   connectivity and protection level
figure10  Figure 10 (performance)                  per-phase wall-clock times
========  =======================================  =============================
"""

from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.figure7 import Figure7Result, MotifComparison, run_figure7
from repro.experiments.sweep import SweepRecord, run_synthetic_sweep
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.figure10 import Figure10Result, run_figure10
from repro.experiments.runner import ExperimentSuiteResult, run_all

__all__ = [
    "run_table1",
    "Table1Result",
    "run_figure7",
    "Figure7Result",
    "MotifComparison",
    "run_synthetic_sweep",
    "SweepRecord",
    "run_figure8",
    "Figure8Result",
    "run_figure9",
    "Figure9Result",
    "run_figure10",
    "Figure10Result",
    "run_all",
    "ExperimentSuiteResult",
]
