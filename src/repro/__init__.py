"""repro — reproduction of *Surrogate Parenthood: Protected and Informative Graphs*.

This package reimplements, in pure Python, the system described in
Blaustein et al., PVLDB 4(8), 2011:

* a property-graph substrate with per-incidence release markings
  (:mod:`repro.graph`),
* privilege-predicates, dominance lattices and high-water sets
  (:mod:`repro.core.privileges`, :mod:`repro.security`),
* surrogate nodes, surrogate edges and the Surrogate Generation Algorithm
  that builds *protected accounts* (:mod:`repro.core`),
* the paper's Path Utility, Node Utility and Opacity measures
  (:mod:`repro.core.utility`, :mod:`repro.core.opacity`),
* a PLUS-style provenance substrate and an embedded graph store used for the
  performance evaluation (:mod:`repro.provenance`, :mod:`repro.store`),
* the workload generators and experiment drivers that regenerate every table
  and figure of the paper's evaluation (:mod:`repro.workloads`,
  :mod:`repro.experiments`).

The recommended entry point is the unified request/response API in
:mod:`repro.api`: bind a graph and a release policy to a
:class:`ProtectionService`, then protect, score, enforce and persist through
explicit request/result values::

    from repro import ProtectionService, ProtectionRequest

    service = ProtectionService(graph, policy)
    result = service.protect(privilege="Public")      # ProtectionResult
    result.scores.path_utility                        # ScoreCard
    enforcer = service.enforce()                      # QueryEnforcer

For serving at scale, :class:`AccountCache` memoises whole ``protect()``
results (keyed by graph/policy version counters, so invalidation is
automatic) and :class:`ServiceRegistry` runs many tenants over one shared
cache with per-tenant store roots and :class:`TenantQuota` budgets::

    registry = ServiceRegistry(base_dir="/var/lib/repro")
    registry.register("acme", max_requests=100_000)
    service = registry.service("acme", graph, policy)

Interactive editing runs on the typed-delta pipeline: every graph mutation
emits a :class:`GraphDelta`, compiled views patch themselves in O(affected)
(:func:`view_maintenance_stats` counts delta vs recompile paths), and
``service.edit(privilege)`` opens an :class:`EditSession` whose
mutate → commit loop re-protects and re-scores interactively::

    with service.edit("Low-2") as session:
        session.remove_edge("alice", "bob")
        result = session.commit()             # patched, not recompiled
        result.timings_ms["delta_apply"]

The older free functions (``generate_protected_account``,
``generate_multi_privilege_account``) remain available as deprecated shims
that delegate to the service; the underlying measures (``path_utility``,
``opacity``, ...) are stable API.
"""

from repro.graph.deltas import (
    DeltaBus,
    DeltaKind,
    GraphDelta,
    view_maintenance_stats,
)
from repro.graph.model import Edge, Node, PropertyGraph
from repro.core.privileges import (
    HighWaterSet,
    Privilege,
    PrivilegeLattice,
)
from repro.core.surrogates import NULL_SURROGATE, Surrogate, SurrogateRegistry
from repro.core.markings import EdgeState, Marking, MarkingPolicy
from repro.core.policy import (
    ReleasePolicy,
    STRATEGIES,
    STRATEGY_HIDE,
    STRATEGY_SURROGATE,
)
from repro.core.protected_account import ProtectedAccount
from repro.core.generation import (
    ProtectionEngine,
    build_protected_account,
    generate_protected_account,
)
from repro.core.multi import (
    build_multi_privilege_account,
    generate_multi_privilege_account,
    merge_accounts,
)
from repro.core.hiding import hide_protected_account, naive_protected_account
from repro.core.utility import (
    UtilityReport,
    node_utility,
    path_utility,
    utility_report,
)
from repro.core.opacity import (
    AdvancedAdversary,
    CompiledOpacityView,
    NaiveAdversary,
    OpacityReport,
    average_opacity,
    opacity,
    opacity_many,
    opacity_report,
)
from repro.api import (
    AccountCache,
    CacheStats,
    EditSession,
    ProtectionRequest,
    ProtectionResult,
    ProtectionService,
    ScoreCard,
    ServiceRegistry,
    TenantQuota,
)
from repro.security.enforcement import EnforcementMode, QueryEnforcer, QueryResult

__version__ = "1.2.0"

__all__ = [
    # graph substrate
    "Edge",
    "Node",
    "PropertyGraph",
    # the delta pipeline
    "GraphDelta",
    "DeltaKind",
    "DeltaBus",
    "view_maintenance_stats",
    # privileges and policies
    "Privilege",
    "PrivilegeLattice",
    "HighWaterSet",
    "Surrogate",
    "SurrogateRegistry",
    "NULL_SURROGATE",
    "Marking",
    "EdgeState",
    "MarkingPolicy",
    "ReleasePolicy",
    "STRATEGIES",
    "STRATEGY_HIDE",
    "STRATEGY_SURROGATE",
    # account generation
    "ProtectedAccount",
    "ProtectionEngine",
    "build_protected_account",
    "build_multi_privilege_account",
    "generate_protected_account",
    "generate_multi_privilege_account",
    "merge_accounts",
    "hide_protected_account",
    "naive_protected_account",
    # measures
    "path_utility",
    "node_utility",
    "utility_report",
    "UtilityReport",
    "opacity",
    "opacity_many",
    "average_opacity",
    "opacity_report",
    "OpacityReport",
    "NaiveAdversary",
    "AdvancedAdversary",
    "CompiledOpacityView",
    # the unified service API
    "ProtectionService",
    "ProtectionRequest",
    "ProtectionResult",
    "ScoreCard",
    "EditSession",
    # serving at scale
    "AccountCache",
    "CacheStats",
    "ServiceRegistry",
    "TenantQuota",
    # enforcement
    "QueryEnforcer",
    "QueryResult",
    "EnforcementMode",
    "__version__",
]
