"""repro — reproduction of *Surrogate Parenthood: Protected and Informative Graphs*.

This package reimplements, in pure Python, the system described in
Blaustein et al., PVLDB 4(8), 2011:

* a property-graph substrate with per-incidence release markings
  (:mod:`repro.graph`),
* privilege-predicates, dominance lattices and high-water sets
  (:mod:`repro.core.privileges`, :mod:`repro.security`),
* surrogate nodes, surrogate edges and the Surrogate Generation Algorithm
  that builds *protected accounts* (:mod:`repro.core`),
* the paper's Path Utility, Node Utility and Opacity measures
  (:mod:`repro.core.utility`, :mod:`repro.core.opacity`),
* a PLUS-style provenance substrate and an embedded graph store used for the
  performance evaluation (:mod:`repro.provenance`, :mod:`repro.store`),
* the workload generators and experiment drivers that regenerate every table
  and figure of the paper's evaluation (:mod:`repro.workloads`,
  :mod:`repro.experiments`).

The most common entry points are re-exported here::

    from repro import (
        PropertyGraph, PrivilegeLattice, SurrogateRegistry, MarkingPolicy,
        ProtectionEngine, path_utility, node_utility, opacity,
    )
"""

from repro.graph.model import Edge, Node, PropertyGraph
from repro.core.privileges import (
    HighWaterSet,
    Privilege,
    PrivilegeLattice,
)
from repro.core.surrogates import NULL_SURROGATE, Surrogate, SurrogateRegistry
from repro.core.markings import Marking, MarkingPolicy
from repro.core.protected_account import ProtectedAccount
from repro.core.generation import ProtectionEngine, generate_protected_account
from repro.core.multi import generate_multi_privilege_account
from repro.core.hiding import hide_protected_account, naive_protected_account
from repro.core.utility import node_utility, path_utility
from repro.core.opacity import AdvancedAdversary, NaiveAdversary, average_opacity, opacity

__version__ = "1.0.0"

__all__ = [
    "Edge",
    "Node",
    "PropertyGraph",
    "Privilege",
    "PrivilegeLattice",
    "HighWaterSet",
    "Surrogate",
    "SurrogateRegistry",
    "NULL_SURROGATE",
    "Marking",
    "MarkingPolicy",
    "ProtectedAccount",
    "ProtectionEngine",
    "generate_protected_account",
    "generate_multi_privilege_account",
    "hide_protected_account",
    "naive_protected_account",
    "path_utility",
    "node_utility",
    "opacity",
    "average_opacity",
    "NaiveAdversary",
    "AdvancedAdversary",
    "__version__",
]
