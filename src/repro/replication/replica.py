"""Follower runtime: replay the delta log into live, view-maintained graphs.

A :class:`ReplicaService` opens a leader's store root **read-only**, seeds
each replicated graph from the store snapshot at its checkpoint stamp, and
then tails ``replication.sqlite``, re-applying every logged delta through
the ordinary :class:`~repro.graph.model.PropertyGraph` mutators.  That last
point is the design's fulcrum: replaying through the public mutators makes
the follower's graph emit *its own* deltas, so every subscriber of the
follower's bus — :class:`~repro.core.markings.CompiledMarkingView`,
:class:`~repro.core.opacity.CompiledOpacityView`,
:class:`~repro.api.cache.AccountCache`,
:class:`~repro.core.opacity.OpacityViewCache` — patches itself in place via
the exact ``apply_delta`` code paths the leader exercises.  Nothing in the
view-maintenance layer knows replication exists.

Replay is **idempotent** (:func:`apply_delta_to_graph` skips a mutation
whose effect is already present).  That closes the seed race — the leader
stamps *after* writing the snapshot, so a follower can observe a snapshot
slightly ahead of the stamp it read — and makes crash/restart of a
follower mid-replay safe by construction: reseed, replay from the stamp,
converge to the same state.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.exceptions import (
    CatalogError,
    ReplicationError,
    ReplicationGapError,
    StaleReplicaError,
)
from repro.graph.deltas import DeltaKind, GraphDelta, record_maintenance
from repro.graph.model import PropertyGraph
from repro.replication.log import DeltaLog
from repro.store.engine import GraphStore
from repro.store.io import StorageIO

#: How long :meth:`ReplicaService.wait_for` may block by default (seconds).
DEFAULT_STALENESS_BUDGET = 2.0

#: Default delay between tail-thread polls (seconds).
DEFAULT_POLL_INTERVAL = 0.05


def apply_delta_to_graph(graph: PropertyGraph, delta: GraphDelta) -> bool:
    """Re-apply one logged delta through the public mutators; True if it
    changed the graph (False when its effect was already present).

    Batches replay inside ``graph.batch()`` so the follower emits one
    composite delta exactly as the leader did.
    """
    kind = delta.kind
    if kind is DeltaKind.BATCH:
        changed = False
        with graph.batch():
            for sub in delta.deltas:
                changed = apply_delta_to_graph(graph, sub) or changed
        return changed
    if kind is DeltaKind.ADD_NODE or kind is DeltaKind.REPLACE_NODE:
        node = delta.node
        existing = graph.node(node.node_id) if graph.has_node(node.node_id) else None
        if existing == node:
            return False
        graph.add_node(node.node_id, kind=node.kind, features=node.features, replace=True)
        return True
    if kind is DeltaKind.REMOVE_NODE:
        node_id = delta.old_node.node_id
        if not graph.has_node(node_id):
            return False
        graph.remove_node(node_id)
        return True
    if kind is DeltaKind.SET_NODE_FEATURES:
        node = delta.node
        if not graph.has_node(node.node_id):
            graph.add_node(node.node_id, kind=node.kind, features=node.features)
            return True
        if graph.node(node.node_id).features == node.features:
            return False
        graph.set_node_features(node.node_id, node.features)
        return True
    if kind is DeltaKind.ADD_EDGE or kind is DeltaKind.REPLACE_EDGE:
        edge = delta.edge
        existing = (
            graph.edge(edge.source, edge.target)
            if graph.has_edge(edge.source, edge.target)
            else None
        )
        if existing == edge:
            return False
        graph.add_edge(
            edge.source,
            edge.target,
            label=edge.label,
            features=edge.features,
            create_nodes=True,
            replace=True,
        )
        return True
    if kind is DeltaKind.REMOVE_EDGE:
        edge = delta.old_edge
        if not graph.has_edge(edge.source, edge.target):
            return False
        graph.remove_edge(edge.source, edge.target)
        return True
    raise ReplicationError(f"cannot replay delta kind {kind!r}")


class ReplicaService:
    """Tails one tenant's delta log and maintains live replica graphs.

    Parameters
    ----------
    root:
        The leader's tenant store root (holding ``store.sqlite`` and
        ``replication.sqlite``).  Opened strictly read-only.
    poll_interval:
        Tail-thread delay between polls, seconds.
    io:
        Storage I/O seam (fault injection in tests).
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        io: Optional[StorageIO] = None,
    ) -> None:
        self.root = Path(root)
        self.poll_interval = poll_interval
        self._io = io
        self.store = GraphStore(self.root, engine="sqlite", read_only=True, io=io)
        self.log = DeltaLog(self.root, read_only=True, io=io)
        self._graphs: Dict[str, PropertyGraph] = {}
        self._applied: Dict[str, int] = {}
        self._reseeds = 0
        self._deltas_applied = 0
        self._lock = threading.RLock()
        self._progress = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # graph access
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Every replicated graph name the leader has published."""
        return sorted(self.log.vector())

    def graph(self, name: str) -> PropertyGraph:
        """The live replica of one published graph (seeded on first use).

        The returned object is *owned by the replica* — callers subscribe
        views to it (or read it) but must not mutate it themselves.
        """
        with self._lock:
            graph = self._graphs.get(name)
            if graph is None:
                graph = self._seed(name)
            return graph

    def applied_vector(self) -> Dict[str, int]:
        """The ``{graph: seq}`` positions this replica has replayed to."""
        with self._lock:
            return dict(self._applied)

    # ------------------------------------------------------------------ #
    # seeding and replay
    # ------------------------------------------------------------------ #
    def _seed(self, name: str) -> PropertyGraph:
        """Load one graph's snapshot at its stamp (callers hold the lock)."""
        stamp = self.log.stamp_for(name)
        snapshot = self._snapshot(name)
        if snapshot is None:
            if name in self.log.vector():
                # Published after this replica opened its store: the open-time
                # catalog has no row yet.  Reopen to pick the snapshot up.
                self._reopen_store()
                snapshot = self._snapshot(name)
            if snapshot is None:
                raise ReplicationError(
                    f"graph {name!r} has no snapshot to seed from at {self.root}"
                )
        self._graphs[name] = snapshot
        self._applied[name] = stamp
        return snapshot

    def _snapshot(self, name: str) -> Optional[PropertyGraph]:
        reader = getattr(self.store.storage, "snapshot_graph", None)
        if reader is None:
            return None
        try:
            return reader(name)
        except CatalogError:
            return None

    def _reopen_store(self) -> None:
        old = self.store
        self.store = GraphStore(self.root, engine="sqlite", read_only=True, io=self._io)
        try:
            old.storage.close()
        except Exception:  # pragma: no cover - best-effort close
            pass

    def _reseed(self, name: str) -> None:
        """Recover from a log gap: fresh snapshot + stamp, replayed anew.

        The replica graph object is *replaced*; views subscribed to the old
        object must recompile against the new one (their version chain broke
        anyway — that is what a gap means).
        """
        self._graphs.pop(name, None)
        self._applied.pop(name, None)
        self._reopen_store()
        self._seed(name)
        self._reseeds += 1
        record_maintenance("replica", "reseeded")

    def poll(self, *, max_records: Optional[int] = None) -> int:
        """Replay every newly logged delta once; returns how many applied.

        Safe to call concurrently with readers of :meth:`graph` — replay
        holds the replica lock, so a reader never observes a half-applied
        batch (the mutators themselves are atomic per delta).
        """
        applied = 0
        for name in self.names():
            applied += self._poll_graph(name, max_records)
        return applied

    def _poll_graph(self, name: str, max_records: Optional[int]) -> int:
        with self._lock:
            if name not in self._graphs:
                self._seed(name)
            graph = self._graphs[name]
            position = self._applied[name]
            try:
                records = self.log.records_since(name, position, limit=max_records)
            except ReplicationGapError:
                self._reseed(name)
                self._progress.notify_all()
                return 0
            count = 0
            for seq, delta in records:
                apply_delta_to_graph(graph, delta)
                self._applied[name] = seq
                count += 1
            if count:
                self._deltas_applied += count
                record_maintenance("replica", "delta_applied", count)
                self._progress.notify_all()
            return count

    # ------------------------------------------------------------------ #
    # the staleness handshake
    # ------------------------------------------------------------------ #
    def current_for(self, vector: Mapping[str, int]) -> bool:
        """True when this replica has replayed at least ``vector``."""
        with self._lock:
            for name, seq in vector.items():
                if self._applied.get(name, -1) < seq:
                    return False
            return True

    def wait_for(
        self,
        vector: Mapping[str, int],
        *,
        budget: float = DEFAULT_STALENESS_BUDGET,
    ) -> None:
        """Block until the replica covers ``vector`` or the budget expires.

        Polls eagerly (so the handshake works without the tail thread) and
        raises :class:`~repro.exceptions.StaleReplicaError` — carrying both
        vectors — when the budget runs out.
        """
        deadline = time.monotonic() + budget
        while True:
            self.poll()
            if self.current_for(vector):
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise StaleReplicaError(
                    f"replica did not reach {dict(vector)!r} within {budget}s",
                    wanted=dict(vector),
                    applied=self.applied_vector(),
                )
            with self._progress:
                self._progress.wait(timeout=min(remaining, self.poll_interval))

    # ------------------------------------------------------------------ #
    # background tailing
    # ------------------------------------------------------------------ #
    def start(self) -> "ReplicaService":
        """Start the tail thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._tail, name="replica-tail", daemon=True
            )
            self._thread.start()
        return self

    def _tail(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll()
            except ReplicationError:
                record_maintenance("replica", "poll_error")
            self._stop.wait(self.poll_interval)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        self.stop()
        self.log.close()
        try:
            self.store.storage.close()
        except Exception:  # pragma: no cover - best-effort close
            pass

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, object]:
        leader = self.log.vector()
        applied = self.applied_vector()
        return {
            "role": "replica",
            "root": str(self.root),
            "leader_vector": leader,
            "applied_vector": applied,
            "lag": {
                name: leader[name] - applied.get(name, 0)
                for name in leader
            },
            "reseeds": self._reseeds,
            "deltas_applied": self._deltas_applied,
            "tailing": self._thread is not None and self._thread.is_alive(),
        }
