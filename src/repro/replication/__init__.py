"""Leader/follower replication: durable delta log, follower replay, vectors.

The "leader writes, N followers serve reads" deployment shape (cf. Becla
et al., *Designing a Multi-petabyte Database for LSST*): a leader process
streams every :class:`~repro.graph.deltas.GraphDelta` of its published
graphs into a per-tenant SQLite delta log (:mod:`repro.replication.log`);
follower processes open the store root read-only, seed from checkpoint
stamps and replay the tail (:mod:`repro.replication.replica`); reads
negotiate freshness with the leader's published version vector
(:mod:`repro.replication.wire`).  See ``docs/replication.md``.
"""

from repro.replication.log import (
    DELTA_LOG_NAME,
    GAP_KIND,
    DeltaLog,
    ReplicationPublisher,
    delta_log_path,
)
from repro.replication.replica import (
    DEFAULT_POLL_INTERVAL,
    DEFAULT_STALENESS_BUDGET,
    ReplicaService,
    apply_delta_to_graph,
)
from repro.replication.wire import (
    VECTOR_HEADER,
    UnsupportedDeltaError,
    decode_vector,
    delta_to_record,
    dumps_delta,
    encode_vector,
    loads_delta,
    record_to_delta,
    vector_covers,
)

__all__ = [
    "DELTA_LOG_NAME",
    "DEFAULT_POLL_INTERVAL",
    "DEFAULT_STALENESS_BUDGET",
    "GAP_KIND",
    "VECTOR_HEADER",
    "DeltaLog",
    "ReplicaService",
    "ReplicationPublisher",
    "UnsupportedDeltaError",
    "apply_delta_to_graph",
    "decode_vector",
    "delta_log_path",
    "delta_to_record",
    "dumps_delta",
    "encode_vector",
    "loads_delta",
    "record_to_delta",
    "vector_covers",
]
