"""Wire format for replicated :class:`~repro.graph.deltas.GraphDelta` records.

A leader's :class:`~repro.replication.log.ReplicationPublisher` serialises
every delta it journals into one JSON document per log row; a follower's
:class:`~repro.replication.replica.ReplicaService` decodes the row and
replays it through the ordinary :class:`~repro.graph.model.PropertyGraph`
mutators.  The format therefore only has to round-trip *exactly* — byte
equality of the replayed graph is what the differential suite pins — and
it reuses the :mod:`repro.codec` packed-column helpers for the one genuinely
row-shaped payload (the incident-edge table a ``REMOVE_NODE`` carries), the
same way checkpoints and account sidecars pack their tables.

Supported value domain
----------------------
Node ids, kinds, labels and feature values must survive a JSON round trip
unchanged (strings, ints, floats, bools, ``None``, and lists/dicts of
those).  Every encoder *verifies* the round trip and raises
:class:`UnsupportedDeltaError` on anything exotic (tuple ids, object
features) instead of silently shipping a lossy record — the publisher
treats that as a gap in the log, and followers fall back to a fresh seed.

The version vector
------------------
Replication progress is a *vector*: one monotone sequence number per
replicated graph name.  :func:`encode_vector` renders it canonically
(sorted keys, no whitespace) so it can ride in an HTTP header
(``X-Repro-Vector``) and compare byte-wise when equal.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.codec import col_str, split_str
from repro.exceptions import CorruptionError
from repro.graph.deltas import DeltaKind, GraphDelta
from repro.graph.model import Edge, Node

#: Name of the HTTP header carrying an encoded version vector.
VECTOR_HEADER = "X-Repro-Vector"

#: Wire-format version stamped on every record (bump on incompatible change).
WIRE_VERSION = 1


class UnsupportedDeltaError(ValueError):
    """The delta holds values the JSON wire format cannot round-trip."""


# --------------------------------------------------------------------------- #
# scalar round-trip guards
# --------------------------------------------------------------------------- #
def _check_roundtrip(value: Any, what: str) -> Any:
    """JSON-encode ``value`` and prove decoding gives it back *exactly*."""
    try:
        text = json.dumps(value, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise UnsupportedDeltaError(f"{what} is not JSON-serialisable: {value!r}") from exc
    decoded = json.loads(text)
    if decoded != value or type(decoded) is not type(value):
        raise UnsupportedDeltaError(
            f"{what} does not survive a JSON round trip: {value!r} -> {decoded!r}"
        )
    return value


def encode_id(node_id: Any) -> str:
    """A node id as canonical JSON text (verified to round-trip)."""
    _check_roundtrip(node_id, "node id")
    return json.dumps(node_id, separators=(",", ":"), allow_nan=False)


def decode_id(text: str) -> Any:
    return json.loads(text)


def _encode_features(features: Mapping[str, Any], what: str) -> Dict[str, Any]:
    return dict(_check_roundtrip(dict(features), what))


# --------------------------------------------------------------------------- #
# node / edge payloads
# --------------------------------------------------------------------------- #
def _node_payload(node: Node) -> Dict[str, Any]:
    return {
        "i": encode_id(node.node_id),
        "k": _check_roundtrip(node.kind, "node kind"),
        "f": _encode_features(node.features, "node features"),
    }


def _node_from(payload: Mapping[str, Any]) -> Node:
    return Node(
        node_id=decode_id(payload["i"]),
        kind=payload["k"],
        features=dict(payload["f"]),
    )


def _edge_payload(edge: Edge) -> Dict[str, Any]:
    return {
        "s": encode_id(edge.source),
        "t": encode_id(edge.target),
        "l": _check_roundtrip(edge.label, "edge label"),
        "f": _encode_features(edge.features, "edge features"),
    }


def _edge_from(payload: Mapping[str, Any]) -> Edge:
    return Edge(
        source=decode_id(payload["s"]),
        target=decode_id(payload["t"]),
        label=payload["l"],
        features=dict(payload["f"]),
    )


# --------------------------------------------------------------------------- #
# removed-edge tables (packed columns, as in repro.codec)
# --------------------------------------------------------------------------- #
def _pack_removed_edges(edges: Tuple[Edge, ...]) -> Optional[Dict[str, Any]]:
    """The ``REMOVE_NODE`` incident-edge table as four packed columns.

    Every column is strings-or-``None`` by construction (ids are encoded to
    JSON text, features to compact JSON), so :func:`repro.codec.col_str`
    always packs; the labels column uses its ``None`` sentinel directly.
    """
    if not edges:
        return None
    sources = col_str([encode_id(edge.source) for edge in edges])
    targets = col_str([encode_id(edge.target) for edge in edges])
    labels = col_str(
        [_check_roundtrip(edge.label, "edge label") for edge in edges]
    )
    feats = col_str(
        [
            json.dumps(
                _encode_features(edge.features, "edge features"),
                separators=(",", ":"),
                sort_keys=True,
                allow_nan=False,
            )
            for edge in edges
        ]
    )
    if sources is None or targets is None or feats is None or labels is None:
        raise UnsupportedDeltaError("removed-edge table holds non-string labels")
    return {"n": len(edges), "s": sources, "t": targets, "l": labels, "f": feats}


def _unpack_removed_edges(table: Optional[Mapping[str, Any]]) -> Tuple[Edge, ...]:
    if not table:
        return ()
    count = table["n"]
    sources = split_str(table["s"], count)
    targets = split_str(table["t"], count)
    labels = split_str(table["l"], count)
    feats = split_str(table["f"], count)
    edges = []
    for src, dst, label, feat in zip(sources, targets, labels, feats):
        if src is None or dst is None or feat is None:
            raise CorruptionError("removed-edge table lost an id or feature column")
        edges.append(
            Edge(
                source=decode_id(src),
                target=decode_id(dst),
                label=label,
                features=dict(json.loads(feat)),
            )
        )
    return tuple(edges)


# --------------------------------------------------------------------------- #
# delta records
# --------------------------------------------------------------------------- #
def delta_to_record(delta: GraphDelta) -> Dict[str, Any]:
    """One delta as a JSON-ready dict (recursing through batches)."""
    record: Dict[str, Any] = {
        "k": delta.kind.value,
        "pre": delta.pre_version,
        "post": delta.post_version,
    }
    if delta.node is not None:
        record["n"] = _node_payload(delta.node)
    if delta.old_node is not None:
        record["on"] = _node_payload(delta.old_node)
    if delta.edge is not None:
        record["e"] = _edge_payload(delta.edge)
    if delta.old_edge is not None:
        record["oe"] = _edge_payload(delta.old_edge)
    removed = _pack_removed_edges(delta.removed_edges)
    if removed is not None:
        record["re"] = removed
    if delta.kind is DeltaKind.BATCH:
        record["b"] = [delta_to_record(sub) for sub in delta.deltas]
    return record


def record_to_delta(record: Mapping[str, Any]) -> GraphDelta:
    """The inverse of :func:`delta_to_record`."""
    try:
        kind = DeltaKind(record["k"])
    except (KeyError, ValueError) as exc:
        raise CorruptionError(f"malformed delta record: {exc}") from exc
    return GraphDelta(
        kind=kind,
        pre_version=record["pre"],
        post_version=record["post"],
        node=_node_from(record["n"]) if "n" in record else None,
        old_node=_node_from(record["on"]) if "on" in record else None,
        edge=_edge_from(record["e"]) if "e" in record else None,
        old_edge=_edge_from(record["oe"]) if "oe" in record else None,
        removed_edges=_unpack_removed_edges(record.get("re")),
        deltas=tuple(record_to_delta(sub) for sub in record.get("b", ())),
    )


def dumps_delta(delta: GraphDelta) -> str:
    """One delta as compact JSON text (the delta-log row payload)."""
    envelope = {"v": WIRE_VERSION, "d": delta_to_record(delta)}
    return json.dumps(envelope, separators=(",", ":"), sort_keys=True, allow_nan=False)


def loads_delta(text: str) -> GraphDelta:
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise CorruptionError(f"delta-log payload is not JSON: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("v") != WIRE_VERSION:
        raise CorruptionError(
            f"unsupported delta wire version: {envelope.get('v') if isinstance(envelope, dict) else envelope!r}"
        )
    return record_to_delta(envelope["d"])


# --------------------------------------------------------------------------- #
# version vectors
# --------------------------------------------------------------------------- #
def encode_vector(vector: Mapping[str, int]) -> str:
    """A ``{graph: seq}`` vector as canonical JSON (header-safe)."""
    return json.dumps(
        {str(name): int(seq) for name, seq in vector.items()},
        separators=(",", ":"),
        sort_keys=True,
    )


def decode_vector(text: str) -> Dict[str, int]:
    """Parse a vector; raises ``ValueError`` on anything malformed."""
    value = json.loads(text)
    if not isinstance(value, dict):
        raise ValueError(f"version vector must be a JSON object, got {value!r}")
    out: Dict[str, int] = {}
    for name, seq in value.items():
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise ValueError(f"vector entry {name!r} has non-sequence value {seq!r}")
        out[str(name)] = seq
    return out


def vector_covers(have: Mapping[str, int], want: Mapping[str, int]) -> bool:
    """True when ``have`` is at least as advanced as ``want`` on every graph."""
    return all(have.get(name, -1) >= seq for name, seq in want.items())
