"""The durable delta log a leader appends and followers tail.

One SQLite database per tenant root (``replication.sqlite``, beside the
store's own files, whichever engine the store runs) holds three tables:

* ``delta_log`` — one row per dispatched :class:`~repro.graph.deltas
  .GraphDelta`, keyed ``(graph, seq)`` with *per-graph* monotone sequence
  numbers and the :mod:`repro.replication.wire` JSON payload;
* ``heads`` — the latest sequence per graph (the leader's published
  version vector, surviving compaction);
* ``stamps`` — the sequence number each graph's store snapshot corresponds
  to.  A follower seeds from the snapshot and replays strictly after the
  stamp; compaction may therefore truncate *up to* the stamp and never
  strands anyone (the property suite drives every truncation point).

The database reuses :class:`~repro.store.sqlite.connection.Database`, so
the WAL-mode pragma recipe, the 30 s busy timeout, the typed error mapping
and the fault-injection points all match the store engine — and followers
open it with ``mode=ro`` exactly like a read-only store.

:class:`ReplicationPublisher` is the leader-side glue: subscribed to a
:class:`~repro.api.service.ProtectionService`'s delta bus, it appends every
delta of every *published* graph (identity-matched, so ephemeral
per-request graphs never hit the log) and checkpoints snapshots + stamps.
A delta the wire format cannot carry (exotic ids) is replaced by an
explicit **gap marker** followed by an immediate checkpoint: followers
crossing the gap reseed from the new snapshot instead of silently serving
a divergent view.
"""

from __future__ import annotations

import threading
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ReplicationError, ReplicationGapError
from repro.graph.deltas import GraphDelta, record_maintenance
from repro.graph.model import PropertyGraph
from repro.replication.wire import UnsupportedDeltaError, dumps_delta, loads_delta
from repro.store.io import StorageIO, resolve_io
from repro.store.sqlite.connection import Database

#: Delta-log database file name inside a tenant store root.
DELTA_LOG_NAME = "replication.sqlite"

#: ``kind`` column value marking an unreplicable delta (see module docs).
GAP_KIND = "__gap__"

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS delta_log (
        graph TEXT NOT NULL,
        seq INTEGER NOT NULL,
        kind TEXT NOT NULL,
        payload TEXT NOT NULL,
        PRIMARY KEY (graph, seq)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS heads (
        graph TEXT PRIMARY KEY,
        seq INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS stamps (
        graph TEXT PRIMARY KEY,
        seq INTEGER NOT NULL
    )
    """,
)


def delta_log_path(root: Union[str, Path]) -> Path:
    """Where the delta log lives inside a tenant store root."""
    return Path(root) / DELTA_LOG_NAME


class DeltaLog:
    """Append/tail access to one tenant's durable delta log.

    Exactly one process (the leader) opens the log writable; any number of
    followers open it with ``read_only=True``.  All methods are
    thread-safe — the underlying :class:`Database` serialises statements.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        io: Optional[StorageIO] = None,
        read_only: bool = False,
    ) -> None:
        self.path = delta_log_path(root)
        self.read_only = read_only
        self.io = resolve_io(io)
        if read_only and not self.path.exists():
            raise ReplicationError(f"no delta log at {self.path} to tail")
        self.db = Database(self.path, io=self.io, read_only=read_only)
        self._lock = threading.Lock()
        if not read_only:
            with self.db.transaction("replication.schema"):
                for statement in _SCHEMA:
                    self.db.execute(statement)

    # ------------------------------------------------------------------ #
    # leader side
    # ------------------------------------------------------------------ #
    def append(self, graph_name: str, delta: GraphDelta) -> int:
        """Durably append one delta; returns its per-graph sequence number.

        Raises :class:`~repro.replication.wire.UnsupportedDeltaError` when
        the delta cannot ride the wire format — callers decide whether that
        becomes a gap marker (see :meth:`append_gap`).
        """
        payload = dumps_delta(delta)  # serialise (and maybe refuse) pre-commit
        return self._append_row(graph_name, str(delta.kind), payload)

    def append_gap(self, graph_name: str) -> int:
        """Record that the next delta was dropped; followers must reseed."""
        return self._append_row(graph_name, GAP_KIND, "")

    def _append_row(self, graph_name: str, kind: str, payload: str) -> int:
        with self._lock:
            with self.db.transaction("replication.append"):
                row = self.db.execute(
                    "SELECT seq FROM heads WHERE graph = ?", (graph_name,)
                ).fetchone()
                seq = (row[0] if row is not None else 0) + 1
                self.db.execute(
                    "INSERT INTO delta_log (graph, seq, kind, payload) VALUES (?, ?, ?, ?)",
                    (graph_name, seq, kind, payload),
                )
                self.db.execute(
                    "INSERT INTO heads (graph, seq) VALUES (?, ?) "
                    "ON CONFLICT(graph) DO UPDATE SET seq = excluded.seq",
                    (graph_name, seq),
                )
            return seq

    def stamp(self, graph_name: str, seq: Optional[int] = None) -> int:
        """Record that the store snapshot of ``graph_name`` is current at
        ``seq`` (default: the graph's head).  Stamps only move forward."""
        with self._lock:
            if seq is None:
                seq = self._head(graph_name)
            with self.db.transaction("replication.stamp"):
                self.db.execute(
                    "INSERT INTO stamps (graph, seq) VALUES (?, ?) "
                    "ON CONFLICT(graph) DO UPDATE SET seq = max(stamps.seq, excluded.seq)",
                    (graph_name, seq),
                )
            return seq

    def compact(self, graph_name: str, *, below: Optional[int] = None) -> int:
        """Drop rows at or below ``below`` (clamped to the checkpoint stamp).

        The clamp is the no-strand guarantee: a follower behind the stamp
        reseeds from the snapshot (which *is* the stamp's state) and replays
        the surviving tail; a follower at or past the stamp still finds a
        contiguous suffix.  Returns how many rows were deleted.
        """
        floor = self.stamp_for(graph_name)
        limit = floor if below is None else min(below, floor)
        with self._lock:
            with self.db.transaction("replication.compact"):
                cursor = self.db.execute(
                    "DELETE FROM delta_log WHERE graph = ? AND seq <= ?",
                    (graph_name, limit),
                )
            return cursor.rowcount if cursor.rowcount is not None else 0

    # ------------------------------------------------------------------ #
    # follower side
    # ------------------------------------------------------------------ #
    def vector(self) -> Dict[str, int]:
        """The published ``{graph: head_seq}`` version vector.

        Stamped graphs count even before their first delta (``heads`` gets
        its row on first append, but a publish stamps immediately), so a
        freshly published, never-edited graph is already visible to
        followers at sequence 0.
        """
        vector = {
            graph: seq
            for graph, seq in self.db.execute("SELECT graph, seq FROM stamps")
        }
        for graph, seq in self.db.execute("SELECT graph, seq FROM heads"):
            vector[graph] = max(seq, vector.get(graph, 0))
        return vector

    def stamp_for(self, graph_name: str) -> int:
        """The newest snapshot stamp for one graph (0 when never stamped)."""
        row = self.db.execute(
            "SELECT seq FROM stamps WHERE graph = ?", (graph_name,)
        ).fetchone()
        return row[0] if row is not None else 0

    def head_for(self, graph_name: str) -> int:
        return self._head(graph_name)

    def _head(self, graph_name: str) -> int:
        row = self.db.execute(
            "SELECT seq FROM heads WHERE graph = ?", (graph_name,)
        ).fetchone()
        return row[0] if row is not None else 0

    def records_since(
        self, graph_name: str, seq: int, *, limit: Optional[int] = None
    ) -> List[Tuple[int, GraphDelta]]:
        """Decoded ``(seq, delta)`` rows strictly after ``seq``, in order.

        Raises :class:`~repro.exceptions.ReplicationGapError` when the log
        cannot prove a contiguous suffix from ``seq`` — compaction passed
        it, rows are missing, or a gap marker sits in the range.  Callers
        must treat that as "reseed from snapshot + stamp", never as "no
        changes".
        """
        sql = (
            "SELECT seq, kind, payload FROM delta_log "
            "WHERE graph = ? AND seq > ? ORDER BY seq"
        )
        params: Tuple = (graph_name, seq)
        if limit is not None:
            sql += " LIMIT ?"
            params = (graph_name, seq, limit)
        rows = self.db.execute(sql, params).fetchall()
        if not rows:
            if self._head(graph_name) > seq:
                raise ReplicationGapError(
                    f"delta log for {graph_name!r} was compacted past seq {seq}"
                )
            return []
        expected = seq + 1
        out: List[Tuple[int, GraphDelta]] = []
        for row_seq, kind, payload in rows:
            if row_seq != expected:
                raise ReplicationGapError(
                    f"delta log for {graph_name!r} jumps from seq {expected - 1} "
                    f"to {row_seq}"
                )
            if kind == GAP_KIND:
                raise ReplicationGapError(
                    f"delta log for {graph_name!r} records an unreplicable delta "
                    f"at seq {row_seq}"
                )
            out.append((row_seq, loads_delta(payload)))
            expected += 1
        return out

    def stats(self) -> Dict[str, object]:
        """Log condition for status endpoints and health payloads."""
        (rows,) = self.db.execute("SELECT count(*) FROM delta_log").fetchone()
        return {
            "path": str(self.path),
            "read_only": self.read_only,
            "rows": rows,
            "vector": self.vector(),
            "stamps": {
                graph: seq
                for graph, seq in self.db.execute("SELECT graph, seq FROM stamps")
            },
        }

    def close(self) -> None:
        self.db.close()


class ReplicationPublisher:
    """Leader-side bridge from a service's delta bus into the durable log.

    Parameters
    ----------
    service:
        The :class:`~repro.api.service.ProtectionService` whose bus to tap.
        Its store must be durable — the log lives beside it and followers
        seed from its snapshots.
    log:
        An already-open :class:`DeltaLog` (default: create/open the log in
        the service store's root).
    """

    def __init__(self, service, *, log: Optional[DeltaLog] = None) -> None:
        self.service = service
        store = service.store
        if log is None:
            directory = getattr(store.storage, "directory", None)
            if directory is None:
                raise ReplicationError(
                    "replication needs a durable store root to host the delta log"
                )
            log = DeltaLog(directory)
        self.log = log
        self._lock = threading.Lock()
        # name -> weak graph ref, and graph identity -> name.  The weakref
        # callback purges *both* maps when a published graph dies, so a new
        # object reusing the id() can never be misattributed to the old name.
        self._names: Dict[str, "weakref.ref[PropertyGraph]"] = {}
        self._ids: Dict[int, str] = {}
        self._token = service.delta_bus.subscribe(self._on_delta)

    # ------------------------------------------------------------------ #
    # publication lifecycle
    # ------------------------------------------------------------------ #
    def publish(self, name: str, graph: Optional[PropertyGraph] = None) -> PropertyGraph:
        """Start replicating ``graph`` under ``name``.

        Seeds followers by snapshotting the graph into the store and
        stamping the log at the graph's current head, then streams every
        later delta.  ``graph=None`` publishes the service's bound graph.
        """
        if graph is None:
            graph = self.service.graph
        if graph is None:
            raise ReplicationError("no graph to publish (service is multi-graph)")
        with self._lock:
            previous_ref = self._names.get(name)
            previous = previous_ref() if previous_ref is not None else None
            if previous is not None:
                self._ids.pop(id(previous), None)
            gid = id(graph)
            self._names[name] = weakref.ref(
                graph, lambda _ref, gid=gid, name=name: self._forget(gid, name)
            )
            self._ids[gid] = name
        self.service._attach_graph(graph)  # noqa: SLF001 - service-owned bus wiring
        self.checkpoint(name)
        return graph

    def unpublish(self, name: str) -> None:
        with self._lock:
            ref = self._names.pop(name, None)
            graph = ref() if ref is not None else None
            if graph is not None:
                self._ids.pop(id(graph), None)

    def _forget(self, gid: int, name: str) -> None:
        with self._lock:
            self._ids.pop(gid, None)
            ref = self._names.get(name)
            if ref is not None and ref() is None:
                self._names.pop(name, None)

    def published(self) -> Dict[str, PropertyGraph]:
        with self._lock:
            live = {}
            for name, ref in self._names.items():
                graph = ref()
                if graph is not None:
                    live[name] = graph
            return live

    def graph_for(self, name: str) -> Optional[PropertyGraph]:
        with self._lock:
            ref = self._names.get(name)
            return ref() if ref is not None else None

    def checkpoint(self, name: str) -> int:
        """Snapshot one published graph and stamp the log at its head.

        This is what bounds follower catch-up (and licenses compaction):
        after the stamp, a fresh follower replays only the tail past it.
        """
        graph = self.graph_for(name)
        if graph is None:
            raise ReplicationError(f"graph {name!r} is not published")
        self.service.store.put_graph(graph, name=name)
        return self.log.stamp(name, self.log.head_for(name))

    def compact(self, name: str) -> int:
        """Checkpoint, then drop every row the checkpoint made redundant."""
        self.checkpoint(name)
        return self.log.compact(name)

    def vector(self) -> Dict[str, int]:
        return self.log.vector()

    def status(self) -> Dict[str, object]:
        return {
            "role": "leader",
            "published": sorted(self.published()),
            "log": self.log.stats(),
        }

    def close(self) -> None:
        self.service.delta_bus.unsubscribe(self._token)

    # ------------------------------------------------------------------ #
    # bus listener
    # ------------------------------------------------------------------ #
    def _on_delta(self, graph: PropertyGraph, delta: GraphDelta) -> None:
        name = self._ids.get(id(graph))
        if name is None:
            return  # unpublished (or ephemeral per-request) graph
        ref = self._names.get(name)
        if ref is None or ref() is not graph:
            return
        try:
            self.log.append(name, delta)
            record_maintenance("replication", "delta_logged")
        except UnsupportedDeltaError:
            # Poison the suffix explicitly, then publish a fresh seed point
            # so followers recover by reseeding rather than diverging.
            self.log.append_gap(name)
            self.service.store.put_graph(graph, name=name)
            self.log.stamp(name, self.log.head_for(name))
            record_maintenance("replication", "unsupported_delta")
