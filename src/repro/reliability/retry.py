"""Bounded retries with exponential backoff for transient store faults.

:class:`RetryPolicy` wraps any zero-argument callable: transient failures
(by default :class:`~repro.exceptions.TransientError`, the typed channel
every ``OSError`` in the storage seam surfaces through) are retried with
exponentially growing, capped delays until the attempt budget or an overall
deadline runs out — then the last error propagates unchanged.  Anything not
in ``retry_on`` (corruption, validation errors, simulated crashes) passes
straight through on the first raise: retrying cannot fix those.

The clock and sleep functions are injectable so tests drive the policy
without real waiting, and :meth:`RetryPolicy.stats` feeds the counters into
``service.health()``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.exceptions import TransientError


class RetryPolicy:
    """Call wrapper: bounded attempts, exponential backoff, optional deadline.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retrying).
    base_delay_s / multiplier / max_delay_s:
        Backoff schedule: attempt *n* (1-based) failing sleeps
        ``min(base_delay_s * multiplier**(n-1), max_delay_s)`` before the
        next try.
    deadline_s:
        Overall wall-clock budget; a retry whose backoff would cross it is
        abandoned and the last error re-raised.
    retry_on:
        Exception types worth retrying.  Everything else propagates
        immediately.
    sleep / clock:
        Injectable for tests (defaults: ``time.sleep`` / ``time.monotonic``).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        base_delay_s: float = 0.01,
        multiplier: float = 2.0,
        max_delay_s: float = 0.5,
        deadline_s: Optional[float] = None,
        retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.deadline_s = deadline_s
        self.retry_on = retry_on
        self._sleep = sleep
        self._clock = clock
        self._calls = 0
        self._retries = 0
        self._exhausted = 0
        self._deadline_hits = 0

    # ------------------------------------------------------------------ #
    def call(self, operation: Callable[[], Any]) -> Any:
        """Run ``operation``, retrying transient failures per the schedule."""
        self._calls += 1
        start = self._clock()
        attempt = 0
        while True:
            try:
                return operation()
            except self.retry_on:
                attempt += 1
                if attempt >= self.max_attempts:
                    self._exhausted += 1
                    raise
                delay = min(
                    self.base_delay_s * (self.multiplier ** (attempt - 1)),
                    self.max_delay_s,
                )
                if (
                    self.deadline_s is not None
                    and (self._clock() - start) + delay > self.deadline_s
                ):
                    self._deadline_hits += 1
                    raise
                self._retries += 1
                self._sleep(delay)

    def stats(self) -> Dict[str, int]:
        """Counters for ``health()``: calls, retries, exhausted, deadline hits."""
        return {
            "calls": self._calls,
            "retries": self._retries,
            "exhausted": self._exhausted,
            "deadline_hits": self._deadline_hits,
        }
