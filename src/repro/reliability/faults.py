"""Deterministic fault injection over the storage I/O seam.

:class:`FaultInjector` is a :class:`~repro.store.io.StorageIO` whose
:meth:`~repro.store.io.StorageIO.checkpoint` and
:meth:`~repro.store.io.StorageIO.write_step` hooks actually fire: at a
chosen injection point it raises a transient ``OSError``-shaped failure,
simulates a process crash, or tears a write in half and *then* crashes.
Because every byte the store persists flows through the seam, a test can

1. run a workload once under a recording injector (no plan) to enumerate
   every injection point the workload crosses, then
2. re-run it once per ``(point index, mode)`` pair, crash there, reopen the
   store, and assert the recovered state is a consistent prefix.

Crashes are modelled by :class:`SimulatedCrash`, which derives from
``BaseException`` on purpose: production code's ``except Exception`` /
``except OSError`` blocks must not be able to "handle" a power cut.

Injections are matched deterministically — by global step index, or by the
N-th occurrence of a named point — and each trigger fires exactly once, so
a retried operation proceeds normally after a transient fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import TransientError
from repro.store.io import StorageIO


class SimulatedCrash(BaseException):
    """A simulated process death at an injection point.

    Subclasses ``BaseException`` so that no ``except Exception`` handler in
    the code under test can swallow it — exactly like a real crash, the only
    valid response is to reopen the store and recover.
    """


@dataclass
class Injection:
    """One planned fault.

    Matched either by ``at`` (the global 0-based index into the sequence of
    injection-point crossings) or by ``point`` + ``occurrence`` (the N-th
    time that named point is crossed).  ``mode`` is one of:

    ``os_error``
        Raise a :class:`~repro.exceptions.TransientError` (what the I/O
        layer turns ``OSError`` into) — the *retryable* failure shape.
    ``crash``
        Raise :class:`SimulatedCrash` before the step runs.
    ``torn_write``
        Only meaningful at ``write_step`` points: write the first
        ``keep_bytes`` bytes (default: half), flush, then crash — the torn
        frame is on disk, as after a mid-write power cut.  At a
        non-write point this degrades to ``crash``.
    """

    mode: str = "crash"
    at: Optional[int] = None
    point: Optional[str] = None
    occurrence: int = 0
    keep_bytes: Optional[int] = None
    fired: bool = field(default=False, repr=False)


class FaultInjector(StorageIO):
    """A :class:`StorageIO` that fails on cue.

    Parameters
    ----------
    plan:
        The :class:`Injection` objects to fire (each at most once).  An
        empty plan makes this a pure recorder.
    """

    def __init__(self, plan: Optional[List[Injection]] = None) -> None:
        self.plan: List[Injection] = list(plan or [])
        #: Every injection point crossed, in order (the enumeration a
        #: crash-everywhere test iterates over).
        self.trace: List[str] = []
        #: Points at which a fault actually fired.
        self.fired: List[str] = []
        self._occurrences: Dict[str, int] = {}
        self.armed = True

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def disarm(self) -> None:
        """Stop injecting (recovery/assertion phases run on real I/O)."""
        self.armed = False

    def _match(self, point: str) -> Optional[Injection]:
        index = len(self.trace)
        occurrence = self._occurrences.get(point, 0)
        self.trace.append(point)
        self._occurrences[point] = occurrence + 1
        if not self.armed:
            return None
        for injection in self.plan:
            if injection.fired:
                continue
            if injection.at is not None:
                if injection.at == index and (
                    injection.point is None or injection.point == point
                ):
                    injection.fired = True
                    return injection
            elif injection.point == point and injection.occurrence == occurrence:
                injection.fired = True
                return injection
        return None

    def _fire(self, injection: Injection, point: str) -> None:
        self.fired.append(point)
        if injection.mode == "os_error":
            raise TransientError(f"injected transient fault at {point}", point=point)
        raise SimulatedCrash(point)

    # ------------------------------------------------------------------ #
    # StorageIO hooks
    # ------------------------------------------------------------------ #
    def checkpoint(self, point: str) -> None:
        """Fire the planned fault, if this crossing matches one."""
        injection = self._match(point)
        if injection is not None:
            self._fire(injection, point)

    def write_step(self, point: str, handle, data: bytes) -> None:
        """Write ``data`` — possibly only a torn prefix of it."""
        injection = self._match(point)
        if injection is None:
            handle.write(data)
            return
        if injection.mode == "torn_write":
            keep = injection.keep_bytes if injection.keep_bytes is not None else len(data) // 2
            handle.write(data[:keep])
            handle.flush()
            self.fired.append(point)
            raise SimulatedCrash(point)
        self._fire(injection, point)


def crash_plan(at: int, mode: str = "crash", keep_bytes: Optional[int] = None) -> FaultInjector:
    """A one-shot injector failing at global step ``at`` (test convenience)."""
    return FaultInjector([Injection(mode=mode, at=at, keep_bytes=keep_bytes)])
