"""Reliability layer: fault injection, retries, and crash-safe recovery aids.

The package pairs with the storage seam in :mod:`repro.store.io`:

* :class:`~repro.reliability.faults.FaultInjector` drives deterministic
  torn writes, transient errors and simulated crashes through every
  fsync/rename boundary of the store (the crash-recovery suite's engine).
* :class:`~repro.reliability.retry.RetryPolicy` gives the service stack
  bounded, backoff-spaced retries around transient store faults.

See ``docs/reliability.md`` for the failure model and the recovery
guarantees these pieces verify.
"""

from repro.reliability.faults import FaultInjector, Injection, SimulatedCrash, crash_plan
from repro.reliability.retry import RetryPolicy

__all__ = [
    "FaultInjector",
    "Injection",
    "RetryPolicy",
    "SimulatedCrash",
    "crash_plan",
]
