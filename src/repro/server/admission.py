"""Request admission: per-tenant bounded queues and backpressure.

Every request enters through :meth:`AdmissionController.admit` before any
work is queued on the executor.  Each tenant gets a *lane*: at most
``max_inflight`` requests executing and at most ``max_queue`` waiting
behind them.  A request arriving with the queue full is rejected
immediately with :class:`~repro.server.errors.AdmissionError` (→ 429 with a
``Retry-After`` estimated from the lane's smoothed service time), so a
flooding tenant experiences backpressure instead of unbounded latency — and
never starves other tenants, whose lanes are independent.

During drain (:meth:`AdmissionController.drain`) new admissions raise
:class:`~repro.server.errors.ShuttingDownError` (→ 503) while already
admitted requests run to completion; :meth:`AdmissionController.wait_idle`
lets the server block until the last one finishes.

The controller is written for a single asyncio loop (counter updates happen
inline in coroutines, never across threads); snapshots are plain int reads
and safe from any thread.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Any, Dict, Optional

from repro.server.errors import AdmissionError, ShuttingDownError

#: Lane defaults: enough parallel slack for an interactive tenant, small
#: enough that a misbehaving client hits backpressure within one burst.
DEFAULT_MAX_INFLIGHT = 8
DEFAULT_MAX_QUEUE = 16


class _Lane:
    """One tenant's admission lane: slots, queue bound, counters."""

    def __init__(self, max_inflight: int, max_queue: int) -> None:
        self.max_inflight = max(1, int(max_inflight))
        self.max_queue = max(0, int(max_queue))
        self.inflight = 0
        self.queued = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.peak_inflight = 0
        self.peak_queued = 0
        #: Exponentially-smoothed service time (seconds); seeds Retry-After.
        self.ewma_seconds = 0.05
        self._slots = asyncio.Semaphore(self.max_inflight)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": self.inflight,
            "queued": self.queued,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "peak_inflight": self.peak_inflight,
            "peak_queued": self.peak_queued,
            "ewma_service_ms": round(self.ewma_seconds * 1000.0, 3),
        }


class _Admission:
    """The context manager one admitted request holds while it runs."""

    def __init__(self, controller: "AdmissionController", lane: _Lane) -> None:
        self._controller = controller
        self._lane = lane
        self._started = 0.0

    async def __aenter__(self) -> "_Admission":
        self._started = time.perf_counter()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        lane = self._lane
        lane.inflight -= 1
        lane.completed += 1
        elapsed = time.perf_counter() - self._started
        lane.ewma_seconds += 0.2 * (elapsed - lane.ewma_seconds)
        lane._slots.release()
        self._controller._note_release()


class AdmissionController:
    """Per-tenant bounded admission with drain support.

    Parameters
    ----------
    max_inflight:
        Default concurrent-execution bound per tenant lane.
    max_queue:
        Default bound on requests *waiting* for a slot per lane; a request
        beyond it is rejected with 429 rather than parked.
    """

    def __init__(
        self,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ) -> None:
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.draining = False
        self._lanes: Dict[str, _Lane] = {}
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def configure(
        self,
        tenant: str,
        *,
        max_inflight: Optional[int] = None,
        max_queue: Optional[int] = None,
    ) -> None:
        """Create (or re-bound) one tenant's lane ahead of traffic."""
        lane = self._lanes.get(tenant)
        if lane is not None and (lane.inflight or lane.queued):
            raise RuntimeError(f"cannot reconfigure busy lane for tenant {tenant!r}")
        self._lanes[tenant] = _Lane(
            max_inflight if max_inflight is not None else self.max_inflight,
            max_queue if max_queue is not None else self.max_queue,
        )

    def _lane(self, tenant: str) -> _Lane:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _Lane(self.max_inflight, self.max_queue)
            self._lanes[tenant] = lane
        return lane

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    async def admit(self, tenant: str) -> _Admission:
        """Admit one request for ``tenant`` (``async with`` the result).

        Raises :class:`~repro.server.errors.ShuttingDownError` during drain
        and :class:`~repro.server.errors.AdmissionError` when the lane's
        wait queue is full.
        """
        if self.draining:
            raise ShuttingDownError()
        lane = self._lane(tenant)
        if lane.inflight >= lane.max_inflight and lane.queued >= lane.max_queue:
            lane.rejected += 1
            backlog = lane.queued + 1
            raise AdmissionError(
                f"tenant {tenant!r} admission queue is full "
                f"({lane.inflight} in flight, {lane.queued} queued)",
                retry_after=math.ceil(lane.ewma_seconds * backlog) or 1,
            )
        lane.queued += 1
        lane.peak_queued = max(lane.peak_queued, lane.queued)
        try:
            await lane._slots.acquire()
        finally:
            lane.queued -= 1
        if self.draining:
            # Drain began while this request was parked; it was never
            # admitted, so it must not start executing.  It also has to
            # notify the idle event: it may have been the last occupant
            # keeping `wait_idle` from returning.
            lane._slots.release()
            self._note_release()
            raise ShuttingDownError()
        lane.admitted += 1
        lane.inflight += 1
        lane.peak_inflight = max(lane.peak_inflight, lane.inflight)
        self._idle.clear()
        return _Admission(self, lane)

    def _note_release(self) -> None:
        if not any(lane.inflight or lane.queued for lane in self._lanes.values()):
            self._idle.set()

    # ------------------------------------------------------------------ #
    # drain
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Stop admitting; already admitted requests run to completion."""
        self.draining = True
        self._note_release()

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has finished (True on success)."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def tenant_snapshot(self, tenant: str) -> Dict[str, Any]:
        """One tenant lane's counters (zeros for a lane not yet used)."""
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _Lane(self.max_inflight, self.max_queue)
        return lane.snapshot()

    def snapshot(self) -> Dict[str, Any]:
        """Whole-controller view: totals plus every tenant lane."""
        tenants = {name: lane.snapshot() for name, lane in self._lanes.items()}
        return {
            "draining": self.draining,
            "inflight": sum(lane.inflight for lane in self._lanes.values()),
            "queued": sum(lane.queued for lane in self._lanes.values()),
            "admitted": sum(lane.admitted for lane in self._lanes.values()),
            "rejected": sum(lane.rejected for lane in self._lanes.values()),
            "completed": sum(lane.completed for lane in self._lanes.values()),
            "tenants": tenants,
        }
