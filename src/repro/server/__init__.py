"""The async HTTP serving frontend (stdlib-asyncio, no third-party deps).

Layering, top down:

* :mod:`repro.server.app` — listener, dispatch, lifecycle
  (:class:`ProtectionServer`, :class:`ServerConfig`,
  :func:`start_server_thread`);
* :mod:`repro.server.router` — route table;
* :mod:`repro.server.auth` — per-tenant bearer tokens over
  :mod:`repro.security.credentials`;
* :mod:`repro.server.admission` — bounded per-tenant queues and drain;
* :mod:`repro.server.sessions` — long-lived edit sessions;
* :mod:`repro.server.http` — HTTP/1.1 wire parsing and chunked streaming;
* :mod:`repro.server.encoding` — JSON wire formats (deterministic result
  payloads, graph/policy content digests);
* :mod:`repro.server.errors` — the single exception → HTTP-status mapping
  and structured error envelope (shared with the CLI).

See ``docs/serving.md`` for the endpoint reference.
"""

from repro.server.admission import AdmissionController
from repro.server.app import ProtectionServer, ServerConfig, ServerHandle, start_server_thread
from repro.server.auth import Principal, TokenAuthenticator
from repro.server.encoding import json_bytes, result_payload
from repro.server.errors import error_envelope, status_for
from repro.server.router import Router
from repro.server.sessions import SessionManager

__all__ = [
    "AdmissionController",
    "Principal",
    "ProtectionServer",
    "Router",
    "ServerConfig",
    "ServerHandle",
    "SessionManager",
    "TokenAuthenticator",
    "error_envelope",
    "json_bytes",
    "result_payload",
    "start_server_thread",
    "status_for",
]
