"""Long-lived edit sessions behind ``/v1/sessions``.

A session wraps one :class:`~repro.api.editing.EditSession` (and the bound
:class:`~repro.api.service.ProtectionService` it runs on) behind an opaque
id.  Clients create a session with a graph + policy + privilege, then POST
batches of edits in the CLI ``edit`` JSON script format — the decoder is
literally the same function (:func:`repro.api.editing.apply_script_edit`) —
and every batch returns per-edit scores computed off the delta-patched
compiled views.

Sessions are tenant-scoped: ids are unguessable, lookups check ownership
(a wrong-tenant id is indistinguishable from an unknown one → 404 would
leak existence, so ownership failures are 404 too), and each tenant is
bounded to ``max_sessions_per_tenant`` live sessions (429 beyond it — a
session holds compiled views and a graph copy, so the bound is a memory
quota).  Each session serialises its own edits behind a lock; different
sessions commit concurrently.
"""

from __future__ import annotations

import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.editing import EditSession, apply_script_edit
from repro.api.service import ProtectionService
from repro.server.encoding import result_payload, timings_payload
from repro.server.errors import AdmissionError, BadRequestError, NotFoundError

#: Live-session bound per tenant; each session pins a graph copy plus its
#: compiled views, so this is a memory quota, not a rate limit.
DEFAULT_MAX_SESSIONS = 16


@dataclass
class SessionRecord:
    """One live edit session plus its bookkeeping."""

    session_id: str
    tenant: str
    service: ProtectionService
    session: EditSession
    privilege: str
    created_at: float = field(default_factory=time.time)
    edits_applied: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)

    def describe(self) -> Dict[str, Any]:
        """The wire summary of this session (listing + create response)."""
        return {
            "session": self.session_id,
            "privilege": self.privilege,
            "edits_applied": self.edits_applied,
            "graph": {
                "name": self.service.graph.name if self.service.graph is not None else None,
                "nodes": self.service.graph.node_count() if self.service.graph is not None else 0,
                "edges": self.service.graph.edge_count() if self.service.graph is not None else 0,
            },
        }


class SessionManager:
    """Creates, resolves and bounds the server's edit sessions."""

    def __init__(self, *, max_sessions_per_tenant: int = DEFAULT_MAX_SESSIONS) -> None:
        self.max_sessions_per_tenant = max_sessions_per_tenant
        self._lock = threading.Lock()
        self._sessions: Dict[str, SessionRecord] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def create(
        self,
        tenant: str,
        service: ProtectionService,
        privilege: object,
        *,
        normalize_focus: bool = False,
        name: Optional[str] = None,
    ) -> SessionRecord:
        """Open a session on ``service`` (must have a bound graph)."""
        with self._lock:
            live = sum(1 for record in self._sessions.values() if record.tenant == tenant)
            if live >= self.max_sessions_per_tenant:
                raise AdmissionError(
                    f"tenant {tenant!r} already holds {live} live edit sessions "
                    f"(limit {self.max_sessions_per_tenant}); close one first",
                    retry_after=5,
                )
        session = service.edit(privilege, normalize_focus=normalize_focus, name=name)
        record = SessionRecord(
            session_id=secrets.token_hex(12),
            tenant=tenant,
            service=service,
            session=session,
            privilege=getattr(service.policy.lattice.get(privilege), "name", str(privilege)),
        )
        with self._lock:
            self._sessions[record.session_id] = record
        return record

    def get(self, tenant: str, session_id: str) -> SessionRecord:
        """Resolve a tenant's session id (wrong tenant looks like not-found)."""
        with self._lock:
            record = self._sessions.get(session_id)
        if record is None or record.tenant != tenant:
            raise NotFoundError(f"no edit session {session_id!r} for this tenant")
        return record

    def close(self, tenant: str, session_id: str) -> Dict[str, Any]:
        """Close and forget one session; returns its final summary."""
        record = self.get(tenant, session_id)
        with record.lock:
            record.session.close()
        with self._lock:
            self._sessions.pop(session_id, None)
        summary = record.describe()
        summary["result"] = result_payload(record.session.result)
        return summary

    def close_all(self) -> int:
        """Close every live session (drain); returns how many were closed."""
        with self._lock:
            records = list(self._sessions.values())
            self._sessions.clear()
        for record in records:
            with record.lock:
                record.session.close()
        return len(records)

    # ------------------------------------------------------------------ #
    # edits
    # ------------------------------------------------------------------ #
    def apply_edits(
        self, record: SessionRecord, edits: List[dict]
    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Replay one batch of script edits; returns (per-edit rows, summary).

        Runs on an executor thread; the record's lock serialises batches
        against the same session.  A bad entry aborts the batch *before*
        the offending edit mutates anything — entries are validated by
        :func:`~repro.api.editing.apply_script_edit` one at a time, and the
        rows already committed stand (the session is a live incremental
        object, not a transaction).
        """
        if not isinstance(edits, list) or not edits:
            raise BadRequestError("'edits' must be a non-empty list of edit objects")
        rows: List[Dict[str, Any]] = []
        with record.lock:
            for index, entry in enumerate(edits):
                try:
                    apply_script_edit(record.session, entry)
                except (ValueError, TypeError) as exc:
                    raise BadRequestError(f"bad edit [{index}]: {exc}") from exc
                result = record.session.commit()
                record.edits_applied += 1
                rows.append(
                    {
                        "edit": entry,
                        "result": result_payload(result),
                        "timings_ms": timings_payload(result.timings_ms),
                    }
                )
            summary = record.describe()
        return rows, summary

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def list_for(self, tenant: str) -> List[Dict[str, Any]]:
        """Wire summaries of one tenant's live sessions (creation order)."""
        with self._lock:
            return [
                record.describe()
                for record in self._sessions.values()
                if record.tenant == tenant
            ]

    def count(self, tenant: Optional[str] = None) -> int:
        """Live session count, overall or for one tenant."""
        with self._lock:
            if tenant is None:
                return len(self._sessions)
            return sum(1 for record in self._sessions.values() if record.tenant == tenant)
