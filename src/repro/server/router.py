"""Route table: (method, path pattern) → handler.

Patterns are literal segments with ``{name}`` placeholders
(``/v1/sessions/{session_id}/edits``); resolution extracts the placeholder
values as string parameters.  An unknown path raises
:class:`~repro.server.errors.NotFoundError` (404); a known path hit with
the wrong method raises
:class:`~repro.server.errors.MethodNotAllowedError` (405) — both flow
through the shared error envelope like every other failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.server.errors import MethodNotAllowedError, NotFoundError

#: A handler coroutine: (request, path params, context) → response decision.
Handler = Callable[..., Any]


@dataclass(frozen=True)
class Route:
    """One registered endpoint."""

    method: str
    segments: Tuple[str, ...]
    handler: Handler
    #: Routes with ``auth=False`` (health) skip bearer authentication.
    auth: bool = True
    #: Streaming routes write their own chunked response.
    stream: bool = False

    def match(self, parts: Tuple[str, ...]) -> Optional[Dict[str, str]]:
        """Path params when ``parts`` matches this route's pattern, else None."""
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for pattern, actual in zip(self.segments, parts):
            if pattern.startswith("{") and pattern.endswith("}"):
                params[pattern[1:-1]] = actual
            elif pattern != actual:
                return None
        return params


class Router:
    """Registers routes and resolves incoming (method, path) pairs."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(
        self,
        method: str,
        pattern: str,
        handler: Handler,
        *,
        auth: bool = True,
        stream: bool = False,
    ) -> None:
        """Register one endpoint (first match wins on resolution)."""
        segments = tuple(part for part in pattern.strip("/").split("/") if part)
        self._routes.append(
            Route(method=method.upper(), segments=segments, handler=handler, auth=auth, stream=stream)
        )

    def resolve(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        """The route and path params for one request target."""
        parts = tuple(part for part in path.strip("/").split("/") if part)
        path_matched = False
        for route in self._routes:
            params = route.match(parts)
            if params is None:
                continue
            if route.method != method.upper():
                path_matched = True
                continue
            return route, params
        if path_matched:
            raise MethodNotAllowedError(f"{method} is not supported on {path}")
        raise NotFoundError(f"no route for {path}")

    def routes(self) -> Tuple[Route, ...]:
        """Every registered route (introspection/docs)."""
        return tuple(self._routes)
