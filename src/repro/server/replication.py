"""Server-side replication roles: the leader publisher and the follower.

:class:`ProtectionServer <repro.server.app.ProtectionServer>` stays
replication-agnostic except for four seams, all routed through the small
role objects here:

* resolving a ``graph_name`` body field to a *live named graph* — on the
  leader the published (and streamed) original, on a follower the replayed
  replica;
* the freshness handshake — a follower honours the request's
  ``X-Repro-Vector`` header by waiting up to the staleness budget before
  the handler runs, and answers 503 (with the leader's URL) past it;
* response headers — every authenticated response carries the role's
  current version vector so clients can chain read-your-writes requests
  from leader to follower;
* the no-auth ``GET /v1/replication`` status route.

The leader side anchors one :class:`~repro.replication.log
.ReplicationPublisher` per tenant on a dedicated registry service: the
publisher taps that service's delta bus, and because
:meth:`DeltaBus.attach <repro.graph.deltas.DeltaBus.attach>` subscribes at
the *graph*, edits made through any other service bound to the published
graph (edit sessions included) still reach the log.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from repro.core.policy import ReleasePolicy
from repro.core.privileges import PrivilegeLattice
from repro.exceptions import ReplicationError, StaleReplicaError
from repro.graph.model import PropertyGraph
from repro.replication.log import ReplicationPublisher
from repro.replication.replica import ReplicaService
from repro.replication.wire import VECTOR_HEADER, decode_vector, encode_vector
from repro.server.encoding import decode_graph, resolve_graph_payload
from repro.server.errors import BadRequestError, NotFoundError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.app import ProtectionServer


def _decode_vector_header(raw: str) -> Dict[str, int]:
    try:
        return decode_vector(raw)
    except (ValueError, TypeError) as exc:
        raise BadRequestError(f"bad {VECTOR_HEADER} header: {exc}") from exc


class LeaderReplication:
    """Publishes named graphs and streams their deltas (one log per tenant)."""

    role = "leader"

    def __init__(self, server: "ProtectionServer") -> None:
        self.server = server
        self._lock = threading.Lock()
        self._publishers: Dict[str, ReplicationPublisher] = {}
        # The publisher tracks graphs weakly (so per-request ephemerals never
        # leak); a *published* graph is long-lived server state, pinned here.
        self._graphs: Dict[tuple, PropertyGraph] = {}

    # ------------------------------------------------------------------ #
    # per-tenant publishers
    # ------------------------------------------------------------------ #
    def publisher(self, tenant: str) -> ReplicationPublisher:
        """The tenant's publisher (created on first use, on a dedicated
        anchor service so its delta bus outlives request-scoped services)."""
        with self._lock:
            publisher = self._publishers.get(tenant)
            if publisher is None:
                anchor = self.server.registry.service(
                    tenant, None, ReleasePolicy(PrivilegeLattice())
                )
                publisher = ReplicationPublisher(anchor)
                self._publishers[tenant] = publisher
            return publisher

    def named_graph(
        self, tenant: str, name: str, body: Mapping[str, Any]
    ) -> PropertyGraph:
        """The live published graph, publishing an inline payload first-time."""
        publisher = self.publisher(tenant)
        graph = publisher.graph_for(name)
        if graph is not None:
            return graph
        payload = resolve_graph_payload(body)
        if payload is None:
            raise NotFoundError(
                f"graph {name!r} is not published; include an inline 'graph'"
                " payload once to publish it"
            )
        graph = publisher.publish(name, decode_graph(payload))
        with self._lock:
            self._graphs[(tenant, name)] = graph
        return graph

    def checkpoint(self, tenant: str, name: str) -> int:
        return self.publisher(tenant).checkpoint(name)

    # ------------------------------------------------------------------ #
    # handshake seams
    # ------------------------------------------------------------------ #
    def wait_current(self, tenant: str, raw_vector: str) -> None:
        """The leader *is* the source of truth — validate and serve."""
        _decode_vector_header(raw_vector)

    def response_headers(self, tenant: str) -> Optional[Dict[str, object]]:
        with self._lock:
            publisher = self._publishers.get(tenant)
        if publisher is None:
            return None
        return {VECTOR_HEADER: encode_vector(publisher.vector())}

    def status(self) -> Dict[str, object]:
        with self._lock:
            publishers = dict(self._publishers)
        return {
            "role": self.role,
            "tenants": {name: pub.status() for name, pub in publishers.items()},
        }

    def close(self) -> None:
        with self._lock:
            publishers = list(self._publishers.values())
            self._publishers.clear()
            self._graphs.clear()
        for publisher in publishers:
            publisher.close()
            publisher.log.close()


class FollowerReplication:
    """Serves reads from replayed replicas, honouring the staleness budget."""

    role = "replica"

    def __init__(
        self,
        server: "ProtectionServer",
        leader_url: str,
        *,
        staleness_budget: float,
        poll_interval: Optional[float] = None,
    ) -> None:
        self.server = server
        self.leader_url = leader_url
        self.staleness_budget = staleness_budget
        self.poll_interval = poll_interval
        self._lock = threading.Lock()
        self._replicas: Dict[str, ReplicaService] = {}

    # ------------------------------------------------------------------ #
    # per-tenant replicas
    # ------------------------------------------------------------------ #
    def replica(self, tenant: str) -> ReplicaService:
        """The tenant's tailing replica (created + started on first use)."""
        with self._lock:
            replica = self._replicas.get(tenant)
            if replica is None:
                store = self.server.registry.store_for(tenant)
                root = getattr(store.storage, "directory", None)
                if root is None:
                    raise ReplicationError(
                        "a follower needs the leader's durable store root"
                    )
                kwargs: Dict[str, Any] = {}
                if self.poll_interval is not None:
                    kwargs["poll_interval"] = self.poll_interval
                replica = ReplicaService(Path(root), **kwargs).start()
                self._replicas[tenant] = replica
            return replica

    def named_graph(
        self, tenant: str, name: str, body: Mapping[str, Any]
    ) -> PropertyGraph:
        replica = self.replica(tenant)
        replica.poll()
        try:
            return replica.graph(name)
        except ReplicationError as exc:
            raise NotFoundError(
                f"graph {name!r} is not replicated here; the leader at "
                f"{self.leader_url} may know it"
            ) from exc

    # ------------------------------------------------------------------ #
    # handshake seams
    # ------------------------------------------------------------------ #
    def wait_current(self, tenant: str, raw_vector: str) -> None:
        """Block until the replica covers the client's vector, or 503."""
        vector = _decode_vector_header(raw_vector)
        replica = self.replica(tenant)
        try:
            replica.wait_for(vector, budget=self.staleness_budget)
        except StaleReplicaError as exc:
            raise StaleReplicaError(
                f"{exc.args[0] if exc.args else exc}; retry against the leader "
                f"at {self.leader_url}",
                wanted=exc.wanted,
                applied=exc.applied,
            ) from exc

    def response_headers(self, tenant: str) -> Optional[Dict[str, object]]:
        with self._lock:
            replica = self._replicas.get(tenant)
        if replica is None:
            return None
        return {VECTOR_HEADER: encode_vector(replica.applied_vector())}

    def status(self) -> Dict[str, object]:
        with self._lock:
            replicas = dict(self._replicas)
        return {
            "role": self.role,
            "leader": self.leader_url,
            "staleness_budget": self.staleness_budget,
            "tenants": {name: replica.status() for name, replica in replicas.items()},
        }

    def close(self) -> None:
        with self._lock:
            replicas = list(self._replicas.values())
            self._replicas.clear()
        for replica in replicas:
            replica.close()
