"""Minimal HTTP/1.1 wire layer over asyncio streams (stdlib only).

The frontend deliberately avoids web frameworks: the protocol surface it
needs is small — JSON request bodies, JSON responses, keep-alive, and
chunked transfer encoding for streaming batch results — and owning the
~200 lines keeps the serving stack dependency-free.  :func:`read_request`
parses one request from a stream (bounded header/body sizes, explicit
``BadRequestError`` on anything malformed), :func:`response_bytes` renders
one buffered response, and :class:`ChunkedStream` writes a streaming
response one chunk per completed result (each flushed immediately, so
clients consume a ``protect_many`` sweep incrementally).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.server.errors import BadRequestError

#: Parser bounds: a request line + headers beyond 64 KiB or a body beyond
#: 64 MiB is rejected, not buffered.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request: method, split target, lowered headers, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 keep-alive semantics (``Connection: close`` opts out)."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from exc


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on a clean EOF between requests."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequestError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequestError("request headers exceed the size limit") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise BadRequestError("request headers exceed the size limit")

    try:
        head = header_block.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
        raise BadRequestError("undecodable request head") from exc
    request_line, _, header_text = head.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequestError(f"malformed request line {request_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in header_text.strip("\r\n").split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequestError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise BadRequestError("malformed Content-Length header") from exc
        if length < 0 or length > max_body:
            raise BadRequestError(f"request body of {length} bytes exceeds the limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise BadRequestError("connection closed mid-body") from exc
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise BadRequestError("chunked request bodies are not supported")

    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: Optional[Mapping[str, object]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Render one buffered HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class ChunkedStream:
    """A chunked streaming response (one flushed chunk per result line)."""

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        *,
        status: int = 200,
        content_type: str = "application/x-ndjson",
        headers: Optional[Mapping[str, object]] = None,
        keep_alive: bool = True,
    ) -> None:
        self._writer = writer
        self._status = status
        self._content_type = content_type
        self._headers = dict(headers or {})
        self._keep_alive = keep_alive
        self.started = False

    async def start(self) -> None:
        """Send the status line and headers (idempotent)."""
        if self.started:
            return
        self.started = True
        reason = _REASONS.get(self._status, "Unknown")
        lines = [
            f"HTTP/1.1 {self._status} {reason}",
            f"Content-Type: {self._content_type}",
            "Transfer-Encoding: chunked",
            f"Connection: {'keep-alive' if self._keep_alive else 'close'}",
        ]
        for name, value in self._headers.items():
            lines.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await self._writer.drain()

    async def send(self, payload: bytes) -> None:
        """Write one chunk and flush it to the client immediately."""
        await self.start()
        self._writer.write(f"{len(payload):x}\r\n".encode("latin-1"))
        self._writer.write(payload + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        """Terminate the chunked body."""
        await self.start()
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


async def iter_ndjson_chunks(reader: asyncio.StreamReader) -> AsyncIterator[Tuple[int, bytes]]:
    """Client-side helper: yield ``(size, chunk)`` pairs of a chunked body.

    Used by the async load generator; servers never call this.
    """
    while True:
        size_line = await reader.readline()
        size = int(size_line.strip() or b"0", 16)
        if size == 0:
            await reader.readline()
            return
        chunk = await reader.readexactly(size)
        await reader.readexactly(2)  # trailing CRLF
        yield size, chunk
