"""Bearer-token authentication for the HTTP frontend.

Tokens ride the standard header (``Authorization: Bearer <token>``) and
resolve to a :class:`Principal` — a tenant name plus the
:class:`~repro.security.credentials.Consumer` identity the token was issued
to.  The check itself is expressed with the library's own credential
machinery: every tenant has a
:class:`~repro.security.credentials.CredentialPredicate` requiring the
``tenant:<name>`` credential, and a token authenticates a consumer carrying
exactly that credential.  Enforcement endpoints reuse the same consumer
object, so "who asked" is one identity from the socket down to the
per-consumer protected account.

Tokens are opaque random strings (:func:`secrets.token_urlsafe`) unless the
operator supplies fixed ones (the CLI's ``--tenant name=token``); lookups
compare with :func:`secrets.compare_digest` so token checking is not a
timing oracle.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.security.credentials import Consumer, CredentialPredicate, credential_predicate
from repro.server.errors import AuthenticationError, AuthorizationError


def tenant_credential(tenant: str) -> str:
    """The credential string a tenant's tokens confer (``tenant:<name>``)."""
    return f"tenant:{tenant}"


@dataclass(frozen=True)
class Principal:
    """An authenticated caller: the tenant plus its consumer identity."""

    tenant: str
    consumer: Consumer

    def authorize(self, tenant: Optional[str]) -> str:
        """Check this principal may act for ``tenant``; returns the effective tenant.

        ``None`` (the common case — the request names no tenant) resolves to
        the principal's own tenant.  Naming another tenant is a 403: tokens
        are strictly tenant-scoped.
        """
        if tenant is None or tenant == self.tenant:
            return self.tenant
        raise AuthorizationError(
            f"token for tenant {self.tenant!r} may not act for tenant {tenant!r}"
        )


class TokenAuthenticator:
    """Issues and verifies per-tenant bearer tokens (thread-safe).

    One authenticator backs the whole server: :meth:`issue` enrolls a token
    for a tenant (generating one when the operator did not supply it) and
    :meth:`authenticate` resolves an ``Authorization`` header to a
    :class:`Principal`, raising
    :class:`~repro.server.errors.AuthenticationError` (→ 401) on a missing,
    malformed or unknown token.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tokens: Dict[str, Principal] = {}
        self._predicates: Dict[str, CredentialPredicate] = {}

    def issue(self, tenant: str, token: Optional[str] = None) -> str:
        """Enroll (or generate) a bearer token for ``tenant``; returns it."""
        if token is None:
            token = secrets.token_urlsafe(24)
        if not token:
            raise ValueError("a bearer token must be non-empty")
        consumer = Consumer.with_credentials(
            f"token:{tenant}", tenant_credential(tenant), tenant=tenant
        )
        predicate = self._predicates.setdefault(
            tenant, credential_predicate(tenant, tenant_credential(tenant))
        )
        if not predicate(consumer):  # pragma: no cover - consistency guard
            raise ValueError(f"issued consumer does not satisfy tenant predicate {tenant!r}")
        with self._lock:
            self._tokens[token] = Principal(tenant=tenant, consumer=consumer)
        return token

    def revoke_tenant(self, tenant: str) -> int:
        """Drop every token issued for ``tenant``; returns how many."""
        with self._lock:
            stale = [token for token, principal in self._tokens.items() if principal.tenant == tenant]
            for token in stale:
                del self._tokens[token]
            return len(stale)

    def tenants(self) -> Tuple[str, ...]:
        """Every tenant at least one live token was issued for."""
        with self._lock:
            return tuple(dict.fromkeys(principal.tenant for principal in self._tokens.values()))

    def authenticate(self, authorization: Optional[str]) -> Principal:
        """Resolve an ``Authorization`` header value to a :class:`Principal`."""
        if authorization is None or not authorization.strip():
            raise AuthenticationError("missing Authorization header (expected 'Bearer <token>')")
        scheme, _, token = authorization.strip().partition(" ")
        token = token.strip()
        if scheme.lower() != "bearer" or not token:
            raise AuthenticationError("malformed Authorization header (expected 'Bearer <token>')")
        with self._lock:
            for known, principal in self._tokens.items():
                if secrets.compare_digest(known, token):
                    return principal
        raise AuthenticationError("unknown bearer token")
